"""Feasibility under varying trust pressure — a sweep the paper motivates.

The paper argues that more priority ("commit first") demands and less direct
trust make fewer exchanges feasible.  This study quantifies both effects on
random topologies:

* :func:`priority_sweep` — the feasible fraction as the probability of a
  seller demanding a committed buyer rises from 0 to 1;
* :func:`trust_sweep` — how adding random direct-trust edges to *infeasible*
  instances unlocks them (§4.2.3 at population scale).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.problem import ExchangeProblem
from repro.workloads.random_graphs import RandomProblemConfig, random_problem


@dataclass(frozen=True)
class PrioritySweepRow:
    """One point of the priority-density sweep."""

    priority_probability: float
    samples: int
    feasible: int

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.samples


def priority_sweep(
    probabilities: list[float] | None = None,
    samples: int = 40,
    n_principals: int = 8,
    n_exchanges: int = 6,
    seed: int = 0,
) -> list[PrioritySweepRow]:
    """Feasible fraction vs priority density over random problems."""
    probabilities = probabilities if probabilities is not None else [
        0.0,
        0.25,
        0.5,
        0.75,
        1.0,
    ]
    rows: list[PrioritySweepRow] = []
    for probability in probabilities:
        feasible = 0
        for index in range(samples):
            config = RandomProblemConfig(
                n_principals=n_principals,
                n_exchanges=n_exchanges,
                priority_probability=probability,
            )
            problem = random_problem(config, seed=seed * 10_000 + index)
            if problem.feasibility().feasible:
                feasible += 1
        rows.append(PrioritySweepRow(probability, samples, feasible))
    return rows


@dataclass(frozen=True)
class IncompletenessRow:
    """How conservative is the §4.2.4 test, measured against the liberal
    notify-guarded execution semantics (the Petri translation, §7.4)?

    The paper concedes the test's one-sidedness: "If the reduced graph does
    not pass the feasibility test, then no determination can be made by this
    process."  This study quantifies the region: random instances where the
    Petri semantics exhibits a constraint-honoring completion but the
    reduction cannot certify one.
    """

    samples: int
    reduction_feasible: int
    petri_coverable: int
    unsound: int  # reduction-feasible but not coverable (must be 0)

    @property
    def gap(self) -> int:
        """Instances certified by the Petri semantics only."""
        return self.petri_coverable - self.reduction_feasible

    @property
    def gap_fraction(self) -> float:
        return self.gap / self.samples if self.samples else 0.0


def incompleteness_gap(
    samples: int = 120,
    n_principals: int = 9,
    n_exchanges: int = 4,
    priority_probability: float = 0.7,
    seed: int = 0,
) -> IncompletenessRow:
    """Measure the reduction test's conservatism on random topologies."""
    from repro.petri.translate import exchange_completable

    reduction_feasible = 0
    petri_coverable = 0
    unsound = 0
    for index in range(samples):
        config = RandomProblemConfig(
            n_principals=n_principals,
            n_exchanges=n_exchanges,
            priority_probability=priority_probability,
        )
        problem = random_problem(config, seed=seed * 10_000 + index)
        feasible = problem.feasibility().feasible
        coverable = exchange_completable(problem).coverable
        reduction_feasible += feasible
        petri_coverable += coverable
        if feasible and not coverable:
            unsound += 1
    return IncompletenessRow(
        samples=samples,
        reduction_feasible=reduction_feasible,
        petri_coverable=petri_coverable,
        unsound=unsound,
    )


@dataclass(frozen=True)
class TrustSweepRow:
    """One point of the direct-trust sweep over infeasible instances."""

    trust_edges_added: int
    samples: int
    unlocked: int

    @property
    def unlocked_fraction(self) -> float:
        return self.unlocked / self.samples if self.samples else 0.0


def _random_trust_variant(
    problem: ExchangeProblem, n_edges: int, rng: random.Random
) -> ExchangeProblem:
    variant = problem.copy()
    principals = list(variant.interaction.principals)
    for _ in range(n_edges):
        truster, trustee = rng.sample(principals, 2)
        variant.trust.add(truster, trustee)
    return variant


def trust_sweep(
    edge_counts: list[int] | None = None,
    samples: int = 40,
    n_principals: int = 8,
    n_exchanges: int = 6,
    priority_probability: float = 0.8,
    seed: int = 0,
) -> list[TrustSweepRow]:
    """How many infeasible instances does random direct trust unlock?

    For each infeasible random base instance, add *k* random trust edges and
    re-test.  Monotone in *k* in expectation: trust only removes blockers.
    """
    edge_counts = edge_counts if edge_counts is not None else [0, 1, 2, 4, 8]
    config = RandomProblemConfig(
        n_principals=n_principals,
        n_exchanges=n_exchanges,
        priority_probability=priority_probability,
    )
    bases: list[ExchangeProblem] = []
    index = 0
    while len(bases) < samples and index < samples * 50:
        problem = random_problem(config, seed=seed * 10_000 + index)
        index += 1
        if not problem.feasibility().feasible:
            bases.append(problem)

    rows: list[TrustSweepRow] = []
    for count in edge_counts:
        unlocked = 0
        for base_index, base in enumerate(bases):
            rng = random.Random((seed, count, base_index).__hash__())
            variant = _random_trust_variant(base, count, rng)
            if variant.feasibility().feasible:
                unlocked += 1
        rows.append(TrustSweepRow(count, len(bases), unlocked))
    return rows
