"""Feasibility under varying trust pressure — a sweep the paper motivates.

The paper argues that more priority ("commit first") demands and less direct
trust make fewer exchanges feasible.  This study quantifies both effects on
random topologies:

* :func:`priority_sweep` — the feasible fraction as the probability of a
  seller demanding a committed buyer rises from 0 to 1;
* :func:`trust_sweep` — how adding random direct-trust edges to *infeasible*
  instances unlocks them (§4.2.3 at population scale).

All sweeps run through the batched feasibility pipeline
(:mod:`repro.analysis.batch`): pass ``processes=N`` to fan the verdicts over
a process pool.  Results are deterministic and identical to the serial path
— specs are generated (and selected) in index order, and workers rebuild
each problem from its seed, so parallelism changes wall-clock only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import partial

from repro.analysis.batch import ProblemSpec, check_feasibility_batch, parallel_map
from repro.core.flatcore import ENGINES, check_feasibility_flat
from repro.core.problem import ExchangeProblem
from repro.errors import ReproError
from repro.workloads.random_graphs import RandomProblemConfig, random_problem

#: How many candidate instances base discovery scans per requested sample
#: before giving up (matches the original serial loop's bound).
_DISCOVERY_FACTOR = 50
#: Candidate instances evaluated per discovery round (keeps over-scanning
#: bounded while still feeding the pool full chunks).
_DISCOVERY_BLOCK = 64


@dataclass(frozen=True)
class PrioritySweepRow:
    """One point of the priority-density sweep."""

    priority_probability: float
    samples: int
    feasible: int

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.samples if self.samples else 0.0


def priority_sweep(
    probabilities: list[float] | None = None,
    samples: int = 40,
    n_principals: int = 8,
    n_exchanges: int = 6,
    seed: int = 0,
    processes: int | None = 1,
    engine: str = "indexed",
) -> list[PrioritySweepRow]:
    """Feasible fraction vs priority density over random problems.

    ``engine="flat"`` routes verdicts through the compiled arena
    (:mod:`repro.core.flatcore`); counts are identical by confluence.
    """
    probabilities = probabilities if probabilities is not None else [
        0.0,
        0.25,
        0.5,
        0.75,
        1.0,
    ]
    rows: list[PrioritySweepRow] = []
    for probability in probabilities:
        config = RandomProblemConfig(
            n_principals=n_principals,
            n_exchanges=n_exchanges,
            priority_probability=probability,
        )
        specs = [
            ProblemSpec(config=config, seed=seed * 10_000 + index)
            for index in range(samples)
        ]
        verdicts = check_feasibility_batch(specs, processes=processes, engine=engine)
        feasible = sum(1 for v in verdicts if v.feasible)
        rows.append(PrioritySweepRow(probability, samples, feasible))
    return rows


@dataclass(frozen=True)
class IncompletenessRow:
    """How conservative is the §4.2.4 test, measured against the liberal
    notify-guarded execution semantics (the Petri translation, §7.4)?

    The paper concedes the test's one-sidedness: "If the reduced graph does
    not pass the feasibility test, then no determination can be made by this
    process."  This study quantifies the region: random instances where the
    Petri semantics exhibits a constraint-honoring completion but the
    reduction cannot certify one.
    """

    samples: int
    reduction_feasible: int
    petri_coverable: int
    unsound: int  # reduction-feasible but not coverable (must be 0)

    @property
    def gap(self) -> int:
        """Instances certified by the Petri semantics only."""
        return self.petri_coverable - self.reduction_feasible

    @property
    def gap_fraction(self) -> float:
        return self.gap / self.samples if self.samples else 0.0


def _gap_worker(spec: ProblemSpec, engine: str = "indexed") -> tuple[bool, bool]:
    """Worker: (reduction-feasible, Petri-coverable) for one instance."""
    from repro.petri.translate import exchange_completable

    problem = spec.build()
    if engine == "flat":
        feasible = check_feasibility_flat(problem.sequencing_graph()).feasible
    else:
        feasible = problem.feasibility().feasible
    return feasible, exchange_completable(problem).coverable


def incompleteness_gap(
    samples: int = 120,
    n_principals: int = 9,
    n_exchanges: int = 4,
    priority_probability: float = 0.7,
    seed: int = 0,
    processes: int | None = 1,
    engine: str = "indexed",
) -> IncompletenessRow:
    """Measure the reduction test's conservatism on random topologies."""
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
        )
    config = RandomProblemConfig(
        n_principals=n_principals,
        n_exchanges=n_exchanges,
        priority_probability=priority_probability,
    )
    specs = [
        ProblemSpec(config=config, seed=seed * 10_000 + index)
        for index in range(samples)
    ]
    results = parallel_map(
        partial(_gap_worker, engine=engine), specs, processes=processes
    )
    reduction_feasible = sum(1 for feasible, _ in results if feasible)
    petri_coverable = sum(1 for _, coverable in results if coverable)
    unsound = sum(1 for feasible, coverable in results if feasible and not coverable)
    return IncompletenessRow(
        samples=samples,
        reduction_feasible=reduction_feasible,
        petri_coverable=petri_coverable,
        unsound=unsound,
    )


@dataclass(frozen=True)
class TrustSweepRow:
    """One point of the direct-trust sweep over infeasible instances."""

    trust_edges_added: int
    samples: int
    unlocked: int

    @property
    def unlocked_fraction(self) -> float:
        return self.unlocked / self.samples if self.samples else 0.0


def _random_trust_variant(
    problem: ExchangeProblem, n_edges: int, rng: random.Random
) -> ExchangeProblem:
    variant = problem.copy()
    principals = list(variant.interaction.principals)
    for _ in range(n_edges):
        truster, trustee = rng.sample(principals, 2)
        variant.trust.add(truster, trustee)
    return variant


def _trust_edge_names(
    problem: ExchangeProblem, n_edges: int, rng: random.Random
) -> tuple[tuple[str, str], ...]:
    """The trust pairs :func:`_random_trust_variant` would add, as names.

    Used to ship variants to pool workers as picklable specs; draws from the
    same rng stream so spec-built variants match in-process ones exactly.
    """
    principals = list(problem.interaction.principals)
    pairs = []
    for _ in range(n_edges):
        truster, trustee = rng.sample(principals, 2)
        pairs.append((truster.name, trustee.name))
    return tuple(pairs)


def trust_sweep(
    edge_counts: list[int] | None = None,
    samples: int = 40,
    n_principals: int = 8,
    n_exchanges: int = 6,
    priority_probability: float = 0.8,
    seed: int = 0,
    processes: int | None = 1,
    engine: str = "indexed",
) -> list[TrustSweepRow]:
    """How many infeasible instances does random direct trust unlock?

    For each infeasible random base instance, add *k* random trust edges and
    re-test.  Monotone in *k* in expectation: trust only removes blockers.
    """
    edge_counts = edge_counts if edge_counts is not None else [0, 1, 2, 4, 8]
    config = RandomProblemConfig(
        n_principals=n_principals,
        n_exchanges=n_exchanges,
        priority_probability=priority_probability,
    )
    # Base discovery: the first `samples` infeasible instances in index
    # order, scanning in blocks so the batch driver can parallelize while
    # the selected set stays independent of `processes`.
    base_seeds: list[int] = []
    index = 0
    limit = samples * _DISCOVERY_FACTOR
    while len(base_seeds) < samples and index < limit:
        block = min(_DISCOVERY_BLOCK, limit - index)
        specs = [
            ProblemSpec(config=config, seed=seed * 10_000 + index + k)
            for k in range(block)
        ]
        verdicts = check_feasibility_batch(specs, processes=processes, engine=engine)
        for spec, verdict in zip(specs, verdicts):
            if not verdict.feasible and len(base_seeds) < samples:
                base_seeds.append(int(spec.seed))
        index += block

    bases = [random_problem(config, seed=s) for s in base_seeds]
    rows: list[TrustSweepRow] = []
    for count in edge_counts:
        variant_specs: list[ProblemSpec] = []
        for base_index, (base_seed, base) in enumerate(zip(base_seeds, bases)):
            rng = random.Random((seed, count, base_index).__hash__())
            variant_specs.append(
                ProblemSpec(
                    config=config,
                    seed=base_seed,
                    trust_edges=_trust_edge_names(base, count, rng),
                )
            )
        verdicts = check_feasibility_batch(
            variant_specs, processes=processes, engine=engine
        )
        unlocked = sum(1 for v in verdicts if v.feasible)
        rows.append(TrustSweepRow(count, len(bases), unlocked))
    return rows
