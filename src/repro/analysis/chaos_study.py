"""Chaos study: Monte-Carlo fault injection against the safety guarantee.

The paper's theorem (§1, §5) — a feasible exchange executed per the
recovered sequence never leaves an honest participant out of pocket — is
proven on a perfect transport.  This study re-checks it mechanically on a
hostile one: it crosses random exchange problems with random
:class:`~repro.sim.faults.FaultPlan` schedules (drop, duplication, delay,
partitions, crashes, permanent silence), runs each feasible instance to
quiescence under the synthesized protocol, and feeds the result through
:mod:`repro.sim.safety`.

The claim under test is scoped the way crash-tolerant protocols always are:
the guarantee protects *correct* processes.  A permanently silent principal
is behaviourally a total withholder — the §2.5 reversal path protects
everyone else from it, but it cannot itself be promised a good outcome, so
it is excluded from the honest set exactly like a scripted adversary.
Crash-*and-restart* parties stay in the honest set: they are slow, not
wrong, and must still converge to one of the four §2.3 acceptable states.

Every sweep also runs the **differential arm**: the same fault plans against
the naive no-intermediary exchange
(:func:`repro.baselines.direct.direct_exchange_under_faults`).  The harness
is only credible if that arm *does* report honest losses — a detector that
never fires might be broken, not lucky.

Work fans out over :func:`repro.analysis.batch.parallel_map`; every scenario
is a pure function of its seeds, so serial and pooled sweeps produce
identical verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import random

from repro.analysis.batch import ProblemSpec, effective_cpu_count, instrumented_map
from repro.baselines.direct import direct_exchange_under_faults
from repro.core.flatcore import ENGINES, check_feasibility_flat
from repro.errors import ReproError
from repro.obs.metrics import MetricsSnapshot, snapshot_digest
from repro.obs.runtime import tracing
from repro.sim.faults import FaultConfig, random_fault_plan
from repro.sim.runtime import Simulation
from repro.sim.safety import evaluate_safety
from repro.workloads.random_graphs import RandomProblemConfig


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos sweep.

    ``problems`` uses a lower priority density than the feasibility studies
    so most generated instances are feasible (infeasible ones are recorded
    but not simulated — the theorem says nothing about them).  ``deadline``
    leaves the trusted components' reversal clocks far beyond the fault
    config's ``heal_at`` horizon: link faults delay honest deposits, they
    must not be able to masquerade as reneging.

    ``engine`` picks the feasibility gate: ``"indexed"`` (the incremental
    object engine) or ``"flat"`` (the compiled core).  The gate is a pure
    boolean, and the engines agree on it by confluence, so the sweep's
    verdicts are engine-independent — the flat path just answers faster.
    """

    scenarios: int = 500
    seed: int = 0
    problems: RandomProblemConfig = field(
        default_factory=lambda: RandomProblemConfig(priority_probability=0.1)
    )
    faults: FaultConfig = field(default_factory=FaultConfig)
    deadline: float = 200.0
    latency: float = 1.0
    max_time: float = 5000.0
    working_capital_cents: int = 0
    engine: str = "indexed"


@dataclass(frozen=True)
class ChaosScenario:
    """One picklable problem×fault-plan cell of the sweep."""

    index: int
    problem_seed: float
    fault_seed: int
    config: ChaosConfig


@dataclass(frozen=True)
class ChaosVerdict:
    """One scenario's outcome, flattened for transport off a worker.

    ``message_trace`` is populated only for violating scenarios: the worker
    deterministically re-runs the scenario under span tracing and attaches
    the causal envelope log (every send/drop/retransmit/deliver, in event
    order), so a violation arrives with the wire's full story, not just a
    digest.
    """

    index: int
    problem_seed: float
    fault_seed: int
    fault_digest: str
    feasible: bool
    simulated: bool
    safe: bool
    violations: tuple[str, ...]
    recovery: str  # complete | reversed | mixed | idle | not-run
    silent_parties: tuple[str, ...]
    crashed_parties: tuple[str, ...]
    messages: int
    retransmits: int
    dropped: int
    duplicates: int
    deferred: int
    abandoned: int
    stranded: int
    quiescent: bool
    duration: float
    baseline_ok: bool
    message_trace: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "problem_seed": self.problem_seed,
            "fault_seed": self.fault_seed,
            "fault_digest": self.fault_digest,
            "feasible": self.feasible,
            "simulated": self.simulated,
            "safe": self.safe,
            "violations": list(self.violations),
            "recovery": self.recovery,
            "silent_parties": list(self.silent_parties),
            "crashed_parties": list(self.crashed_parties),
            "messages": self.messages,
            "retransmits": self.retransmits,
            "dropped": self.dropped,
            "duplicates": self.duplicates,
            "deferred": self.deferred,
            "abandoned": self.abandoned,
            "stranded": self.stranded,
            "quiescent": self.quiescent,
            "duration": self.duration,
            "baseline_ok": self.baseline_ok,
            "message_trace": list(self.message_trace),
        }


def _recovery_label(completed: int, reversed_: int) -> str:
    if completed and reversed_:
        return "mixed"
    if completed:
        return "complete"
    if reversed_:
        return "reversed"
    return "idle"


def _run_scenario(scenario: ChaosScenario) -> ChaosVerdict:
    """Worker: one problem × one fault plan → one flat verdict row."""
    cfg = scenario.config
    problem = ProblemSpec(config=cfg.problems, seed=scenario.problem_seed).build()
    if cfg.engine == "flat":
        feasible = check_feasibility_flat(problem.sequencing_graph()).feasible
    else:
        feasible = problem.feasibility().feasible
    plan = random_fault_plan(
        principals=[p.name for p in problem.interaction.principals],
        trusted=[t.name for t in problem.interaction.trusted_components],
        seed=scenario.fault_seed,
        config=cfg.faults,
    )
    baseline = direct_exchange_under_faults(plan)
    silent = tuple(sorted(plan.permanently_silent()))
    crashed = tuple(sorted(plan.faulted_parties() - set(silent)))

    if not feasible:
        return ChaosVerdict(
            index=scenario.index,
            problem_seed=scenario.problem_seed,
            fault_seed=scenario.fault_seed,
            fault_digest=plan.digest(),
            feasible=False,
            simulated=False,
            safe=True,
            violations=(),
            recovery="not-run",
            silent_parties=silent,
            crashed_parties=crashed,
            messages=0,
            retransmits=0,
            dropped=0,
            duplicates=0,
            deferred=0,
            abandoned=0,
            stranded=0,
            quiescent=True,
            duration=0.0,
            baseline_ok=baseline.all_ok,
        )

    sim = Simulation.from_problem(
        problem,
        latency=cfg.latency,
        deadline=cfg.deadline,
        working_capital_cents=cfg.working_capital_cents,
        fault_plan=plan,
        seed=scenario.problem_seed,
    )
    result = sim.run(max_time=cfg.max_time)
    report = evaluate_safety(problem, result)
    excluded = frozenset(silent)
    violations = tuple(
        f"{v.party.name}: {reason}"
        for v in report.verdicts
        if v.party.name not in excluded
        for reason in v.reasons
    )
    message_trace: tuple[str, ...] = ()
    if violations:
        # A violation is worth a second, traced run: everything is a pure
        # function of the seeds, so the replay reproduces the run exactly
        # and the causal envelope log explains what the wire did to it.
        with tracing():
            replay_plan = random_fault_plan(
                principals=[p.name for p in problem.interaction.principals],
                trusted=[t.name for t in problem.interaction.trusted_components],
                seed=scenario.fault_seed,
                config=cfg.faults,
            )
            replay = Simulation.from_problem(
                problem,
                latency=cfg.latency,
                deadline=cfg.deadline,
                working_capital_cents=cfg.working_capital_cents,
                fault_plan=replay_plan,
                seed=scenario.problem_seed,
            )
            replay.run(max_time=cfg.max_time)
            if replay.network.message_obs is not None:
                message_trace = replay.network.message_obs.trace_lines()
    return ChaosVerdict(
        index=scenario.index,
        problem_seed=scenario.problem_seed,
        fault_seed=scenario.fault_seed,
        fault_digest=plan.digest(),
        feasible=True,
        simulated=True,
        safe=not violations,
        violations=violations,
        recovery=_recovery_label(
            len(result.completed_agents), len(result.reversed_agents)
        ),
        silent_parties=silent,
        crashed_parties=crashed,
        messages=result.stats.messages_sent,
        retransmits=result.stats.retransmits,
        dropped=result.stats.dropped,
        duplicates=result.stats.duplicates,
        deferred=result.stats.deferred,
        abandoned=result.stats.abandoned,
        stranded=result.stranded_messages,
        quiescent=result.quiescent,
        duration=result.duration,
        baseline_ok=baseline.all_ok,
        message_trace=message_trace,
    )


@dataclass(frozen=True)
class ChaosReport:
    """Aggregated verdicts for one sweep.

    ``metrics`` is the merged observability snapshot over every scenario;
    its digest is identical between serial and pooled sweeps.
    """

    config: ChaosConfig
    verdicts: tuple[ChaosVerdict, ...]
    metrics: MetricsSnapshot = ()

    # ------------------------------------------------------------- aggregates

    @property
    def simulated(self) -> int:
        return sum(1 for v in self.verdicts if v.simulated)

    @property
    def violation_count(self) -> int:
        return sum(len(v.violations) for v in self.verdicts)

    @property
    def unsafe_scenarios(self) -> tuple[ChaosVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.safe)

    @property
    def baseline_violations(self) -> int:
        """Scenarios where the naive direct exchange harmed an honest party."""
        return sum(1 for v in self.verdicts if not v.baseline_ok)

    @property
    def recovery_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.verdicts:
            if v.simulated:
                counts[v.recovery] = counts.get(v.recovery, 0) + 1
        return counts

    @property
    def differential_ok(self) -> bool:
        """The harness detected harm in the unprotected arm (so a clean
        protected arm means something)."""
        return self.baseline_violations >= 1

    def retransmit_stats(self) -> tuple[float, int]:
        """(mean, max) retransmits over simulated scenarios."""
        counts = [v.retransmits for v in self.verdicts if v.simulated]
        if not counts:
            return 0.0, 0
        return sum(counts) / len(counts), max(counts)

    def duration_stats(self) -> tuple[float, float]:
        """(mean, max) simulated run duration."""
        times = [v.duration for v in self.verdicts if v.simulated]
        if not times:
            return 0.0, 0.0
        return sum(times) / len(times), max(times)

    # ----------------------------------------------------------------- output

    def describe(self) -> list[str]:
        mean_rt, max_rt = self.retransmit_stats()
        mean_t, max_t = self.duration_stats()
        lines = [
            f"chaos sweep: {len(self.verdicts)} scenarios "
            f"(seed={self.config.seed}, drop={self.config.faults.drop}, "
            f"crash={self.config.faults.crash_probability})",
            f"  simulated (feasible): {self.simulated}",
            f"  safety violations:    {self.violation_count} "
            f"in {len(self.unsafe_scenarios)} scenario(s)",
            f"  recovery paths:       "
            + (
                ", ".join(
                    f"{k}={n}" for k, n in sorted(self.recovery_counts.items())
                )
                or "none"
            ),
            f"  retransmits:          mean {mean_rt:.1f}, max {max_rt}",
            f"  run duration:         mean {mean_t:.1f}, max {max_t:.1f}",
            f"  direct-baseline harm: {self.baseline_violations} scenario(s) "
            f"({'detector armed' if self.differential_ok else 'DETECTOR SILENT'})",
        ]
        for v in self.unsafe_scenarios:
            lines.append(
                f"  VIOLATION scenario #{v.index} "
                f"(problem_seed={v.problem_seed!r}, fault_seed={v.fault_seed}, "
                f"digest={v.fault_digest}): " + "; ".join(v.violations)
            )
            lines.extend(f"    {line}" for line in v.message_trace)
        lines.append(f"  metrics digest:       {self.metrics_digest()}")
        return lines

    def metrics_digest(self) -> str:
        """Hash of the merged observability metrics (serial == pooled)."""
        return snapshot_digest(self.metrics)

    def to_dict(self) -> dict:
        return {
            "scenarios": len(self.verdicts),
            "seed": self.config.seed,
            "engine": self.config.engine,
            "process_cpus": effective_cpu_count(),
            "simulated": self.simulated,
            "violation_count": self.violation_count,
            "unsafe_scenarios": [v.to_dict() for v in self.unsafe_scenarios],
            "recovery_counts": self.recovery_counts,
            "baseline_violations": self.baseline_violations,
            "differential_ok": self.differential_ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "metrics_digest": self.metrics_digest(),
        }


def chaos_scenarios(config: ChaosConfig) -> list[ChaosScenario]:
    """Derive the sweep's scenario cells from its master seed.

    Problem seeds follow the same ``rng.random()`` stream discipline as
    :func:`repro.analysis.batch.batch_specs`; fault seeds draw integers from
    the same generator, so one master seed pins the whole sweep.
    """
    rng = random.Random(config.seed)
    return [
        ChaosScenario(
            index=i,
            problem_seed=rng.random(),
            fault_seed=rng.randrange(2**31),
            config=config,
        )
        for i in range(config.scenarios)
    ]


def chaos_study(
    config: ChaosConfig = ChaosConfig(),
    *,
    processes: int | None = None,
    chunksize: int | None = None,
) -> ChaosReport:
    """Run the sweep (serial or pooled — verdicts are identical either way)."""
    if config.engine not in ENGINES:
        raise ReproError(
            f"unknown engine {config.engine!r}: expected one of {', '.join(ENGINES)}"
        )
    verdicts, metrics = instrumented_map(
        _run_scenario,
        chaos_scenarios(config),
        processes=processes,
        chunksize=chunksize,
    )
    return ChaosReport(config=config, verdicts=tuple(verdicts), metrics=metrics)
