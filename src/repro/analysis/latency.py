"""Latency: the other cost of mistrust (§8, extended).

The paper counts messages; mistrust also costs *time*.  A direct swap
between trusting parties finishes in one message delay (both send at once);
a universally trusted intermediary needs two (deposits in parallel, then
releases); the decentralized protocol serializes along the commitment
cascade — a resale chain of *n* brokers takes Θ(n) delays because each hop's
notify gates the next purchase.

Latency here is measured, not modeled: the discrete-event simulator's
quiescence time under unit message delay *is* the critical path of the
synthesized protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ExchangeProblem
from repro.obs.runtime import active as _active_tracer
from repro.sim.runtime import simulate
from repro.workloads.chains import resale_chain


def direct_latency() -> float:
    """Mutually trusting parties swap simultaneously: one delay."""
    return 1.0


def universal_latency() -> float:
    """Deposits in parallel, then releases in parallel: two delays."""
    return 2.0


def measured_latency(problem: ExchangeProblem, latency: float = 1.0) -> float:
    """Critical path of the synthesized protocol (simulator quiescence).

    Under an active observability scope the measured duration also lands in
    the ``analysis.latency.duration`` histogram (the simulator separately
    rolls up its own ``sim.*``/``net.*`` instruments).
    """
    duration = simulate(problem, latency=latency).duration
    obs = _active_tracer()
    if obs is not None:
        obs.metrics.histogram("analysis.latency.duration").observe(duration)
    return duration


@dataclass(frozen=True)
class LatencyRow:
    """One row of the chain-latency sweep."""

    n_brokers: int
    decentralized: float
    universal: float
    direct: float

    @property
    def slowdown_vs_universal(self) -> float:
        return self.decentralized / self.universal


def chain_latency_sweep(max_brokers: int = 6, retail: float = 100.0) -> list[LatencyRow]:
    """Decentralized critical path vs the two baselines over chain depth.

    The decentralized latency grows linearly: the consumer's money must
    cascade into assurances hop by hop before documents flow back.
    """
    rows: list[LatencyRow] = []
    for n in range(0, max_brokers + 1):
        problem = resale_chain(n, retail=retail)
        rows.append(
            LatencyRow(
                n_brokers=n,
                decentralized=measured_latency(problem),
                universal=universal_latency(),
                direct=direct_latency(),
            )
        )
    obs = _active_tracer()
    if obs is not None:
        obs.metrics.inc("analysis.latency.chain_rows", len(rows))
    return rows


def format_latency_table(rows: list[LatencyRow]) -> list[str]:
    """Aligned text rows for benches and the CLI."""
    lines = [f"{'brokers':>7} {'decentralized':>14} {'universal':>10} {'direct':>7}"]
    for row in rows:
        lines.append(
            f"{row.n_brokers:>7} {row.decentralized:>14.1f} "
            f"{row.universal:>10.1f} {row.direct:>7.1f}"
        )
    return lines
