"""Analyses over the formal machinery: the §8 cost model, feasibility
sweeps over random topologies, §6 indemnity-capital studies, and the
fault-injection chaos study."""

from repro.analysis.batch import (
    BatchVerdict,
    ProblemSpec,
    batch_specs,
    check_feasibility_batch,
    effective_cpu_count,
    parallel_map,
)
from repro.analysis.chaos_study import (
    ChaosConfig,
    ChaosReport,
    ChaosScenario,
    ChaosVerdict,
    chaos_scenarios,
    chaos_study,
)
from repro.analysis.cost import (
    ChainCostRow,
    MeasuredCost,
    MessageCost,
    chain_cost_sweep,
    format_chain_table,
    measured_cost,
    static_cost,
)
from repro.analysis.feasibility_study import (
    IncompletenessRow,
    PrioritySweepRow,
    TrustSweepRow,
    incompleteness_gap,
    priority_sweep,
    trust_sweep,
)
from repro.analysis.latency import (
    LatencyRow,
    chain_latency_sweep,
    direct_latency,
    format_latency_table,
    measured_latency,
    universal_latency,
)
from repro.analysis.indemnity_study import (
    BundleScalingRow,
    OrderingCost,
    bundle_scaling,
    figure7_table,
    ordering_costs,
)

__all__ = [
    "BatchVerdict",
    "ProblemSpec",
    "batch_specs",
    "check_feasibility_batch",
    "effective_cpu_count",
    "parallel_map",
    "ChaosConfig",
    "ChaosReport",
    "ChaosScenario",
    "ChaosVerdict",
    "chaos_scenarios",
    "chaos_study",
    "ChainCostRow",
    "MeasuredCost",
    "MessageCost",
    "chain_cost_sweep",
    "format_chain_table",
    "measured_cost",
    "static_cost",
    "IncompletenessRow",
    "incompleteness_gap",
    "PrioritySweepRow",
    "TrustSweepRow",
    "priority_sweep",
    "trust_sweep",
    "LatencyRow",
    "chain_latency_sweep",
    "direct_latency",
    "format_latency_table",
    "measured_latency",
    "universal_latency",
    "BundleScalingRow",
    "OrderingCost",
    "bundle_scaling",
    "figure7_table",
    "ordering_costs",
]
