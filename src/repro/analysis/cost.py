"""The cost of mistrust (§8): message-count accounting.

Static model, straight from the paper:

* two mutually trusting parties exchange with **2** messages;
* a mediated exchange needs **4** transfer messages (two in, two out), plus
  the §5 machinery's notifies (at most one per intermediary);
* the universal intermediary does the whole transaction in ``2·|E|``.

:func:`measured_cost` cross-checks the static model against the simulator's
delivery counters, and :func:`chain_cost_sweep` produces the §8 comparison
series over resale chains of increasing depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.direct import direct_message_count, mediated_message_count
from repro.baselines.universal_intermediary import universal_message_count
from repro.core.problem import ExchangeProblem
from repro.obs.runtime import active as _active_tracer
from repro.sim.runtime import simulate
from repro.workloads.chains import resale_chain


@dataclass(frozen=True)
class MessageCost:
    """Message counts for one exchange problem under three regimes."""

    problem_name: str
    n_exchanges: int
    direct: int  # all parties mutually trusting: 2 per exchange
    mediated_static: int  # 4 transfers per exchange (§8)
    mediated_with_notifies: int  # + up to 1 notify per intermediary
    universal: int  # one global agent: 2·|E|

    @property
    def mistrust_ratio(self) -> float:
        """§8's headline: mediated vs direct message overhead."""
        return self.mediated_static / self.direct


def static_cost(problem: ExchangeProblem) -> MessageCost:
    """Apply the §8 static model to a problem's interaction graph."""
    n = len(problem.interaction.trusted_components)
    obs = _active_tracer()
    if obs is not None:
        obs.metrics.inc("analysis.cost.static_evaluations")
    return MessageCost(
        problem_name=problem.name,
        n_exchanges=n,
        direct=direct_message_count() * n,
        mediated_static=mediated_message_count() * n,
        mediated_with_notifies=mediated_message_count(include_notifies=True) * n,
        universal=universal_message_count(problem),
    )


@dataclass(frozen=True)
class MeasuredCost:
    """Simulator-measured message counts for a feasible problem."""

    problem_name: str
    transfers: int
    notifies: int

    @property
    def total(self) -> int:
        return self.transfers + self.notifies


def measured_cost(problem: ExchangeProblem) -> MeasuredCost:
    """Run the synthesized protocol honestly and count deliveries.

    Under an active observability scope the delivery counts also accumulate
    in the ``analysis.cost.transfers``/``analysis.cost.notifies`` counters.
    """
    result = simulate(problem)
    obs = _active_tracer()
    if obs is not None:
        obs.metrics.inc("analysis.cost.transfers", result.stats.transfers)
        obs.metrics.inc("analysis.cost.notifies", result.stats.notifies)
    return MeasuredCost(
        problem_name=problem.name,
        transfers=result.stats.transfers,
        notifies=result.stats.notifies,
    )


@dataclass(frozen=True)
class ChainCostRow:
    """One row of the §8 chain sweep."""

    n_brokers: int
    n_exchanges: int
    direct: int
    mediated_static: int
    measured_total: int
    ratio: float


def chain_cost_sweep(max_brokers: int = 6, retail: float = 100.0) -> list[ChainCostRow]:
    """Message cost vs chain depth: the mistrust overhead is a constant 2×.

    Measured totals exceed the static 4-per-exchange by the notifies the
    protocol issues (one per intermediary in a chain).
    """
    rows: list[ChainCostRow] = []
    for n in range(0, max_brokers + 1):
        problem = resale_chain(n, retail=retail)
        cost = static_cost(problem)
        measured = measured_cost(problem)
        rows.append(
            ChainCostRow(
                n_brokers=n,
                n_exchanges=cost.n_exchanges,
                direct=cost.direct,
                mediated_static=cost.mediated_static,
                measured_total=measured.total,
                ratio=cost.mistrust_ratio,
            )
        )
    return rows


def format_chain_table(rows: list[ChainCostRow]) -> list[str]:
    """Render the sweep as aligned text rows (used by benches and the CLI)."""
    lines = [
        f"{'brokers':>7} {'exchanges':>9} {'direct':>7} {'mediated':>9} "
        f"{'measured':>9} {'ratio':>6}"
    ]
    for row in rows:
        lines.append(
            f"{row.n_brokers:>7} {row.n_exchanges:>9} {row.direct:>7} "
            f"{row.mediated_static:>9} {row.measured_total:>9} {row.ratio:>6.1f}"
        )
    return lines
