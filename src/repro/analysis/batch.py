"""Batched feasibility pipeline: fan thousands of reductions over a process pool.

The Monte-Carlo studies (:mod:`repro.analysis.feasibility_study`,
:mod:`repro.analysis.indemnity_study`) and the CLI's ``sweep`` commands all
evaluate *many independent* problems; each verdict is embarrassingly
parallel.  This module provides the shared driver:

* :func:`parallel_map` — ordered, chunked ``map`` over a
  :class:`concurrent.futures.ProcessPoolExecutor`, falling back to a plain
  serial loop for small batches or ``processes<=1``.  Results always come
  back **in input order**, and the serial and parallel paths run the exact
  same per-item function, so verdicts are deterministic and identical either
  way (the batch test suite asserts this over 1000+ problems).
* :class:`ProblemSpec` — a small picklable *recipe* (random-problem config +
  seed + optional extra trust edges).  Workers rebuild the problem from the
  spec on their side, so the parent never pickles whole
  :class:`~repro.core.problem.ExchangeProblem` graphs across the pool
  boundary for generated workloads.
* :func:`check_feasibility_batch` — the batched §4.2.4 verdict:
  accepts specs and/or ready problems, returns light
  :class:`BatchVerdict` rows.
* :func:`batch_specs` — the spec-level twin of
  :func:`repro.workloads.random_graphs.random_problem_batch` (identical
  sub-seed derivation, so ``spec.build()`` reproduces the same problems).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

import random

from repro.core.problem import ExchangeProblem
from repro.workloads.random_graphs import RandomProblemConfig, random_problem

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool costs more than it saves; run serially.
SERIAL_THRESHOLD = 8


def _auto_processes() -> int:
    return os.cpu_count() or 1


def _auto_chunksize(n_items: int, processes: int) -> int:
    """Chunk so each worker sees a handful of batches (amortizes IPC)."""
    return max(1, n_items // (processes * 4))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Apply *fn* to every item, preserving input order.

    ``processes=None`` uses all cores; ``processes<=1`` (or a batch smaller
    than :data:`SERIAL_THRESHOLD`) runs serially in-process.  *fn* must be
    picklable (a module-level function, or a :func:`functools.partial` of
    one) for the pooled path.
    """
    items = list(items)
    workers = _auto_processes() if processes is None else processes
    if workers <= 1 or len(items) < SERIAL_THRESHOLD:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if chunksize is None:
        chunksize = _auto_chunksize(len(items), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


@dataclass(frozen=True)
class ProblemSpec:
    """A picklable recipe for worker-side problem construction.

    ``trust_edges`` name extra direct-trust pairs ``(truster, trustee)`` to
    add after generation (party names, since parties are reconstructed in
    the worker).
    """

    config: RandomProblemConfig = field(default_factory=RandomProblemConfig)
    seed: int | float = 0
    trust_edges: tuple[tuple[str, str], ...] = ()

    def build(self) -> ExchangeProblem:
        """Construct the problem this spec describes (deterministic)."""
        problem = random_problem(self.config, seed=self.seed)
        if self.trust_edges:
            by_name = {p.name: p for p in problem.interaction.parties}
            for truster, trustee in self.trust_edges:
                problem.trust.add(by_name[truster], by_name[trustee])
        return problem


@dataclass(frozen=True)
class BatchVerdict:
    """One feasibility verdict, flattened for cheap transport off a worker.

    Carries everything the studies aggregate (the full trace stays in the
    worker — pickling whole sequencing graphs back would dominate runtime).
    """

    feasible: bool
    steps: int
    remaining: int
    blockages: int

    @classmethod
    def of(
        cls, problem: ExchangeProblem, strategy: str, enable_persona_clause: bool
    ) -> "BatchVerdict":
        verdict = problem.feasibility(
            strategy=strategy, enable_persona_clause=enable_persona_clause
        )
        return cls(
            feasible=verdict.feasible,
            steps=len(verdict.trace.steps),
            remaining=len(verdict.trace.remaining),
            blockages=len(verdict.blockages),
        )


def _check_one(
    item: "ProblemSpec | ExchangeProblem",
    strategy: str = "fifo",
    enable_persona_clause: bool = True,
) -> BatchVerdict:
    """Worker: build (if a spec) and reduce one problem."""
    problem = item.build() if isinstance(item, ProblemSpec) else item
    return BatchVerdict.of(problem, strategy, enable_persona_clause)


def check_feasibility_batch(
    items: "Sequence[ProblemSpec | ExchangeProblem]",
    *,
    strategy: str = "fifo",
    enable_persona_clause: bool = True,
    processes: int | None = None,
    chunksize: int | None = None,
) -> list[BatchVerdict]:
    """Feasibility verdicts for a batch, in input order.

    Mixing :class:`ProblemSpec` recipes (rebuilt worker-side) and ready
    :class:`ExchangeProblem` objects (pickled whole) is allowed.
    """
    fn = partial(
        _check_one, strategy=strategy, enable_persona_clause=enable_persona_clause
    )
    return parallel_map(fn, items, processes=processes, chunksize=chunksize)


def batch_specs(
    count: int,
    config: RandomProblemConfig = RandomProblemConfig(),
    seed: int = 0,
) -> list[ProblemSpec]:
    """*count* specs with the same sub-seed stream as ``random_problem_batch``.

    ``[spec.build() for spec in batch_specs(n, cfg, s)]`` reproduces
    ``random_problem_batch(n, cfg, s)`` exactly.
    """
    rng = random.Random(seed)
    return [ProblemSpec(config=config, seed=rng.random()) for _ in range(count)]
