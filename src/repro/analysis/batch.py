"""Batched feasibility pipeline: fan thousands of reductions over a process pool.

The Monte-Carlo studies (:mod:`repro.analysis.feasibility_study`,
:mod:`repro.analysis.indemnity_study`) and the CLI's ``sweep`` commands all
evaluate *many independent* problems; each verdict is embarrassingly
parallel.  This module provides the shared driver:

* :func:`parallel_map` — ordered, chunked ``map`` over a
  :class:`concurrent.futures.ProcessPoolExecutor`, falling back to a plain
  serial loop for small batches or ``processes<=1``.  Results always come
  back **in input order**, and the serial and parallel paths run the exact
  same per-item function, so verdicts are deterministic and identical either
  way (the batch test suite asserts this over 1000+ problems).
* :class:`ProblemSpec` — a small picklable *recipe* (random-problem config +
  seed + optional extra trust edges).  Workers rebuild the problem from the
  spec on their side, so the parent never pickles whole
  :class:`~repro.core.problem.ExchangeProblem` graphs across the pool
  boundary for generated workloads.
* :func:`check_feasibility_batch` — the batched §4.2.4 verdict:
  accepts specs and/or ready problems, returns light
  :class:`BatchVerdict` rows.  ``engine="flat"`` routes whole *blocks* of
  problems through the compiled arena
  (:func:`repro.core.flatcore.check_feasibility_flat_batch`) instead of
  one indexed reduction per problem — same verdicts (the reduction system
  is confluent; DESIGN.md §11), a fraction of the interpreter overhead.
* :func:`batch_specs` — the spec-level twin of
  :func:`repro.workloads.random_graphs.random_problem_batch` (identical
  sub-seed derivation, so ``spec.build()`` reproduces the same problems).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Sequence, TypeVar

import random

from repro.core.flatcore import ENGINES, check_feasibility_flat_batch
from repro.core.problem import ExchangeProblem
from repro.errors import ReproError
from repro.obs.metrics import MetricsSnapshot, merge_snapshots
from repro.obs.runtime import metrics_scope
from repro.workloads.random_graphs import RandomProblemConfig, random_problem

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool costs more than it saves; run serially.
SERIAL_THRESHOLD = 8

#: Problems per arena when the flat engine batches a pool task.
FLAT_BLOCK = 64


def effective_cpu_count() -> int:
    """CPUs actually available to this process.

    Uses :func:`os.process_cpu_count` (Python 3.13+, affinity-aware) when
    present, falling back to :func:`os.cpu_count`.  Recorded in every bench
    and report artifact so throughput numbers stay interpretable, and used
    to warn when a process pool is requested on a single-core host.
    """
    getter = getattr(os, "process_cpu_count", None)
    count: int | None = getter() if getter is not None else os.cpu_count()
    return count or 1


def _auto_processes() -> int:
    return effective_cpu_count()


def _auto_chunksize(n_items: int, processes: int) -> int:
    """Chunk so each worker sees a handful of batches (amortizes IPC)."""
    return max(1, n_items // (processes * 4))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Apply *fn* to every item, preserving input order.

    ``processes=None`` uses all cores; ``processes<=1`` (or a batch smaller
    than :data:`SERIAL_THRESHOLD`) runs serially in-process.  *fn* must be
    picklable (a module-level function, or a :func:`functools.partial` of
    one) for the pooled path.
    """
    items = list(items)
    workers = _auto_processes() if processes is None else processes
    if workers <= 1 or len(items) < SERIAL_THRESHOLD:
        return [fn(item) for item in items]
    if effective_cpu_count() == 1:
        # Results are identical either way, so honor the request — but say
        # why it won't be faster (BENCH_reduction.json's batched_study rows
        # looked like a parallelization failure until this was diagnosed).
        warnings.warn(
            "parallel_map: this host exposes a single CPU to the process; "
            f"a pool of {workers} workers only adds dispatch overhead",
            RuntimeWarning,
            stacklevel=2,
        )
    workers = min(workers, len(items))
    if chunksize is None:
        chunksize = _auto_chunksize(len(items), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _instrumented_call(item: T, fn: Callable[[T], R]) -> tuple[R, MetricsSnapshot]:
    """Run one work item inside a fresh metrics-only observability scope."""
    with metrics_scope() as tracer:
        result = fn(item)
    return result, tracer.metrics.snapshot()


def instrumented_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int | None = None,
) -> tuple[list[R], MetricsSnapshot]:
    """:func:`parallel_map` plus deterministic per-worker metrics merging.

    Every item runs inside its own metrics-only tracer scope — in this
    process on the serial path, worker-side on the pooled path — and the
    per-item snapshots come back with the results and are folded **in input
    order**.  Counters and histograms merge by sum and gauges by max (all
    order-independent), so the merged snapshot and its
    :func:`~repro.obs.metrics.snapshot_digest` are byte-identical between
    serial and ``--jobs`` execution: the same contract the fuzz digest
    already makes for verdicts, extended to observability.
    """
    wrapped = partial(_instrumented_call, fn=fn)
    pairs = parallel_map(wrapped, items, processes=processes, chunksize=chunksize)
    results = [result for result, _ in pairs]
    merged = merge_snapshots([snapshot for _, snapshot in pairs])
    return results, merged


@dataclass(frozen=True)
class ProblemSpec:
    """A picklable recipe for worker-side problem construction.

    ``trust_edges`` name extra direct-trust pairs ``(truster, trustee)`` to
    add after generation (party names, since parties are reconstructed in
    the worker).
    """

    config: RandomProblemConfig = field(default_factory=RandomProblemConfig)
    seed: int | float = 0
    trust_edges: tuple[tuple[str, str], ...] = ()

    def build(self) -> ExchangeProblem:
        """Construct the problem this spec describes (deterministic)."""
        problem = random_problem(self.config, seed=self.seed)
        if self.trust_edges:
            by_name = {p.name: p for p in problem.interaction.parties}
            for truster, trustee in self.trust_edges:
                problem.trust.add(by_name[truster], by_name[trustee])
        return problem


@dataclass(frozen=True)
class BatchVerdict:
    """One feasibility verdict, flattened for cheap transport off a worker.

    Carries everything the studies aggregate (the full trace stays in the
    worker — pickling whole sequencing graphs back would dominate runtime).
    """

    feasible: bool
    steps: int
    remaining: int
    blockages: int

    @classmethod
    def of(
        cls, problem: ExchangeProblem, strategy: str, enable_persona_clause: bool
    ) -> "BatchVerdict":
        verdict = problem.feasibility(
            strategy=strategy, enable_persona_clause=enable_persona_clause
        )
        return cls(
            feasible=verdict.feasible,
            steps=len(verdict.trace.steps),
            remaining=len(verdict.trace.remaining),
            blockages=len(verdict.blockages),
        )


def _check_one(
    item: "ProblemSpec | ExchangeProblem",
    strategy: str = "fifo",
    enable_persona_clause: bool = True,
) -> BatchVerdict:
    """Worker: build (if a spec) and reduce one problem."""
    problem = item.build() if isinstance(item, ProblemSpec) else item
    return BatchVerdict.of(problem, strategy, enable_persona_clause)


def _check_block_flat(
    block: "tuple[ProblemSpec | ExchangeProblem, ...]",
    enable_persona_clause: bool = True,
) -> list[BatchVerdict]:
    """Worker: compile one block of problems into an arena and reduce it.

    One pool task now carries :data:`FLAT_BLOCK` problems instead of one, so
    the flat engine's per-problem overhead is a slice of a shared scratch
    copy rather than a full engine construction.
    """
    graphs = [
        (item.build() if isinstance(item, ProblemSpec) else item).sequencing_graph()
        for item in block
    ]
    return [
        BatchVerdict(
            feasible=v.feasible,
            steps=v.steps,
            remaining=v.remaining,
            blockages=v.blockages,
        )
        for v in check_feasibility_flat_batch(
            graphs, enable_persona_clause=enable_persona_clause
        )
    ]


def check_feasibility_batch(
    items: "Sequence[ProblemSpec | ExchangeProblem]",
    *,
    strategy: str = "fifo",
    enable_persona_clause: bool = True,
    processes: int | None = None,
    chunksize: int | None = None,
    engine: str = "indexed",
) -> list[BatchVerdict]:
    """Feasibility verdicts for a batch, in input order.

    Mixing :class:`ProblemSpec` recipes (rebuilt worker-side) and ready
    :class:`ExchangeProblem` objects (pickled whole) is allowed.

    ``engine="flat"`` reduces via the compiled arena.  The flat loop picks
    its own removal order, but reductions are confluent (unique normal
    form, DESIGN.md §11), so the verdict rows are identical to the indexed
    engine's under *every* ``strategy`` — the flat-batch test suite and the
    conformance fuzzer's flat arm both assert this.
    """
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
        )
    if engine == "flat":
        block_size = chunksize if chunksize is not None else FLAT_BLOCK
        blocks = [
            tuple(items[i : i + block_size])
            for i in range(0, len(items), block_size)
        ]
        block_fn = partial(
            _check_block_flat, enable_persona_clause=enable_persona_clause
        )
        nested = parallel_map(block_fn, blocks, processes=processes, chunksize=1)
        return [verdict for block in nested for verdict in block]
    fn = partial(
        _check_one, strategy=strategy, enable_persona_clause=enable_persona_clause
    )
    return parallel_map(fn, items, processes=processes, chunksize=chunksize)


def batch_specs(
    count: int,
    config: RandomProblemConfig = RandomProblemConfig(),
    seed: int = 0,
) -> list[ProblemSpec]:
    """*count* specs with the same sub-seed stream as ``random_problem_batch``.

    ``[spec.build() for spec in batch_specs(n, cfg, s)]`` reproduces
    ``random_problem_batch(n, cfg, s)`` exactly.
    """
    rng = random.Random(seed)
    return [ProblemSpec(config=config, seed=rng.random()) for _ in range(count)]
