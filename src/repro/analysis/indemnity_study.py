"""Indemnity-capital studies (§6 / Figure 7, generalized).

Figure 7 shows the ordering effect for one 3-document bundle; these sweeps
generalize it: how the total escrow scales with bundle size, how far the
worst ordering overshoots the greedy optimum, and the full per-permutation
cost table for small bundles (the raw data behind the figure).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro.analysis.batch import parallel_map
from repro.core.indemnity import (
    commitment_cost,
    greedy_order,
    minimal_indemnity_plan,
    plan_indemnities,
)
from repro.core.parties import consumer
from repro.workloads.bundles import broker_bundle

CONSUMER = consumer("Consumer")


@dataclass(frozen=True)
class OrderingCost:
    """Escrow total for one indemnification order."""

    order: tuple[str, ...]  # trusted-intermediary names, in offer order
    total_cents: int
    offers: int


def _ordering_cost_worker(
    spec: tuple[tuple[float, ...], tuple[int, ...]], engine: str = "indexed"
) -> OrderingCost:
    """Worker: rebuild the bundle and price one permutation of its members."""
    prices, permutation_indices = spec
    problem = broker_bundle(len(prices), prices)
    members = [e for e in problem.interaction.edges if e.principal == CONSUMER]
    permutation = [members[i] for i in permutation_indices]
    plan = plan_indemnities(problem, permutation, engine=engine)
    return OrderingCost(
        order=tuple(e.trusted.name for e in permutation),
        total_cents=plan.total_cents,
        offers=len(plan.offers),
    )


def ordering_costs(
    prices: Sequence[float], processes: int | None = 1, engine: str = "indexed"
) -> list[OrderingCost]:
    """Escrow totals for every indemnification order of a bundle.

    For Figure 7's prices this contains both of the paper's orderings —
    $90 (B1 first) and $70 (B3 first) — among the six permutations.  With
    ``processes=N`` the k! permutations fan out over the batch driver's
    process pool (each worker rebuilds the bundle from its prices).
    """
    prices = tuple(prices)
    specs = [
        (prices, permutation)
        for permutation in itertools.permutations(range(len(prices)))
    ]
    return parallel_map(
        partial(_ordering_cost_worker, engine=engine), specs, processes=processes
    )


@dataclass(frozen=True)
class BundleScalingRow:
    """Escrow requirements for a k-document bundle."""

    k: int
    total_price_cents: int
    greedy_cents: int
    worst_cents: int

    @property
    def overshoot(self) -> float:
        """Worst ordering relative to the greedy optimum."""
        # Dimensionless ratio of two cents amounts, not ledger arithmetic.
        if not self.greedy_cents:
            return 1.0
        return self.worst_cents / self.greedy_cents  # repro: noqa[MONEY001]


def _bundle_scaling_worker(
    spec: tuple[int, float], engine: str = "indexed"
) -> BundleScalingRow:
    """Worker: greedy vs worst escrow for one bundle size."""
    k, base_price = spec
    prices = tuple(base_price * (i + 1) for i in range(k))
    problem = broker_bundle(k, prices)
    greedy = minimal_indemnity_plan(problem, engine=engine)
    members = greedy_order(problem, CONSUMER)
    ascending = list(reversed(members))  # cheapest first = worst
    worst = plan_indemnities(problem, ascending, engine=engine)
    return BundleScalingRow(
        k=k,
        total_price_cents=sum(commitment_cost(e) for e in members),
        greedy_cents=greedy.total_cents,
        worst_cents=worst.total_cents,
    )


def bundle_scaling(
    max_k: int = 5,
    base_price: float = 10.0,
    processes: int | None = 1,
    engine: str = "indexed",
) -> list[BundleScalingRow]:
    """Greedy vs worst-order escrow as bundle size grows.

    Prices are ``base_price · (1..k)``.  Greedy = (k−2)·S + c_min; worst =
    ascending-cost order = (k−2)·S + c_max (the most expensive piece left
    uncovered last is never optimal).
    """
    specs = [(k, base_price) for k in range(2, max_k + 1)]
    return parallel_map(
        partial(_bundle_scaling_worker, engine=engine), specs, processes=processes
    )


def figure7_table() -> list[str]:
    """The Figure 7 narrative as text rows (used by the bench and CLI)."""
    rows = ordering_costs((10.0, 20.0, 30.0))
    by_total = sorted(rows, key=lambda r: (r.total_cents, r.order))
    lines = [f"{'order (first two indemnifiers)':<34} {'total':>8} {'offers':>6}"]
    for row in by_total:
        label = " -> ".join(row.order[: row.offers])
        lines.append(f"{label:<34} ${row.total_cents / 100:>6.2f} {row.offers:>6}")
    return lines
