"""Compile a validated specification into an :class:`ExchangeProblem`.

The mapping is direct: principal/trusted declarations register parties,
each exchange clause becomes one interaction edge whose ``provides`` is a
:class:`Money` (PAYS) or :class:`Document` (GIVES), priority statements mark
red edges, and trust statements populate the :class:`TrustRelation`.
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.items import Document, Item, cents
from repro.core.parties import Party, Role
from repro.core.problem import ExchangeProblem
from repro.core.trust import TrustRelation
from repro.errors import SpecSemanticError
from repro.spec.analyzer import analyze
from repro.spec.ast import ClauseKind, MemberClause, PrincipalKind, SpecFile
from repro.spec.parser import parse

_ROLE_OF_KIND = {
    PrincipalKind.CONSUMER: Role.CONSUMER,
    PrincipalKind.BROKER: Role.BROKER,
    PrincipalKind.PRODUCER: Role.PRODUCER,
}


def _clause_item(clause: MemberClause) -> Item:
    """The Item a member clause deposits."""
    if clause.kind is ClauseKind.PAYS:
        assert clause.amount_cents is not None
        return cents(clause.amount_cents, tag=clause.tag)
    assert clause.item is not None
    label = f"{clause.item}#{clause.tag}" if clause.tag else clause.item
    return Document(label)


def _expected_item(clause: MemberClause) -> Item:
    """The Item named by a clause's ``expects`` annotation."""
    if clause.expects_amount_cents is not None:
        return cents(clause.expects_amount_cents, tag=clause.expects_tag)
    assert clause.expects_item is not None
    label = (
        f"{clause.expects_item}#{clause.expects_tag}"
        if clause.expects_tag
        else clause.expects_item
    )
    return Document(label)


def compile_spec(spec: SpecFile, validate: bool = True) -> ExchangeProblem:
    """Lower a (semantically valid) :class:`SpecFile` to an exchange problem.

    ``validate`` additionally runs the interaction graph's structural checks
    (pairwise trusted components etc.); disable it when compiling §9
    multi-party extensions for separate validation.
    """
    analyze(spec)

    parties: dict[str, Party] = {}
    graph = InteractionGraph()
    for decl in spec.principals:
        party = Party(decl.name, _ROLE_OF_KIND[decl.kind])
        parties[decl.name] = party
        graph.add_principal(party)
    for decl in spec.trusted:
        party = Party(decl.name, Role.TRUSTED)
        parties[decl.name] = party
        graph.add_trusted(party)

    for exchange in spec.exchanges:
        via = parties[exchange.via]
        deposits = {
            clause.party: _clause_item(clause) for clause in exchange.clauses
        }
        if any(clause.has_expects for clause in exchange.clauses):
            members = [
                (parties[clause.party], deposits[clause.party])
                for clause in exchange.clauses
            ]
            entitlements = {
                parties[clause.party]: _expected_item(clause)
                for clause in exchange.clauses
            }
            graph.add_multi_exchange(via, members, entitlements=entitlements)
        else:
            for clause in exchange.clauses:
                graph.add_edge(parties[clause.party], via, deposits[clause.party])
        if exchange.deadline is not None:
            graph.set_deadline(via, float(exchange.deadline))

    for priority in spec.priorities:
        edge = graph.find_edge(priority.principal, priority.via)
        graph.mark_priority(edge)

    trust = TrustRelation()
    for decl in spec.trusts:
        trust.add(parties[decl.truster], parties[decl.trustee])

    problem = ExchangeProblem(spec.name, graph, trust)
    if validate:
        problem.validate()
    return problem


def load(source: str, validate: bool = True) -> ExchangeProblem:
    """Parse, analyze, and compile specification text in one call."""
    return compile_spec(parse(source), validate=validate)


def load_file(path: str, validate: bool = True) -> ExchangeProblem:
    """Load a specification from a file path."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise SpecSemanticError(f"cannot read spec file {path!r}: {exc}") from exc
    return load(source, validate=validate)
