"""Token definitions for the exchange-specification language.

The paper introduces "a language for specifying these commercial exchange
problems" (§1) but gives no concrete syntax; this package supplies one.  A
specification is a sequence of keyword-initiated statements::

    problem "example1"

    principal consumer Consumer
    principal broker   Broker
    principal producer Producer
    trusted Trusted1
    trusted Trusted2

    exchange via Trusted1 {
        Consumer pays $12.00 tag retail
        Broker   gives d
    }
    exchange via Trusted2 {
        Broker   pays $10.00 tag wholesale
        Producer gives d
    }

    priority Broker via Trusted1      # red edge: secure the buyer first
    trust Source1 -> Broker1          # direct trust (§4.2.3)

Tokens carry 1-based line/column positions for error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical classes of the spec language."""

    IDENT = "identifier"
    STRING = "string"
    AMOUNT = "amount"  # $12.00 — value in cents
    NUMBER = "number"
    LBRACE = "{"
    RBRACE = "}"
    ARROW = "->"
    KEYWORD = "keyword"
    EOF = "end of input"


KEYWORDS = frozenset(
    {
        "problem",
        "principal",
        "consumer",
        "broker",
        "producer",
        "trusted",
        "exchange",
        "via",
        "pays",
        "gives",
        "tag",
        "priority",
        "trust",
        "deadline",
        "expects",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position.

    ``value`` is the raw text for identifiers/keywords, the unquoted content
    for strings, and the integer cent count (as ``int``) for amounts.
    """

    type: TokenType
    value: str | int
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the keyword *word*."""
        return self.type is TokenType.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.type in (TokenType.LBRACE, TokenType.RBRACE, TokenType.ARROW):
            return f"'{self.type.value}'"
        if self.type is TokenType.EOF:
            return "end of input"
        return f"{self.type.value} {self.value!r}"
