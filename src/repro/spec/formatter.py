"""Render an :class:`ExchangeProblem` back to specification text.

``format_problem`` is the inverse of :func:`repro.spec.compiler.load` up to
whitespace: compiling the rendered text yields a problem with identical
parties, edges, priorities, and trust edges (the round-trip property tests
rely on this).
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.items import Item, Money
from repro.core.parties import Role
from repro.core.problem import ExchangeProblem
from repro.errors import SpecError

_KIND_OF_ROLE = {
    Role.CONSUMER: "consumer",
    Role.BROKER: "broker",
    Role.PRODUCER: "producer",
}


def _split_tag(label: str) -> tuple[str, str]:
    """Split an item label into (base, tag) on the '#' convention."""
    if "#" in label:
        base, tag = label.split("#", 1)
        return base, tag
    return label, ""


def _clause_for(item: Item) -> str:
    if isinstance(item, Money):
        _, tag = _split_tag(item.label)
        dollars = item.cents // 100
        hundredths = item.cents % 100
        clause = f"pays ${dollars}.{hundredths:02d}"
    else:
        base, tag = _split_tag(item.label)
        clause = f"gives {base}"
    if tag:
        clause += f" tag {tag}"
    return clause


def _expects_for(item: Item) -> str:
    """Render an ``expects`` annotation for *item*."""
    if isinstance(item, Money):
        _, tag = _split_tag(item.label)
        text = f"${item.cents // 100}.{item.cents % 100:02d}"
    else:
        base, tag = _split_tag(item.label)
        text = base
    if tag:
        text += f" tag {tag}"
    return text


def format_problem(problem: ExchangeProblem) -> str:
    """Render *problem* as specification text."""
    graph: InteractionGraph = problem.interaction
    lines: list[str] = [f'problem "{problem.name}"', ""]

    for principal in graph.principals:
        kind = _KIND_OF_ROLE.get(principal.role)
        if kind is None:  # pragma: no cover - graph invariants forbid this
            raise SpecError(f"{principal.name} has non-principal role {principal.role}")
        lines.append(f"principal {kind} {principal.name}")
    for component in graph.trusted_components:
        lines.append(f"trusted {component.name}")
    lines.append("")

    for component in graph.trusted_components:
        header = f"exchange via {component.name}"
        deadline = graph.deadline_of(component)
        if deadline is not None:
            header += f" deadline {int(deadline)}"
        lines.append(header + " {")
        edges = graph.edges_at(component)
        explicit = len(edges) > 2
        for edge in edges:
            clause = f"    {edge.principal.name} {_clause_for(edge.provides)}"
            if explicit:
                clause += f" expects {_expects_for(graph.expects(edge))}"
            lines.append(clause)
        lines.append("}")
    lines.append("")

    emitted_any = False
    for edge in graph.edges:
        if edge in graph.priority_edges:
            lines.append(f"priority {edge.principal.name} via {edge.trusted.name}")
            emitted_any = True
    for truster, trustee in problem.trust:
        lines.append(f"trust {truster.name} -> {trustee.name}")
        emitted_any = True
    if not emitted_any:
        lines.pop()  # drop the trailing blank separator
    return "\n".join(lines).rstrip() + "\n"
