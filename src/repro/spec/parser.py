"""Recursive-descent parser for the exchange-specification language.

Grammar (keywords lowercase, ``*`` = repetition)::

    spec       := problem? statement*
    problem    := "problem" (STRING | IDENT)
    statement  := principal | trusted | exchange | priority | trust
    principal  := "principal" ("consumer"|"broker"|"producer") IDENT
    trusted    := "trusted" IDENT
    exchange   := "exchange" "via" IDENT ("deadline" NUMBER)? "{" clause clause+ "}"
    clause     := IDENT ("pays" AMOUNT | "gives" IDENT) ("tag" IDENT)? expects?
    expects    := "expects" (IDENT | AMOUNT) ("tag" IDENT)?
    priority   := "priority" IDENT "via" IDENT
    trust      := "trust" IDENT "->" IDENT

All errors are :class:`SpecSyntaxError` with source positions.
"""

from __future__ import annotations

from repro.errors import SpecSyntaxError
from repro.spec.ast import (
    ClauseKind,
    ExchangeDecl,
    MemberClause,
    Position,
    PrincipalDecl,
    PrincipalKind,
    PriorityDecl,
    SpecFile,
    TrustDecl,
    TrustedDecl,
)
from repro.spec.lexer import tokenize
from repro.spec.tokens import Token, TokenType


class Parser:
    """Consumes a token stream and yields a :class:`SpecFile`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ util

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> SpecSyntaxError:
        token = token if token is not None else self._peek()
        return SpecSyntaxError(message, line=token.line, column=token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise self._error(f"expected '{word}', found {token}", token)
        return token

    def _expect_ident(self, what: str) -> Token:
        token = self._advance()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected {what}, found {token}", token)
        return token

    @staticmethod
    def _pos(token: Token) -> Position:
        return Position(token.line, token.column)

    # ----------------------------------------------------------------- parse

    def parse(self) -> SpecFile:
        """Parse the full specification."""
        name = self._parse_problem_header()
        principals: list[PrincipalDecl] = []
        trusted: list[TrustedDecl] = []
        exchanges: list[ExchangeDecl] = []
        priorities: list[PriorityDecl] = []
        trusts: list[TrustDecl] = []
        while self._peek().type is not TokenType.EOF:
            token = self._peek()
            if token.is_keyword("principal"):
                principals.append(self._parse_principal())
            elif token.is_keyword("trusted"):
                trusted.append(self._parse_trusted())
            elif token.is_keyword("exchange"):
                exchanges.append(self._parse_exchange())
            elif token.is_keyword("priority"):
                priorities.append(self._parse_priority())
            elif token.is_keyword("trust"):
                trusts.append(self._parse_trust())
            else:
                raise self._error(
                    f"expected a statement keyword (principal/trusted/exchange/"
                    f"priority/trust), found {token}"
                )
        return SpecFile(
            name=name,
            principals=tuple(principals),
            trusted=tuple(trusted),
            exchanges=tuple(exchanges),
            priorities=tuple(priorities),
            trusts=tuple(trusts),
        )

    def _parse_problem_header(self) -> str:
        if not self._peek().is_keyword("problem"):
            return "unnamed"
        self._advance()
        token = self._advance()
        if token.type not in (TokenType.STRING, TokenType.IDENT):
            raise self._error("expected a problem name after 'problem'", token)
        return str(token.value)

    def _parse_principal(self) -> PrincipalDecl:
        start = self._expect_keyword("principal")
        kind_token = self._advance()
        kinds = {kind.value: kind for kind in PrincipalKind}
        if kind_token.type is not TokenType.KEYWORD or kind_token.value not in kinds:
            raise self._error(
                "expected 'consumer', 'broker' or 'producer' after 'principal'",
                kind_token,
            )
        name = self._expect_ident("a principal name")
        return PrincipalDecl(kinds[str(kind_token.value)], str(name.value), self._pos(start))

    def _parse_trusted(self) -> TrustedDecl:
        start = self._expect_keyword("trusted")
        name = self._expect_ident("a trusted-component name")
        return TrustedDecl(str(name.value), self._pos(start))

    def _parse_exchange(self) -> ExchangeDecl:
        start = self._expect_keyword("exchange")
        self._expect_keyword("via")
        via = self._expect_ident("a trusted-component name")
        deadline: int | None = None
        if self._peek().is_keyword("deadline"):
            self._advance()
            number = self._advance()
            if number.type is not TokenType.NUMBER:
                raise self._error("expected a number after 'deadline'", number)
            deadline = int(number.value)
        brace = self._advance()
        if brace.type is not TokenType.LBRACE:
            raise self._error("expected '{' opening the exchange block", brace)
        clauses: list[MemberClause] = []
        while self._peek().type is not TokenType.RBRACE:
            if self._peek().type is TokenType.EOF:
                raise self._error("unterminated exchange block (missing '}')")
            clauses.append(self._parse_clause())
        self._advance()  # consume '}'
        if len(clauses) < 2:
            raise self._error(
                "an exchange needs at least two member clauses", start
            )
        return ExchangeDecl(
            str(via.value), tuple(clauses), self._pos(start), deadline=deadline
        )

    def _parse_clause(self) -> MemberClause:
        party = self._expect_ident("a participant name")
        verb = self._advance()
        amount_cents: int | None = None
        item: str | None = None
        if verb.is_keyword("pays"):
            amount = self._advance()
            if amount.type is not TokenType.AMOUNT:
                raise self._error("expected a '$' amount after 'pays'", amount)
            amount_cents = int(amount.value)
            kind = ClauseKind.PAYS
        elif verb.is_keyword("gives"):
            item_token = self._expect_ident("an item name")
            item = str(item_token.value)
            kind = ClauseKind.GIVES
        else:
            raise self._error(f"expected 'pays' or 'gives', found {verb}", verb)
        tag = ""
        if self._peek().is_keyword("tag"):
            self._advance()
            tag_token = self._expect_ident("a tag name")
            tag = str(tag_token.value)
        expects_item: str | None = None
        expects_amount: int | None = None
        expects_tag = ""
        if self._peek().is_keyword("expects"):
            self._advance()
            target = self._advance()
            if target.type is TokenType.AMOUNT:
                expects_amount = int(target.value)
            elif target.type is TokenType.IDENT:
                expects_item = str(target.value)
            else:
                raise self._error(
                    "expected an item name or '$' amount after 'expects'", target
                )
            if self._peek().is_keyword("tag"):
                self._advance()
                expects_tag_token = self._expect_ident("a tag name")
                expects_tag = str(expects_tag_token.value)
        return MemberClause(
            party=str(party.value),
            kind=kind,
            amount_cents=amount_cents,
            item=item,
            tag=tag,
            position=self._pos(party),
            expects_item=expects_item,
            expects_amount_cents=expects_amount,
            expects_tag=expects_tag,
        )

    def _parse_priority(self) -> PriorityDecl:
        start = self._expect_keyword("priority")
        principal = self._expect_ident("a principal name")
        self._expect_keyword("via")
        via = self._expect_ident("a trusted-component name")
        return PriorityDecl(str(principal.value), str(via.value), self._pos(start))

    def _parse_trust(self) -> TrustDecl:
        start = self._expect_keyword("trust")
        truster = self._expect_ident("a party name")
        arrow = self._advance()
        if arrow.type is not TokenType.ARROW:
            raise self._error("expected '->' in trust statement", arrow)
        trustee = self._expect_ident("a party name")
        return TrustDecl(str(truster.value), str(trustee.value), self._pos(start))


def parse(source: str) -> SpecFile:
    """Parse specification text into a :class:`SpecFile`."""
    return Parser(tokenize(source)).parse()
