"""A concrete text language for the paper's exchange problems (§1, §2).

Pipeline: :func:`tokenize` → :func:`parse` → :func:`analyze` →
:func:`compile_spec`; or just :func:`load` / :func:`load_file` end to end.
:func:`format_problem` renders a problem back to text (round-trip safe).
"""

from repro.spec.analyzer import analyze
from repro.spec.ast import (
    ClauseKind,
    ExchangeDecl,
    MemberClause,
    Position,
    PrincipalDecl,
    PrincipalKind,
    PriorityDecl,
    SpecFile,
    TrustDecl,
    TrustedDecl,
)
from repro.spec.compiler import compile_spec, load, load_file
from repro.spec.formatter import format_problem
from repro.spec.lexer import Lexer, tokenize
from repro.spec.parser import Parser, parse
from repro.spec.tokens import KEYWORDS, Token, TokenType

__all__ = [
    "analyze",
    "ClauseKind",
    "ExchangeDecl",
    "MemberClause",
    "Position",
    "PrincipalDecl",
    "PrincipalKind",
    "PriorityDecl",
    "SpecFile",
    "TrustDecl",
    "TrustedDecl",
    "compile_spec",
    "load",
    "load_file",
    "format_problem",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "KEYWORDS",
    "Token",
    "TokenType",
]
