"""Abstract syntax tree of the exchange-specification language.

Each node remembers its source position for diagnostics.  The AST maps 1:1
to the paper's formal objects: principal/trusted declarations build *P* and
*T* of the interaction graph, exchange blocks build *E* (two member clauses
per pairwise exchange), ``priority`` statements become red edges, and
``trust`` statements populate the direct-trust relation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """1-based source location of a node."""

    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"line {self.line}, column {self.column}"


class PrincipalKind(enum.Enum):
    """The three principal classes of §2.1."""

    CONSUMER = "consumer"
    BROKER = "broker"
    PRODUCER = "producer"


class ClauseKind(enum.Enum):
    """What a member of an exchange block contributes."""

    PAYS = "pays"
    GIVES = "gives"


@dataclass(frozen=True)
class PrincipalDecl:
    """``principal <kind> <name>``"""

    kind: PrincipalKind
    name: str
    position: Position


@dataclass(frozen=True)
class TrustedDecl:
    """``trusted <name>``"""

    name: str
    position: Position


@dataclass(frozen=True)
class MemberClause:
    """``<party> pays $X [tag t]`` or ``<party> gives <item> [tag t]``.

    ``amount_cents`` is set for PAYS, ``item`` for GIVES; ``tag``
    disambiguates otherwise-identical items.
    """

    party: str
    kind: ClauseKind
    amount_cents: int | None
    item: str | None
    tag: str
    position: Position
    expects_item: str | None = None
    expects_amount_cents: int | None = None
    expects_tag: str = ""

    @property
    def has_expects(self) -> bool:
        """Whether the clause names its entitlement explicitly (§9 multi-party)."""
        return self.expects_item is not None or self.expects_amount_cents is not None


@dataclass(frozen=True)
class ExchangeDecl:
    """``exchange via <trusted> { <clauses...> }``"""

    via: str
    clauses: tuple[MemberClause, ...]
    position: Position
    deadline: int | None = None  # §2.2: how long deposits are held


@dataclass(frozen=True)
class PriorityDecl:
    """``priority <principal> via <trusted>`` — a red edge (§4.1)."""

    principal: str
    via: str
    position: Position


@dataclass(frozen=True)
class TrustDecl:
    """``trust <truster> -> <trustee>`` — direct trust (§4.2.3)."""

    truster: str
    trustee: str
    position: Position


@dataclass(frozen=True)
class SpecFile:
    """A parsed specification: name plus declaration lists, in source order."""

    name: str
    principals: tuple[PrincipalDecl, ...] = field(default_factory=tuple)
    trusted: tuple[TrustedDecl, ...] = field(default_factory=tuple)
    exchanges: tuple[ExchangeDecl, ...] = field(default_factory=tuple)
    priorities: tuple[PriorityDecl, ...] = field(default_factory=tuple)
    trusts: tuple[TrustDecl, ...] = field(default_factory=tuple)

    def principal_names(self) -> set[str]:
        """All declared principal names."""
        return {decl.name for decl in self.principals}

    def trusted_names(self) -> set[str]:
        """All declared trusted-component names."""
        return {decl.name for decl in self.trusted}
