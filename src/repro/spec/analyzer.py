"""Semantic analysis of parsed specifications.

The parser guarantees shape; the analyzer guarantees meaning:

* every name is declared exactly once, and principal/trusted namespaces do
  not collide;
* exchange blocks reference declared parties, members are principals, the
  intermediary is trusted, and members of one exchange are distinct;
* the two sides of a pairwise exchange provide distinct items;
* ``priority`` statements reference an existing (principal, via) edge;
* ``trust`` statements reference declared principals and are not reflexive;
* every declared party participates in at least one exchange.

Errors are :class:`SpecSemanticError` carrying the offending position.

On top of the fatal checks sits a **non-fatal warning tier**
(:func:`analyze_warnings`) that flags declarations which are legal but
almost certainly not what the author meant:

* ``SPECW001`` — the declared priorities alone make the exchange trivially
  infeasible (a red-edge cycle): dropping every ``priority`` statement
  restores feasibility;
* ``SPECW002`` — a ``trust`` declaration affects no reduction: the
  step-for-step reduction trace is identical with and without it;
* ``SPECW003`` — a party is reachable only via warned declarations: every
  ``trust``/``priority`` statement naming it is inert.

Warnings are :class:`repro.staticcheck.model.Finding` objects with
``Severity.WARNING``, so user specs and our own Python source flow through
the same reporters (``repro lint`` accepts ``.exchange`` files directly).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError, SpecSemanticError
from repro.spec.ast import ClauseKind, ExchangeDecl, MemberClause, Position, SpecFile
from repro.staticcheck.model import Finding, Severity


def analyze(spec: SpecFile) -> SpecFile:
    """Validate *spec*; returns it unchanged on success."""
    _check_declarations(spec)
    _check_exchanges(spec)
    _check_priorities(spec)
    _check_trusts(spec)
    _check_participation(spec)
    return spec


def _fail(message: str, position: Position) -> None:
    raise SpecSemanticError(message, line=position.line, column=position.column)


def _check_declarations(spec: SpecFile) -> None:
    seen: dict[str, object] = {}
    for decl in spec.principals:
        if decl.name in seen:
            _fail(f"duplicate declaration of {decl.name!r}", decl.position)
        seen[decl.name] = decl
    for decl in spec.trusted:
        if decl.name in seen:
            _fail(f"duplicate declaration of {decl.name!r}", decl.position)
        seen[decl.name] = decl


def _check_exchanges(spec: SpecFile) -> None:
    principals = spec.principal_names()
    trusted = spec.trusted_names()
    for exchange in spec.exchanges:
        if exchange.via not in trusted:
            _fail(
                f"exchange intermediary {exchange.via!r} is not a declared "
                "trusted component",
                exchange.position,
            )
        members: set[str] = set()
        signatures: set[tuple[object, ...]] = set()
        for clause in exchange.clauses:
            if clause.party not in principals:
                hint = (
                    " (it is a trusted component)" if clause.party in trusted else ""
                )
                _fail(
                    f"exchange member {clause.party!r} is not a declared principal{hint}",
                    clause.position,
                )
            if clause.party in members:
                _fail(
                    f"{clause.party!r} appears twice in the exchange via "
                    f"{exchange.via!r}",
                    clause.position,
                )
            members.add(clause.party)
            signature: tuple[object, ...]
            if clause.kind is ClauseKind.PAYS:
                signature = ("pays", clause.amount_cents, clause.tag)
            else:
                signature = ("gives", clause.item, clause.tag)
            if signature in signatures:
                _fail(
                    "both sides of an exchange provide the same item; "
                    "use 'tag' to distinguish them or fix the spec",
                    clause.position,
                )
            signatures.add(signature)
        _check_expects(exchange)


def _check_expects(exchange: ExchangeDecl) -> None:
    """Validate ``expects`` annotations (§9 multi-party entitlement maps)."""
    if exchange.deadline is not None and exchange.deadline <= 0:
        _fail("deadlines must be positive", exchange.position)
    clauses = exchange.clauses
    with_expects = [c for c in clauses if c.has_expects]
    if not with_expects:
        if len(clauses) > 2:
            _fail(
                "an exchange with more than two members must annotate every "
                "clause with 'expects'",
                exchange.position,
            )
        return
    if len(with_expects) != len(clauses):
        missing = next(c for c in clauses if not c.has_expects)
        _fail(
            f"{missing.party!r} lacks an 'expects' annotation while other "
            "members of the exchange have one",
            missing.position,
        )

    def provision_signature(clause: MemberClause) -> tuple[object, ...]:
        if clause.kind is ClauseKind.PAYS:
            return ("pays", clause.amount_cents, clause.tag)
        return ("gives", clause.item, clause.tag)

    def expects_signature(clause: MemberClause) -> tuple[object, ...]:
        if clause.expects_amount_cents is not None:
            return ("pays", clause.expects_amount_cents, clause.expects_tag)
        return ("gives", clause.expects_item, clause.expects_tag)

    provided = {provision_signature(c): c.party for c in clauses}
    for clause in clauses:
        wanted = expects_signature(clause)
        provider = provided.get(wanted)
        if provider is None:
            _fail(
                f"{clause.party!r} expects something no member deposits",
                clause.position,
            )
        if provider == clause.party:
            _fail(
                f"{clause.party!r} expects its own deposit back",
                clause.position,
            )


def _check_priorities(spec: SpecFile) -> None:
    edges = {
        (clause.party, exchange.via)
        for exchange in spec.exchanges
        for clause in exchange.clauses
    }
    seen: set[tuple[str, str]] = set()
    for priority in spec.priorities:
        key = (priority.principal, priority.via)
        if key not in edges:
            _fail(
                f"priority references no exchange edge {priority.principal!r} "
                f"via {priority.via!r}",
                priority.position,
            )
        if key in seen:
            _fail(
                f"duplicate priority for {priority.principal!r} via "
                f"{priority.via!r}",
                priority.position,
            )
        seen.add(key)


def _check_trusts(spec: SpecFile) -> None:
    declared = spec.principal_names() | spec.trusted_names()
    for trust in spec.trusts:
        for name in (trust.truster, trust.trustee):
            if name not in declared:
                _fail(
                    f"trust statement references undeclared party {name!r}",
                    trust.position,
                )
        if trust.truster == trust.trustee:
            _fail("a party cannot declare trust in itself", trust.position)


def _check_participation(spec: SpecFile) -> None:
    used_principals = {
        clause.party for exchange in spec.exchanges for clause in exchange.clauses
    }
    used_trusted = {exchange.via for exchange in spec.exchanges}
    for decl in spec.principals:
        if decl.name not in used_principals:
            _fail(
                f"principal {decl.name!r} participates in no exchange",
                decl.position,
            )
    for decl in spec.trusted:
        if decl.name not in used_trusted:
            _fail(
                f"trusted component {decl.name!r} mediates no exchange",
                decl.position,
            )


# --------------------------------------------------------------- warning tier


def _warning(
    rule: str, message: str, position: Position, path: str, suggestion: str = ""
) -> Finding:
    return Finding(
        path=path,
        line=position.line,
        column=position.column,
        rule=rule,
        message=message,
        suggestion=suggestion,
        severity=Severity.WARNING,
    )


def _trace_signature(spec: SpecFile) -> tuple[object, ...] | None:
    """A step-for-step fingerprint of the fifo reduction of *spec*.

    Returns None when the spec cannot be compiled (the fatal checks report
    that separately); two specs reduce identically iff their signatures are
    equal.
    """
    # Imported lazily: the compiler imports this module for its fatal checks.
    from repro.spec.compiler import compile_spec

    try:
        problem = compile_spec(spec, validate=False)
        trace = problem.reduce(strategy="fifo")
    except ReproError:
        return None
    steps = tuple(
        (step.edge.commitment.label, step.edge.conjunction.label, int(step.rule))
        for step in trace.steps
    )
    return (trace.feasible, steps)


def analyze_warnings(spec: SpecFile, path: str = "<spec>") -> list[Finding]:
    """The non-fatal warning tier; *spec* must already pass :func:`analyze`.

    Warnings are advisory: they never fail a build, but `repro lint` surfaces
    them through the same reporters as the Python lint passes.
    """
    findings: list[Finding] = []
    warned_priority_parties: set[str] = set()
    warned_trust_parties: set[str] = set()

    # SPECW001 — the priorities alone are a trivially infeasible cycle.
    base_signature = _trace_signature(spec)
    if spec.priorities and base_signature is not None and not base_signature[0]:
        without_priorities = dataclasses.replace(spec, priorities=())
        relaxed = _trace_signature(without_priorities)
        if relaxed is not None and relaxed[0]:
            cycle = ", ".join(
                f"{p.principal} via {p.via}" for p in spec.priorities
            )
            findings.append(
                _warning(
                    "SPECW001",
                    "the declared priorities form a trivially infeasible "
                    f"cycle ({cycle}): removing every priority statement "
                    "restores feasibility",
                    spec.priorities[0].position,
                    path,
                    suggestion="drop or reorient one of the priority edges",
                )
            )
            warned_priority_parties.update(p.principal for p in spec.priorities)

    # SPECW002 — a trust declaration that affects no reduction.
    inert_trusts = []
    for index, trust in enumerate(spec.trusts):
        remaining = spec.trusts[:index] + spec.trusts[index + 1 :]
        without = dataclasses.replace(spec, trusts=remaining)
        if base_signature is not None and _trace_signature(without) == base_signature:
            inert_trusts.append(trust)
            findings.append(
                _warning(
                    "SPECW002",
                    f"trust {trust.truster} -> {trust.trustee} affects no "
                    "reduction: the step-for-step trace is identical "
                    "without it",
                    trust.position,
                    path,
                    suggestion="remove the declaration or re-check which "
                    "edge it was meant to unlock",
                )
            )
    if len(inert_trusts) == len(spec.trusts):
        warned_trust_parties.update(
            name for t in inert_trusts for name in (t.truster, t.trustee)
        )
    else:
        effective = set(spec.trusts) - set(inert_trusts)
        inert_names = {
            name for t in inert_trusts for name in (t.truster, t.trustee)
        }
        live_names = {
            name for t in effective for name in (t.truster, t.trustee)
        }
        warned_trust_parties.update(inert_names - live_names)

    # SPECW003 — parties reachable only via warned declarations.
    mentioned: dict[str, list[str]] = {}
    for priority in spec.priorities:
        mentioned.setdefault(priority.principal, []).append("priority")
    for trust in spec.trusts:
        mentioned.setdefault(trust.truster, []).append("trust")
        mentioned.setdefault(trust.trustee, []).append("trust")
    positions = {decl.name: decl.position for decl in spec.principals}
    positions.update({decl.name: decl.position for decl in spec.trusted})
    for decl_name in sorted(mentioned):
        kinds = mentioned[decl_name]
        priority_ok = "priority" not in kinds or decl_name in warned_priority_parties
        trust_ok = "trust" not in kinds or decl_name in warned_trust_parties
        if priority_ok and trust_ok and (
            decl_name in warned_priority_parties or decl_name in warned_trust_parties
        ):
            findings.append(
                _warning(
                    "SPECW003",
                    f"party {decl_name!r} is reachable only via warned "
                    "declarations: every trust/priority statement naming it "
                    "is inert",
                    positions.get(decl_name, Position(1, 1)),
                    path,
                    suggestion="the party still trades, but its trust/priority "
                    "annotations do nothing — delete or fix them",
                )
            )
    return sorted(findings, key=lambda finding: finding.sort_key)
