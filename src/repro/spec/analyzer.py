"""Semantic analysis of parsed specifications.

The parser guarantees shape; the analyzer guarantees meaning:

* every name is declared exactly once, and principal/trusted namespaces do
  not collide;
* exchange blocks reference declared parties, members are principals, the
  intermediary is trusted, and members of one exchange are distinct;
* the two sides of a pairwise exchange provide distinct items;
* ``priority`` statements reference an existing (principal, via) edge;
* ``trust`` statements reference declared principals and are not reflexive;
* every declared party participates in at least one exchange.

Errors are :class:`SpecSemanticError` carrying the offending position.
"""

from __future__ import annotations

from repro.errors import SpecSemanticError
from repro.spec.ast import ClauseKind, SpecFile


def analyze(spec: SpecFile) -> SpecFile:
    """Validate *spec*; returns it unchanged on success."""
    _check_declarations(spec)
    _check_exchanges(spec)
    _check_priorities(spec)
    _check_trusts(spec)
    _check_participation(spec)
    return spec


def _fail(message: str, position) -> None:
    raise SpecSemanticError(message, line=position.line, column=position.column)


def _check_declarations(spec: SpecFile) -> None:
    seen: dict[str, object] = {}
    for decl in spec.principals:
        if decl.name in seen:
            _fail(f"duplicate declaration of {decl.name!r}", decl.position)
        seen[decl.name] = decl
    for decl in spec.trusted:
        if decl.name in seen:
            _fail(f"duplicate declaration of {decl.name!r}", decl.position)
        seen[decl.name] = decl


def _check_exchanges(spec: SpecFile) -> None:
    principals = spec.principal_names()
    trusted = spec.trusted_names()
    for exchange in spec.exchanges:
        if exchange.via not in trusted:
            _fail(
                f"exchange intermediary {exchange.via!r} is not a declared "
                "trusted component",
                exchange.position,
            )
        members: set[str] = set()
        signatures: set[tuple] = set()
        for clause in exchange.clauses:
            if clause.party not in principals:
                hint = (
                    " (it is a trusted component)" if clause.party in trusted else ""
                )
                _fail(
                    f"exchange member {clause.party!r} is not a declared principal{hint}",
                    clause.position,
                )
            if clause.party in members:
                _fail(
                    f"{clause.party!r} appears twice in the exchange via "
                    f"{exchange.via!r}",
                    clause.position,
                )
            members.add(clause.party)
            if clause.kind is ClauseKind.PAYS:
                signature = ("pays", clause.amount_cents, clause.tag)
            else:
                signature = ("gives", clause.item, clause.tag)
            if signature in signatures:
                _fail(
                    "both sides of an exchange provide the same item; "
                    "use 'tag' to distinguish them or fix the spec",
                    clause.position,
                )
            signatures.add(signature)
        _check_expects(exchange)


def _check_expects(exchange) -> None:
    """Validate ``expects`` annotations (§9 multi-party entitlement maps)."""
    if exchange.deadline is not None and exchange.deadline <= 0:
        _fail("deadlines must be positive", exchange.position)
    clauses = exchange.clauses
    with_expects = [c for c in clauses if c.has_expects]
    if not with_expects:
        if len(clauses) > 2:
            _fail(
                "an exchange with more than two members must annotate every "
                "clause with 'expects'",
                exchange.position,
            )
        return
    if len(with_expects) != len(clauses):
        missing = next(c for c in clauses if not c.has_expects)
        _fail(
            f"{missing.party!r} lacks an 'expects' annotation while other "
            "members of the exchange have one",
            missing.position,
        )

    def provision_signature(clause):
        if clause.kind is ClauseKind.PAYS:
            return ("pays", clause.amount_cents, clause.tag)
        return ("gives", clause.item, clause.tag)

    def expects_signature(clause):
        if clause.expects_amount_cents is not None:
            return ("pays", clause.expects_amount_cents, clause.expects_tag)
        return ("gives", clause.expects_item, clause.expects_tag)

    provided = {provision_signature(c): c.party for c in clauses}
    for clause in clauses:
        wanted = expects_signature(clause)
        provider = provided.get(wanted)
        if provider is None:
            _fail(
                f"{clause.party!r} expects something no member deposits",
                clause.position,
            )
        if provider == clause.party:
            _fail(
                f"{clause.party!r} expects its own deposit back",
                clause.position,
            )


def _check_priorities(spec: SpecFile) -> None:
    edges = {
        (clause.party, exchange.via)
        for exchange in spec.exchanges
        for clause in exchange.clauses
    }
    seen: set[tuple[str, str]] = set()
    for priority in spec.priorities:
        key = (priority.principal, priority.via)
        if key not in edges:
            _fail(
                f"priority references no exchange edge {priority.principal!r} "
                f"via {priority.via!r}",
                priority.position,
            )
        if key in seen:
            _fail(
                f"duplicate priority for {priority.principal!r} via "
                f"{priority.via!r}",
                priority.position,
            )
        seen.add(key)


def _check_trusts(spec: SpecFile) -> None:
    declared = spec.principal_names() | spec.trusted_names()
    for trust in spec.trusts:
        for name in (trust.truster, trust.trustee):
            if name not in declared:
                _fail(
                    f"trust statement references undeclared party {name!r}",
                    trust.position,
                )
        if trust.truster == trust.trustee:
            _fail("a party cannot declare trust in itself", trust.position)


def _check_participation(spec: SpecFile) -> None:
    used_principals = {
        clause.party for exchange in spec.exchanges for clause in exchange.clauses
    }
    used_trusted = {exchange.via for exchange in spec.exchanges}
    for decl in spec.principals:
        if decl.name not in used_principals:
            _fail(
                f"principal {decl.name!r} participates in no exchange",
                decl.position,
            )
    for decl in spec.trusted:
        if decl.name not in used_trusted:
            _fail(
                f"trusted component {decl.name!r} mediates no exchange",
                decl.position,
            )
