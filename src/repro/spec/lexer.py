"""Lexer for the exchange-specification language.

Whitespace-insensitive; ``#`` starts a comment running to end of line.
Amounts are dollars-and-cents literals (``$12``, ``$12.5``, ``$12.50``) and
are tokenized directly into integer cents so no float ever enters the
pipeline.
"""

from __future__ import annotations

from repro.errors import SpecSyntaxError
from repro.spec.tokens import KEYWORDS, Token, TokenType

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
_IDENT_CONT = _IDENT_START | set("0123456789_-")
_DIGITS = set("0123456789")


class Lexer:
    """Single-pass scanner over a specification string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ util

    def _peek(self) -> str:
        if self.position >= len(self.source):
            return ""
        return self.source[self.position]

    def _advance(self) -> str:
        char = self.source[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _error(self, message: str) -> SpecSyntaxError:
        return SpecSyntaxError(message, line=self.line, column=self.column)

    def _skip_trivia(self) -> None:
        while self._peek():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "#":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    # ----------------------------------------------------------------- scan

    def tokens(self) -> list[Token]:
        """Tokenize the whole input; raises :class:`SpecSyntaxError`."""
        result: list[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def next_token(self) -> Token:
        """Scan and return the next token."""
        self._skip_trivia()
        line, column = self.line, self.column
        char = self._peek()
        if not char:
            return Token(TokenType.EOF, "", line, column)
        if char == "{":
            self._advance()
            return Token(TokenType.LBRACE, "{", line, column)
        if char == "}":
            self._advance()
            return Token(TokenType.RBRACE, "}", line, column)
        if char == "-":
            self._advance()
            if self._peek() == ">":
                self._advance()
                return Token(TokenType.ARROW, "->", line, column)
            raise SpecSyntaxError("expected '->' after '-'", line=line, column=column)
        if char == '"':
            return self._string(line, column)
        if char == "$":
            return self._amount(line, column)
        if char in _DIGITS:
            return self._number(line, column)
        if char in _IDENT_START:
            return self._identifier(line, column)
        raise self._error(f"unexpected character {char!r}")

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            char = self._peek()
            if not char or char == "\n":
                raise SpecSyntaxError("unterminated string", line=line, column=column)
            self._advance()
            if char == '"':
                return Token(TokenType.STRING, "".join(chars), line, column)
            chars.append(char)

    def _amount(self, line: int, column: int) -> Token:
        self._advance()  # '$'
        digits: list[str] = []
        while self._peek() in _DIGITS:
            digits.append(self._advance())
        if not digits:
            raise SpecSyntaxError("expected digits after '$'", line=line, column=column)
        cents = int("".join(digits)) * 100
        if self._peek() == ".":
            self._advance()
            fraction: list[str] = []
            while self._peek() in _DIGITS:
                fraction.append(self._advance())
            if not fraction or len(fraction) > 2:
                raise SpecSyntaxError(
                    "amounts take at most two decimal places", line=line, column=column
                )
            fraction_text = "".join(fraction).ljust(2, "0")
            cents += int(fraction_text)
        return Token(TokenType.AMOUNT, cents, line, column)

    def _number(self, line: int, column: int) -> Token:
        digits: list[str] = []
        while self._peek() in _DIGITS:
            digits.append(self._advance())
        return Token(TokenType.NUMBER, int("".join(digits)), line, column)

    def _identifier(self, line: int, column: int) -> Token:
        chars: list[str] = [self._advance()]
        while self._peek() in _IDENT_CONT:
            chars.append(self._advance())
        word = "".join(chars)
        if word in KEYWORDS:
            return Token(TokenType.KEYWORD, word, line, column)
        return Token(TokenType.IDENT, word, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; convenience wrapper over :class:`Lexer`."""
    return Lexer(source).tokens()
