"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subsystems refine it:

* :class:`ModelError` — malformed formal objects (parties, actions, states).
* :class:`GraphError` — structural problems in interaction or sequencing
  graphs (non-bipartite edges, unknown nodes, duplicate commitments).
* :class:`ReductionError` — illegal reduction steps (removing a blocked edge).
* :class:`InfeasibleExchangeError` — an operation that requires a feasible
  exchange (e.g. execution-sequence recovery) was invoked on an infeasible
  one.
* :class:`IndemnityError` — invalid indemnity offers (wrong conjunction type,
  insufficient amount, no shared trusted intermediary).
* :class:`SpecError` — problems in the exchange-specification language, with
  source positions attached (:class:`SpecSyntaxError`,
  :class:`SpecSemanticError`).
* :class:`SimulationError` — runtime faults in the discrete-event simulator
  that indicate misuse of the API rather than modeled misbehaviour.
* :class:`FaultInjectionError` — a fault-injection plan is malformed
  (probabilities out of range, restart before crash, partition outside the
  healing horizon) or targets a party it must not (permanently silencing a
  trusted component).
* :class:`ProtocolError` — a protocol role received a message it cannot
  handle, or was asked to perform a transfer it cannot honour.
* :class:`StaticCheckError` — the ``repro lint`` engine was misused (a path
  does not exist, an unknown rule code was selected); CLI usage errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A formal object (party, item, action, state) is malformed."""


class GraphError(ReproError):
    """An interaction or sequencing graph is structurally invalid."""


class ReductionError(ReproError):
    """An illegal reduction step was attempted on a sequencing graph."""


class InfeasibleExchangeError(ReproError):
    """The requested operation is only defined for feasible exchanges."""


class IndemnityError(ReproError):
    """An indemnity offer is invalid or cannot be applied."""


class SpecError(ReproError):
    """Base class for errors in the exchange-specification language."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            message = f"{location}: {message}"
        super().__init__(message)


class SpecSyntaxError(SpecError):
    """The specification text violates the grammar."""


class SpecSemanticError(SpecError):
    """The specification parses but is inconsistent (unknown names, etc.)."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid configuration."""


class FaultInjectionError(SimulationError):
    """A fault-injection plan is malformed or targets a forbidden party."""


class ProtocolError(ReproError):
    """A protocol role cannot proceed (unexpected message, missing asset)."""


class StaticCheckError(ReproError):
    """The static-analysis engine was misused (bad path, unknown rule)."""


class NetRuntimeError(ReproError):
    """The socket runtime failed (bad frame, WAL corruption, lost node)."""
