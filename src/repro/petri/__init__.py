"""Petri-net substrate (§7.4): nets, bounded coverability, and the
exchange-problem translation whose coverability verdict mirrors the
sequencing-graph feasibility test."""

from repro.petri.net import Marking, PetriNet, Transition
from repro.petri.reachability import (
    CoverabilityResult,
    coverable,
    fire_sequence,
    guided_coverability,
    reachable_markings,
    saturate,
)
from repro.petri.translate import exchange_completable, translate

__all__ = [
    "Marking",
    "PetriNet",
    "Transition",
    "CoverabilityResult",
    "coverable",
    "guided_coverability",
    "saturate",
    "fire_sequence",
    "reachable_markings",
    "exchange_completable",
    "translate",
]
