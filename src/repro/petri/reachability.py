"""Bounded coverability search.

General Petri-net coverability was an open algorithmic frontier when the
paper appeared (§7.4 calls plain coverability "still an open problem" for
their purposes); the nets produced by :mod:`repro.petri.translate` are small
and effectively bounded, so a clamped breadth-first search suffices: token
counts are capped at a small bound (assurance places are self-replenishing
and would otherwise grow without limit), making the state space finite while
preserving coverability of targets whose demands stay within the bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ModelError
from repro.petri.net import Marking, PetriNet, Transition


@dataclass(frozen=True)
class CoverabilityResult:
    """Outcome of a coverability query."""

    coverable: bool
    witness: tuple[str, ...]  # transition names on a covering path
    states_explored: int
    truncated: bool  # hit the state cap before deciding

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.coverable


def coverable(
    net: PetriNet,
    target: Marking,
    bound: int = 3,
    max_states: int = 200_000,
) -> CoverabilityResult:
    """Breadth-first clamped search for a marking covering *target*.

    ``bound`` caps per-place token counts (sound for targets demanding at
    most ``bound`` tokens per place); ``max_states`` caps exploration, with
    ``truncated=True`` signalling an inconclusive negative.
    """
    if any(count > bound for _, count in target.counts):
        raise ModelError(
            f"target demands more than bound={bound} tokens on some place"
        )
    start = net.initial.clamp(bound)
    if start.covers(target):
        return CoverabilityResult(True, (), 1, False)

    seen: set[Marking] = {start}
    frontier: deque[tuple[Marking, tuple[str, ...]]] = deque([(start, ())])
    explored = 0
    while frontier:
        marking, path = frontier.popleft()
        explored += 1
        if explored > max_states:
            return CoverabilityResult(False, (), explored, True)
        for transition in net.transitions:
            if not transition.enabled(marking):
                continue
            successor = transition.fire(marking).clamp(bound)
            if successor in seen:
                continue
            new_path = path + (transition.name,)
            if successor.covers(target):
                return CoverabilityResult(True, new_path, explored, False)
            seen.add(successor)
            frontier.append((successor, new_path))
    return CoverabilityResult(False, (), explored, False)


def saturate(net: PetriNet) -> tuple[frozenset[str], frozenset[str]]:
    """Monotone over-approximation: (markable places, fireable transitions).

    A place is markable if initially marked or produced by some fireable
    transition; a transition is fireable if all its inputs are markable.
    Ignores token consumption, so a negative answer ("target place never
    markable") is sound, while a positive one needs a concrete witness —
    see :func:`guided_coverability`.
    """
    markable = {place for place, _ in net.initial.counts}
    fireable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for transition in net.transitions:
            if transition.name in fireable:
                continue
            if all(place in markable for place, _ in transition.consumes):
                fireable.add(transition.name)
                for place, _ in transition.produces:
                    if place not in markable:
                        markable.add(place)
                changed = True
    return frozenset(markable), frozenset(fireable)


def guided_coverability(net: PetriNet, target: Marking) -> CoverabilityResult:
    """Witness search specialized to the exchange nets of ``translate``.

    Scheduler: keep minting assurances (``assure:*`` self-loops fire when
    their assured place is empty), fire any enabled non-complete transition,
    and only then fire ``complete:*`` transitions — deferring completions
    keeps deposits readable by assure transitions, which is always safe for
    these nets.  Every step is a real firing, so a positive answer is a
    genuine witness; a negative answer is confirmed against
    :func:`saturate` (sound) and only then returned.
    """
    marking = net.initial
    path: list[str] = []
    fired_once: set[str] = set()
    explored = 0
    progress = True
    while progress:
        if marking.covers(target):
            return CoverabilityResult(True, tuple(path), explored, False)
        progress = False
        for transition in net.transitions:
            explored += 1
            name = transition.name
            if not transition.enabled(marking):
                continue
            if name.startswith("assure:"):
                assured_place = next(p for p, _ in transition.produces if p.startswith("assured:"))
                if marking.get(assured_place) > 0:
                    continue
            elif name.startswith("complete:"):
                continue  # deferred to the fallback phase below
            elif name in fired_once:
                continue
            marking = transition.fire(marking)
            fired_once.add(name)
            path.append(name)
            progress = True
            break
        if progress:
            continue
        for transition in net.transitions:
            name = transition.name
            if (
                name.startswith("complete:")
                and name not in fired_once
                and transition.enabled(marking)
            ):
                marking = transition.fire(marking)
                fired_once.add(name)
                path.append(name)
                progress = True
                break
    if marking.covers(target):
        return CoverabilityResult(True, tuple(path), explored, False)
    markable, _ = saturate(net)
    missing_unmarkable = any(place not in markable for place, _ in target.counts)
    if missing_unmarkable:
        return CoverabilityResult(False, (), explored, False)
    # The greedy schedule stalled but saturation cannot rule coverage out:
    # fall back to the exact bounded search.
    return coverable(net, target, bound=1, max_states=500_000)


def reachable_markings(
    net: PetriNet, bound: int = 3, max_states: int = 200_000
) -> set[Marking]:
    """All clamped markings reachable from the initial one (for tests)."""
    start = net.initial.clamp(bound)
    seen = {start}
    frontier = deque([start])
    while frontier:
        if len(seen) > max_states:
            raise ModelError(f"state space exceeds max_states={max_states}")
        marking = frontier.popleft()
        for transition in net.transitions:
            if transition.enabled(marking):
                successor = transition.fire(marking).clamp(bound)
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    return seen


def fire_sequence(net: PetriNet, names: list[str]) -> Marking:
    """Fire transitions by name from the initial marking (test helper)."""
    by_name: dict[str, Transition] = {t.name: t for t in net.transitions}
    marking = net.initial
    for name in names:
        if name not in by_name:
            raise ModelError(f"unknown transition {name!r}")
        marking = by_name[name].fire(marking)
    return marking
