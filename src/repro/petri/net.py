"""A small place/transition Petri net (§7.4).

Plain P/T nets with weighted arcs and multiset markings — enough to encode
exchange problems (see :mod:`repro.petri.translate`) and run the bounded
coverability search of :mod:`repro.petri.reachability`.  Markings are
immutable and hashable so the search can memoize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ModelError


@dataclass(frozen=True)
class Marking:
    """An immutable multiset of tokens: place name → count (> 0 only)."""

    counts: tuple[tuple[str, int], ...] = ()

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "Marking":
        for place, count in mapping.items():
            if count < 0:
                raise ModelError(f"negative token count for {place!r}")
        return cls(tuple(sorted((p, c) for p, c in mapping.items() if c > 0)))

    def get(self, place: str) -> int:
        for name, count in self.counts:
            if name == place:
                return count
        return 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)

    def covers(self, other: "Marking") -> bool:
        """Whether this marking has at least *other*'s tokens everywhere."""
        return all(self.get(place) >= count for place, count in other.counts)

    def add(self, delta: Mapping[str, int]) -> "Marking":
        merged = self.as_dict()
        for place, count in delta.items():
            merged[place] = merged.get(place, 0) + count
        return Marking.of(merged)

    def clamp(self, bound: int) -> "Marking":
        """Cap every count at *bound* (the coverability approximation)."""
        return Marking.of({p: min(c, bound) for p, c in self.counts})

    def __str__(self) -> str:
        if not self.counts:
            return "{}"
        return "{" + ", ".join(f"{p}:{c}" for p, c in self.counts) + "}"


@dataclass(frozen=True)
class Transition:
    """A transition with weighted input and output arcs."""

    name: str
    consumes: tuple[tuple[str, int], ...]
    produces: tuple[tuple[str, int], ...]

    @classmethod
    def make(
        cls,
        name: str,
        consumes: Mapping[str, int] | Iterable[str],
        produces: Mapping[str, int] | Iterable[str],
    ) -> "Transition":
        def normalize(spec) -> tuple[tuple[str, int], ...]:
            if isinstance(spec, Mapping):
                items = spec.items()
            else:
                counted: dict[str, int] = {}
                for place in spec:
                    counted[place] = counted.get(place, 0) + 1
                items = counted.items()
            normalized = tuple(sorted((p, c) for p, c in items if c > 0))
            return normalized

        return cls(name, normalize(consumes), normalize(produces))

    def enabled(self, marking: Marking) -> bool:
        """Whether every input place holds enough tokens."""
        return all(marking.get(place) >= count for place, count in self.consumes)

    def fire(self, marking: Marking) -> Marking:
        """The successor marking (caller must check :meth:`enabled`)."""
        if not self.enabled(marking):
            raise ModelError(f"transition {self.name!r} is not enabled")
        delta: dict[str, int] = {}
        for place, count in self.consumes:
            delta[place] = delta.get(place, 0) - count
        for place, count in self.produces:
            delta[place] = delta.get(place, 0) + count
        return marking.add(delta)

    def __str__(self) -> str:
        def render(arcs):
            return " + ".join(
                (f"{c}·{p}" if c > 1 else p) for p, c in arcs
            ) or "∅"

        return f"{self.name}: {render(self.consumes)} -> {render(self.produces)}"


class PetriNet:
    """A net: named places (implicit), transitions, and an initial marking."""

    def __init__(self, transitions: Iterable[Transition], initial: Marking) -> None:
        self.transitions: tuple[Transition, ...] = tuple(transitions)
        names = [t.name for t in self.transitions]
        if len(names) != len(set(names)):
            raise ModelError("duplicate transition names")
        self.initial = initial

    @property
    def places(self) -> frozenset[str]:
        """Every place mentioned by an arc or the initial marking."""
        result = {place for place, _ in self.initial.counts}
        for transition in self.transitions:
            result.update(p for p, _ in transition.consumes)
            result.update(p for p, _ in transition.produces)
        return frozenset(result)

    def enabled_transitions(self, marking: Marking) -> list[Transition]:
        """All transitions enabled at *marking*, in declaration order."""
        return [t for t in self.transitions if t.enabled(marking)]

    def __str__(self) -> str:
        lines = [f"PetriNet(|P|={len(self.places)}, |T|={len(self.transitions)})"]
        lines.append(f"  initial: {self.initial}")
        lines.extend(f"  {t}" for t in self.transitions)
        return "\n".join(lines)
