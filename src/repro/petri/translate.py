"""Translate exchange problems into Petri nets (§7.4).

The paper notes the exchanges "can be captured in a Petri net formalism,
with the added advantage that consumable resources (such as money) are
modeled very naturally in the tokens", and leaves the construction as future
work.  This module supplies one whose coverability verdict matches the
sequencing-graph feasibility test on every worked example.

**Places**

* ``holds:P:item``   — principal *P* owns *item*;
* ``at:T:item``      — *item* is deposited with trusted component *T*;
* ``assured:P--T``   — the §2.5 notify: the counterpart deposit for the
  exchange edge ``P--T`` is present at *T*, so *P* is assured;
* ``done:T``         — the exchange at *T* completed.

**Transitions**

* ``deposit:P--T``   — *P* deposits its item, guarded by the assurances the
  sequencing formalism grants it (see below);
* ``assure:P--T``    — self-loop reading the counterpart deposit at *T* and
  minting an assurance token for *P*;
* ``complete:T``     — consumes both deposits, hands each principal the
  counterpart item, marks ``done:T``;
* ``fund:P--T``      — for a priority-marked *pay* edge (the "poor broker"):
  the outgoing payment is minted from the incoming one instead of being
  endowed, encoding insolvency.

**Deposit guards** mirror the red/black conjunction semantics of §4.1:

* a commitment whose trusted-agent role its own principal plays (persona,
  §4.2.3) is unguarded;
* at a conjunction, an edge needs an assurance for every *red sibling*
  (the sibling that must be committed first) — two red siblings therefore
  deadlock each other, reproducing the poor-broker impasse;
* at an all-black (bundle) conjunction, an edge needs assurances for *all*
  siblings — the all-or-nothing demand — except siblings split off by an
  indemnity (§6), which is how an :class:`IndemnityPlan` unlocks the net.
"""

from __future__ import annotations

from repro.core.indemnity import IndemnityPlan
from repro.core.interaction import InteractionEdge, InteractionGraph
from repro.core.items import Money
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.sequencing import SequencingGraph
from repro.petri.net import Marking, PetriNet, Transition


def _holds(party: Party, label: str) -> str:
    return f"holds:{party.name}:{label}"


def _at(component: Party, label: str) -> str:
    return f"at:{component.name}:{label}"


def _assured(edge: InteractionEdge) -> str:
    return f"assured:{edge.label}"


def _done(component: Party) -> str:
    return f"done:{component.name}"


def _incoming_money(graph: InteractionGraph, principal: Party) -> InteractionEdge | None:
    """An edge through which *principal* is due to receive money, if any."""
    for edge in graph.edges:
        if edge.principal != principal:
            continue
        expected = graph.expects(edge)
        if isinstance(expected, Money):
            return edge
    return None


def _deposit_guards(
    problem: ExchangeProblem,
    sg: SequencingGraph,
    edge: InteractionEdge,
    split: frozenset[InteractionEdge],
) -> list[str]:
    """Assurance places this edge's deposit must consume."""
    graph = problem.interaction
    commitment = sg.commitment_for(edge)
    if commitment in sg.personas:
        return []
    siblings = [
        e for e in graph.edges if e.principal == edge.principal and e != edge
    ]
    if not siblings or edge in split:
        return []
    red = graph.priority_edges
    red_siblings = [s for s in siblings if s in red]
    if red_siblings:
        return [_assured(s) for s in red_siblings]
    if edge in red:
        return []
    # Pure bundle conjunction: all-or-nothing across the siblings.
    return [_assured(s) for s in siblings if s not in split]


def translate(
    problem: ExchangeProblem, plan: IndemnityPlan | None = None
) -> tuple[PetriNet, Marking]:
    """Build the net and the "all exchanges completed" target marking."""
    graph = problem.interaction
    sg = problem.sequencing_graph()
    split = frozenset(offer.covers for offer in plan.offers) if plan is not None else frozenset()

    transitions: list[Transition] = []
    initial: dict[str, int] = {}

    # A priority-marked *pay* edge whose principal also has money incoming is
    # the poor-broker pattern (§5's constraint pay_{b→p} → pay_{c→b}): the
    # outgoing payment is not endowed; a fund transition converts the
    # received payment into the outgoing one once it arrives.  Like the
    # paper's formalism, the encoding is amount-blind — the token is "a
    # payment", not a denominated value.
    insolvent: set[InteractionEdge] = set()
    funded: set[InteractionEdge] = set()
    for edge in graph.edges:
        if not isinstance(edge.provides, Money) or edge not in graph.priority_edges:
            continue
        if _incoming_money(graph, edge.principal) is None:
            continue
        insolvent.add(edge)
        funded.add(edge)

    # Endowments: producers hold their goods; payers hold their money unless
    # the payment is fund-from-incoming (the poor broker).
    for edge in graph.edges:
        place = _holds(edge.principal, edge.provides.label)
        if isinstance(edge.provides, Money):
            if edge not in insolvent:
                initial[place] = initial.get(place, 0) + 1
        else:
            incoming = any(
                graph.expects(other) == edge.provides
                for other in graph.edges
                if other.principal == edge.principal and other != edge
            )
            if not incoming:
                initial[place] = 1

    for edge in graph.edges:
        guards = _deposit_guards(problem, sg, edge, split)
        consumes = {_holds(edge.principal, edge.provides.label): 1}
        for guard in guards:
            consumes[guard] = consumes.get(guard, 0) + 1
        transitions.append(
            Transition.make(
                f"deposit:{edge.label}",
                consumes,
                {_at(edge.trusted, edge.provides.label): 1},
            )
        )
        # assured(e) mints when every OTHER deposit of e's exchange is in —
        # the §2.5 notify condition.  Pairwise this is the single counterpart
        # deposit; multi-party exchanges read all sibling deposits.
        sibling_places = {
            _at(edge.trusted, other.provides.label): 1
            for other in graph.edges_at(edge.trusted)
            if other != edge
        }
        transitions.append(
            Transition.make(
                f"assure:{edge.label}",
                sibling_places,
                {**sibling_places, _assured(edge): 1},
            )
        )
        if edge in funded:
            incoming_edge = _incoming_money(graph, edge.principal)
            assert incoming_edge is not None
            income_label = graph.expects(incoming_edge).label
            transitions.append(
                Transition.make(
                    f"fund:{edge.label}",
                    {_holds(edge.principal, income_label): 1},
                    {_holds(edge.principal, edge.provides.label): 1},
                )
            )

    for component in graph.trusted_components:
        edges = graph.edges_at(component)
        consumes = {_at(component, e.provides.label): 1 for e in edges}
        produces: dict[str, int] = {_done(component): 1}
        for e in edges:
            place = _holds(e.principal, graph.expects(e).label)
            produces[place] = produces.get(place, 0) + 1
        transitions.append(
            Transition.make(f"complete:{component.name}", consumes, produces)
        )

    target = Marking.of({_done(t): 1 for t in graph.trusted_components})
    return PetriNet(transitions, Marking.of(initial)), target


def exchange_completable(problem: ExchangeProblem, plan: IndemnityPlan | None = None):
    """Coverability of the completion marking — the §7.4 feasibility mirror.

    Uses the guided witness search (positive answers carry a real firing
    sequence; negatives are certified by monotone saturation), which scales
    to bundles far beyond what a breadth-first interleaving search handles.
    """
    from repro.petri.reachability import guided_coverability

    net, target = translate(problem, plan)
    return guided_coverability(net, target)
