"""Sequencing graphs (paper §4.1).

A sequencing graph ``SG = (C, J, R, B)`` of an interaction graph
``I = (P, T, E)`` has:

* **C** — commitment nodes, one per interaction edge: a decision to commit to
  that pairwise exchange;
* **J** — conjunction nodes, one per *internal* node of *I* (degree > 1):
  "one commitment will be done only if they all are";
* **R** — red edges: the commitment must *precede* every other commitment of
  its conjunction (the broker's secure-the-buyer-first constraint);
* **B** — black edges: conjoined but unordered.

The graph is bipartite between commitments and conjunctions.  Construction
from an interaction graph is mechanical (:meth:`SequencingGraph.from_interaction`):
red edges come from the interaction graph's priority markings, and each
commitment records whether its trusted-agent role is *played by its own
principal* (a persona, §4.2.3), which enables clause 2 of Reduction Rule #1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.interaction import InteractionEdge, InteractionGraph
from repro.core.parties import Party
from repro.core.trust import TrustRelation
from repro.errors import GraphError


@dataclass(frozen=True, order=True)
class CommitmentNode:
    """A commitment node: one per interaction-graph edge (§4.1).

    The paper labels these with the two agents of the commitment, e.g.
    "Trusted2 → Producer"; :attr:`label` reproduces that.
    """

    edge: InteractionEdge

    def __hash__(self) -> int:
        # Commitment nodes key the reduction engine's adjacency indices;
        # cache the (deep, interaction-edge-recursive) hash.  Stripped on
        # pickle: str hashes are salted per process.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.edge,))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def principal(self) -> Party:
        """The principal side of the commitment."""
        return self.edge.principal

    @property
    def trusted(self) -> Party:
        """The trusted-agent side of the commitment."""
        return self.edge.trusted

    @property
    def label(self) -> str:
        return f"{self.trusted.name}->{self.principal.name}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True, order=True)
class ConjunctionNode:
    """A conjunction node ``∧agent``: one per internal interaction node (§4.1)."""

    agent: Party

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.agent,))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def label(self) -> str:
        return f"AND({self.agent.name})"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


class EdgeColor(enum.Enum):
    """Red edges impose precedence; black edges only conjoin (§4.1)."""

    RED = "red"
    BLACK = "black"


@dataclass(frozen=True, order=True)
class SGEdge:
    """An edge ``(c, j)`` of the sequencing graph with its color."""

    commitment: CommitmentNode
    conjunction: ConjunctionNode
    color: EdgeColor

    def __hash__(self) -> int:
        # SGEdge is the single hottest hash in the repo (every remaining-set
        # membership test); without the cache each hash recurses through the
        # commitment, interaction edge, parties, and items.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.commitment, self.conjunction, self.color))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def is_red(self) -> bool:
        return self.color is EdgeColor.RED

    def __str__(self) -> str:
        return f"{self.commitment.label} ={self.color.value}= {self.conjunction.label}"


class SequencingGraph:
    """The 4-tuple ``(C, J, R, B)`` plus persona annotations.

    Instances are immutable once built; the reduction engine
    (:mod:`repro.core.reduction`) operates on mutable *views* of the edge
    set, never on the graph itself, so one graph can be reduced many times
    (e.g. for the confluence property tests).
    """

    def __init__(
        self,
        commitments: Iterable[CommitmentNode],
        conjunctions: Iterable[ConjunctionNode],
        edges: Iterable[SGEdge],
        personas: Iterable[CommitmentNode] = (),
        interaction: InteractionGraph | None = None,
    ) -> None:
        self._commitments: tuple[CommitmentNode, ...] = tuple(commitments)
        self._conjunctions: tuple[ConjunctionNode, ...] = tuple(conjunctions)
        self._edges: tuple[SGEdge, ...] = tuple(edges)
        self._personas: frozenset[CommitmentNode] = frozenset(personas)
        self._interaction = interaction
        self._validate()

    # ------------------------------------------------------------ construction

    @classmethod
    def from_interaction(
        cls,
        interaction: InteractionGraph,
        trust: TrustRelation | None = None,
    ) -> "SequencingGraph":
        """Mechanically build the sequencing graph of *interaction* (§4.1).

        *trust* supplies direct principal-to-principal trust; a commitment
        ``(p, t)`` is marked a *persona* when every other principal at *t*
        directly trusts *p* (then *p* plays the role of *t*, §4.2.3).
        """
        trust = trust if trust is not None else TrustRelation()
        commitments = {edge: CommitmentNode(edge) for edge in interaction.edges}
        conjunctions = {
            party: ConjunctionNode(party) for party in interaction.internal_nodes()
        }
        priority = interaction.priority_edges
        edges: list[SGEdge] = []
        # Group interaction edges by trusted component once (insertion order
        # preserved) instead of rescanning all edges per commitment — this
        # keeps derivation O(E) for the large scaling workloads.
        at_trusted: dict[Party, list[InteractionEdge]] = {}
        for edge in interaction.edges:
            at_trusted.setdefault(edge.trusted, []).append(edge)
        for edge, commitment in commitments.items():
            for endpoint in (edge.principal, edge.trusted):
                conjunction = conjunctions.get(endpoint)
                if conjunction is None:
                    continue
                color = (
                    EdgeColor.RED
                    if endpoint == edge.principal and edge in priority
                    else EdgeColor.BLACK
                )
                edges.append(SGEdge(commitment, conjunction, color))

        personas: list[CommitmentNode] = []
        for edge, commitment in commitments.items():
            others = [
                other.principal for other in at_trusted[edge.trusted] if other != edge
            ]
            if others and all(trust.trusts(q, edge.principal) for q in others):
                personas.append(commitment)

        return cls(
            commitments.values(),
            conjunctions.values(),
            edges,
            personas,
            interaction,
        )

    def _validate(self) -> None:
        commitment_set = set(self._commitments)
        conjunction_set = set(self._conjunctions)
        if len(commitment_set) != len(self._commitments):
            raise GraphError("duplicate commitment nodes")
        if len(conjunction_set) != len(self._conjunctions):
            raise GraphError("duplicate conjunction nodes")
        seen: set[tuple[CommitmentNode, ConjunctionNode]] = set()
        for edge in self._edges:
            if edge.commitment not in commitment_set:
                raise GraphError(f"edge references unknown commitment {edge.commitment.label!r}")
            if edge.conjunction not in conjunction_set:
                raise GraphError(f"edge references unknown conjunction {edge.conjunction.label!r}")
            key = (edge.commitment, edge.conjunction)
            if key in seen:
                raise GraphError(
                    f"parallel sequencing edges between {edge.commitment.label!r} "
                    f"and {edge.conjunction.label!r}"
                )
            seen.add(key)
        # Sorted so the reported persona does not depend on set iteration
        # order (PYTHONHASHSEED) when several annotations are invalid.
        for persona in sorted(self._personas, key=lambda node: node.label):
            if persona not in commitment_set:
                raise GraphError(f"persona annotation on unknown commitment {persona.label!r}")

    # ----------------------------------------------------------------- queries

    @property
    def commitments(self) -> tuple[CommitmentNode, ...]:
        """C — all commitment nodes, in interaction-edge order."""
        return self._commitments

    @property
    def conjunctions(self) -> tuple[ConjunctionNode, ...]:
        """J — all conjunction nodes."""
        return self._conjunctions

    @property
    def edges(self) -> tuple[SGEdge, ...]:
        """R ∪ B — all edges."""
        return self._edges

    @property
    def red_edges(self) -> tuple[SGEdge, ...]:
        """R — the priority edges."""
        return tuple(e for e in self._edges if e.is_red)

    @property
    def black_edges(self) -> tuple[SGEdge, ...]:
        """B — the unordered conjunction edges."""
        return tuple(e for e in self._edges if not e.is_red)

    @property
    def personas(self) -> frozenset[CommitmentNode]:
        """Commitments whose trusted-agent role is played by their principal."""
        return self._personas

    @property
    def interaction(self) -> InteractionGraph | None:
        """The interaction graph this sequencing graph was derived from."""
        return self._interaction

    def commitment_for(self, edge: InteractionEdge) -> CommitmentNode:
        """The commitment node of an interaction edge."""
        for commitment in self._commitments:
            if commitment.edge == edge:
                return commitment
        raise GraphError(f"no commitment for interaction edge {edge.label!r}")

    def conjunction_for(self, agent: Party) -> ConjunctionNode:
        """The conjunction node ``∧agent`` (raises if *agent* is not internal)."""
        for conjunction in self._conjunctions:
            if conjunction.agent == agent:
                return conjunction
        raise GraphError(f"no conjunction node for {agent.name!r}")

    def edges_of_commitment(self, commitment: CommitmentNode) -> tuple[SGEdge, ...]:
        """All edges incident to a commitment node."""
        return tuple(e for e in self._edges if e.commitment == commitment)

    def edges_of_conjunction(self, conjunction: ConjunctionNode) -> tuple[SGEdge, ...]:
        """All edges incident to a conjunction node."""
        return tuple(e for e in self._edges if e.conjunction == conjunction)

    def find_edge(self, commitment: CommitmentNode, conjunction: ConjunctionNode) -> SGEdge:
        """The unique edge between *commitment* and *conjunction*."""
        for edge in self._edges:
            if edge.commitment == commitment and edge.conjunction == conjunction:
                return edge
        raise GraphError(
            f"no sequencing edge between {commitment.label!r} and {conjunction.label!r}"
        )

    def with_edges_removed(self, removed: Iterable[SGEdge]) -> "SequencingGraph":
        """A new graph lacking *removed* edges (used for indemnity splits)."""
        removed_set = set(removed)
        unknown = removed_set - set(self._edges)
        if unknown:
            raise GraphError(f"cannot remove unknown edges: {sorted(str(e) for e in unknown)}")
        return SequencingGraph(
            self._commitments,
            self._conjunctions,
            (e for e in self._edges if e not in removed_set),
            self._personas,
            self._interaction,
        )

    def with_personas(self, extra: Iterable[CommitmentNode]) -> "SequencingGraph":
        """A new graph with additional persona annotations."""
        return SequencingGraph(
            self._commitments,
            self._conjunctions,
            self._edges,
            self._personas | set(extra),
            self._interaction,
        )

    def __str__(self) -> str:
        lines = [
            f"SequencingGraph(|C|={len(self._commitments)}, |J|={len(self._conjunctions)}, "
            f"|R|={len(self.red_edges)}, |B|={len(self.black_edges)})"
        ]
        lines.extend(f"  {edge}" for edge in self._edges)
        return "\n".join(lines)
