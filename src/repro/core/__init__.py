"""The paper's formal machinery (§2–§6).

Layered bottom-up:

* parties / items / actions / states / constraints — the §2 formalism;
* trust — directed trust, personas (§4.2.3);
* interaction — interaction graphs (§3);
* sequencing — sequencing graphs (§4.1);
* reduction / feasibility — Rules #1/#2 and the §4.2.4 test;
* flatcore — the compiled flat-array reduction core (compile → run →
  decompile) and the packed batch arena;
* execution — §5 execution-sequence recovery;
* indemnity — §6 escrow planning;
* protocol — per-party role synthesis for the simulator;
* problem — the :class:`ExchangeProblem` façade.
"""

from repro.core.actions import Action, ActionKind, give, notify, pay, transfer
from repro.core.constraints import Constraint, check_sequence, possession_constraints
from repro.core.execution import (
    ExecutionSequence,
    ExecutionStep,
    StepKind,
    execution_order,
    recover_execution,
)
from repro.core.feasibility import FeasibilityVerdict, Verdict, check_feasibility
from repro.core.flatcore import (
    ENGINES,
    CompiledGraph,
    FlatVerdict,
    GraphArena,
    check_feasibility_flat,
    check_feasibility_flat_batch,
    compile_graph,
    reduce_graph_compiled,
    reduce_graph_flat,
)
from repro.core.indemnity import (
    IndemnityOffer,
    IndemnityPlan,
    apply_plan,
    brute_force_minimal_plan,
    commitment_cost,
    greedy_order,
    minimal_indemnity_plan,
    offer_for,
    plan_indemnities,
    required_indemnity,
    splittable_conjunctions,
)
from repro.core.protocol import (
    PrincipalRole,
    Protocol,
    SendInstruction,
    TrustedExchangeSpec,
    synthesize_protocol,
)
from repro.core.interaction import InteractionEdge, InteractionGraph, build_interaction_graph
from repro.core.mediation import (
    HierarchyStudyRow,
    MediationPlan,
    NoCommonIntermediaryError,
    hierarchical_closure,
    hierarchy_study,
    mediated_problem,
    plan_mediation,
    usable_intermediaries,
)
from repro.core.items import Document, Item, Money, cents, document, money
from repro.core.parties import Party, Role, broker, consumer, producer, trusted
from repro.core.problem import ExchangeProblem
from repro.core.reduction import (
    Blockage,
    ReductionEngine,
    ReductionStep,
    ReductionTrace,
    Rule,
    reduce_graph,
    replay,
)
from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    EdgeColor,
    SGEdge,
    SequencingGraph,
)
from repro.core.states import AcceptanceSpec, ExchangeState, purchase_acceptance
from repro.core.trust import TrustRelation

__all__ = [
    "Action",
    "ActionKind",
    "give",
    "notify",
    "pay",
    "transfer",
    "Constraint",
    "check_sequence",
    "possession_constraints",
    "ExecutionSequence",
    "ExecutionStep",
    "StepKind",
    "execution_order",
    "recover_execution",
    "FeasibilityVerdict",
    "Verdict",
    "check_feasibility",
    "ENGINES",
    "CompiledGraph",
    "FlatVerdict",
    "GraphArena",
    "check_feasibility_flat",
    "check_feasibility_flat_batch",
    "compile_graph",
    "reduce_graph_compiled",
    "reduce_graph_flat",
    "IndemnityOffer",
    "IndemnityPlan",
    "apply_plan",
    "brute_force_minimal_plan",
    "commitment_cost",
    "greedy_order",
    "minimal_indemnity_plan",
    "offer_for",
    "plan_indemnities",
    "required_indemnity",
    "splittable_conjunctions",
    "PrincipalRole",
    "Protocol",
    "SendInstruction",
    "TrustedExchangeSpec",
    "synthesize_protocol",
    "InteractionEdge",
    "InteractionGraph",
    "build_interaction_graph",
    "Document",
    "Item",
    "Money",
    "cents",
    "document",
    "money",
    "Party",
    "HierarchyStudyRow",
    "MediationPlan",
    "NoCommonIntermediaryError",
    "hierarchical_closure",
    "hierarchy_study",
    "mediated_problem",
    "plan_mediation",
    "usable_intermediaries",
    "Role",
    "broker",
    "consumer",
    "producer",
    "trusted",
    "ExchangeProblem",
    "Blockage",
    "ReductionEngine",
    "ReductionStep",
    "ReductionTrace",
    "Rule",
    "reduce_graph",
    "replay",
    "CommitmentNode",
    "ConjunctionNode",
    "EdgeColor",
    "SGEdge",
    "SequencingGraph",
    "AcceptanceSpec",
    "ExchangeState",
    "purchase_acceptance",
    "TrustRelation",
]
