"""Indemnities (paper §6).

A principal makes a credible promise by escrowing money with a trusted
intermediary it shares with the party demanding assurance.  In sequencing-
graph terms, an indemnity **splits a conjunction node**: the edge connecting
the demanding party's conjunction to the covered commitment is removed, after
which the reduction rules may proceed.

Only conjunctive edges *of the second type* may be indemnified — a customer
demanding multiple documents in order to agree to purchase any of them
(all-black principal conjunctions).  The indemnity amount must cover the
worst case: the demanding party acquires every *other* piece of the bundle at
full cost and never receives the covered one, so

    amount(covered piece) = Σ cost(other pieces in the original bundle).

The **order** of indemnification matters (Figure 7: $90 for B1-then-B2 vs
$70 for B3-then-B2).  The greedy rule — indemnify the highest-cost subtree
first, leaving the cheapest piece uncovered — minimizes the total escrow at
``(k−2)·S + c_min`` for a k-piece bundle of total cost S.  This module
implements the planner, the greedy minimizer, and a brute-force optimum used
by the tests to certify greedy optimality.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.actions import Action, pay
from repro.core.execution import ExecutionSequence, ExecutionStep, StepKind
from repro.core.feasibility import FeasibilityVerdict, Verdict
from repro.core.interaction import InteractionEdge
from repro.core.items import cents as make_cents
from repro.core.parties import Party
from repro.core.flatcore import ENGINES, reduce_graph_flat
from repro.core.problem import ExchangeProblem
from repro.core.reduction import reduce_graph
from repro.core.sequencing import ConjunctionNode, SequencingGraph
from repro.errors import IndemnityError


def commitment_cost(edge: InteractionEdge) -> int:
    """The demanding principal's outlay through *edge*, in cents.

    For a bundle member where the principal pays money, the cost is that
    amount; a member where the principal provides goods has zero monetary
    exposure (the worst case for goods is handled by the counterpart's own
    indemnity, not this one).
    """
    provides = edge.provides
    return getattr(provides, "cents", 0) if provides.is_money else 0


@dataclass(frozen=True)
class IndemnityOffer:
    """One escrow: *offeror* deposits *amount_cents* with *via* so that
    *beneficiary* will treat the commitment over *covers* as separable.

    The conditions (paper §6): if the beneficiary provides its payment but
    the covered piece is never delivered, the escrow is forfeit to the
    beneficiary; if the piece is delivered, the escrow is refunded.
    """

    offeror: Party
    beneficiary: Party
    via: Party
    covers: InteractionEdge
    amount_cents: int

    @property
    def amount_dollars(self) -> float:
        """The escrowed amount in dollars."""
        return self.amount_cents / 100.0

    def deposit_action(self) -> Action:
        """The escrow payment ``pay_{offeror->via}(amount)``."""
        amount = make_cents(self.amount_cents, tag=f"indemnity-{self.covers.label}")
        return pay(self.offeror, self.via, amount)

    def refund_action(self) -> Action:
        """The refund ``pay⁻¹`` issued when the covered piece is delivered."""
        return self.deposit_action().inverse()

    def __str__(self) -> str:
        return (
            f"{self.offeror.name} escrows ${self.amount_cents / 100:.2f} at "
            f"{self.via.name} covering {self.covers.label} for {self.beneficiary.name}"
        )


@dataclass(frozen=True)
class IndemnityPlan:
    """A sequence of offers and the exchange's post-split verdict."""

    problem_name: str
    offers: tuple[IndemnityOffer, ...]
    verdict: FeasibilityVerdict

    @property
    def total_cents(self) -> int:
        """Total escrowed capital across all offers."""
        return sum(offer.amount_cents for offer in self.offers)

    @property
    def total_dollars(self) -> float:
        """Total escrowed capital in dollars."""
        return self.total_cents / 100.0

    @property
    def feasible(self) -> bool:
        """Whether the exchange became feasible under this plan."""
        return self.verdict.feasible

    def describe(self) -> list[str]:
        lines = [f"indemnity plan for {self.problem_name}: total ${self.total_dollars:.2f}"]
        lines.extend(f"  {offer}" for offer in self.offers)
        lines.append(f"  -> {'feasible' if self.feasible else 'still not shown feasible'}")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.describe())


def splittable_conjunctions(problem: ExchangeProblem) -> tuple[Party, ...]:
    """Principals whose conjunctions may be indemnity-split (§6).

    These are the "second type" conjunctions: a principal with two or more
    commitments, none of them priority (no red edges) — the all-or-nothing
    bundle pattern.
    """
    graph = problem.interaction
    result: list[Party] = []
    for principal in graph.principals:
        edges = [e for e in graph.edges if e.principal == principal]
        if len(edges) < 2:
            continue
        if any(e in graph.priority_edges for e in edges):
            continue
        result.append(principal)
    return tuple(result)


def _conjunction_of(sg: SequencingGraph, agent: Party) -> ConjunctionNode:
    return sg.conjunction_for(agent)


def required_indemnity(problem: ExchangeProblem, covers: InteractionEdge) -> int:
    """The escrow needed to split *covers* out of its principal's bundle.

    Worst case for the demanding principal: it pays for every *other*
    original bundle member but never receives the covered piece.
    """
    agent = covers.principal
    members = [e for e in problem.interaction.edges if e.principal == agent]
    if covers not in members:
        raise IndemnityError(f"{covers.label!r} is not a commitment of {agent.name!r}")
    if len(members) < 2:
        raise IndemnityError(
            f"{agent.name!r} holds a single commitment; there is no bundle to split"
        )
    return sum(commitment_cost(e) for e in members if e != covers)


def offer_for(problem: ExchangeProblem, covers: InteractionEdge) -> IndemnityOffer:
    """Construct the offer that splits *covers* out of its bundle.

    The offeror is the counterpart principal across the covered commitment's
    trusted intermediary — "usually the broker or source involved in
    providing a document" (§6) — which by construction shares that
    intermediary with the beneficiary.
    """
    beneficiary = covers.principal
    counterparts = problem.interaction.counterparts(covers)
    if len(counterparts) != 1:
        raise IndemnityError(
            f"{covers.trusted.name!r} does not mediate a pairwise exchange; "
            "cannot determine the offeror"
        )
    offeror = counterparts[0].principal
    return IndemnityOffer(
        offeror=offeror,
        beneficiary=beneficiary,
        via=covers.trusted,
        covers=covers,
        amount_cents=required_indemnity(problem, covers),
    )


def plan_indemnities(
    problem: ExchangeProblem,
    order: list[InteractionEdge] | tuple[InteractionEdge, ...],
    agent: Party | None = None,
    stop_when_feasible: bool = True,
    engine: str = "indexed",
) -> IndemnityPlan:
    """Split bundle members in *order*, re-testing feasibility after each.

    All edges in *order* must belong to the same splittable bundle (the
    principal defaults to the first edge's).  When ``stop_when_feasible``
    the planner stops at the first verdict of feasible — matching §6, where
    the customer proceeds once enough pieces are indemnified.

    ``engine="flat"`` runs every re-test through the compiled core
    (:func:`repro.core.flatcore.reduce_graph_flat`); the resulting plan and
    verdict trace are value-identical to the indexed engine's.
    """
    if engine not in ENGINES:
        raise IndemnityError(
            f"unknown engine {engine!r}: expected one of {', '.join(ENGINES)}"
        )
    reduce = reduce_graph_flat if engine == "flat" else reduce_graph
    if not order:
        raise IndemnityError("indemnification order must name at least one commitment")
    agent = agent if agent is not None else order[0].principal
    if agent not in splittable_conjunctions(problem):
        raise IndemnityError(
            f"{agent.name!r} has no splittable (all-or-nothing) conjunction; "
            "indemnities apply only to second-type conjunctions (§6)"
        )
    for edge in order:
        if edge.principal != agent:
            raise IndemnityError(
                f"{edge.label!r} belongs to {edge.principal.name!r}, not {agent.name!r}"
            )

    sg = problem.sequencing_graph()
    conjunction = _conjunction_of(sg, agent)
    offers: list[IndemnityOffer] = []
    trace = reduce(sg)
    for edge in order:
        if trace.feasible and stop_when_feasible:
            break
        offers.append(offer_for(problem, edge))
        sg_edge = sg.find_edge(sg.commitment_for(edge), conjunction)
        sg = sg.with_edges_removed([sg_edge])
        trace = reduce(sg)
    verdict = FeasibilityVerdict(
        verdict=Verdict.FEASIBLE if trace.feasible else Verdict.NOT_SHOWN_FEASIBLE,
        trace=trace,
    )
    return IndemnityPlan(problem_name=problem.name, offers=tuple(offers), verdict=verdict)


def greedy_order(problem: ExchangeProblem, agent: Party) -> list[InteractionEdge]:
    """§6's greedy rule: indemnify the highest-cost subtree first.

    Descending cost leaves the cheapest piece last; since the last piece
    needs no indemnity, the total escrow is minimized.  Ties break on edge
    label for determinism.
    """
    members = [e for e in problem.interaction.edges if e.principal == agent]
    return sorted(members, key=lambda e: (-commitment_cost(e), e.label))


def minimal_indemnity_plan(
    problem: ExchangeProblem, agent: Party | None = None, engine: str = "indexed"
) -> IndemnityPlan:
    """The greedy minimum-escrow plan for *agent*'s bundle.

    *agent* defaults to the unique splittable conjunction (raises when the
    choice is ambiguous).
    """
    if agent is None:
        candidates = splittable_conjunctions(problem)
        if len(candidates) != 1:
            raise IndemnityError(
                f"expected exactly one splittable conjunction, found "
                f"{[p.name for p in candidates]}; pass agent= explicitly"
            )
        agent = candidates[0]
    return plan_indemnities(
        problem, greedy_order(problem, agent), agent=agent, engine=engine
    )


def brute_force_minimal_plan(
    problem: ExchangeProblem, agent: Party | None = None
) -> IndemnityPlan:
    """Try every indemnification order; return a cheapest feasible plan.

    Exponential — intended for tests certifying that the greedy plan is
    optimal (it is, per §6's argument).  Returns the greedy plan when no
    order achieves feasibility.
    """
    if agent is None:
        candidates = splittable_conjunctions(problem)
        if len(candidates) != 1:
            raise IndemnityError(
                f"expected exactly one splittable conjunction, found "
                f"{[p.name for p in candidates]}; pass agent= explicitly"
            )
        agent = candidates[0]
    members = [e for e in problem.interaction.edges if e.principal == agent]
    best: IndemnityPlan | None = None
    for permutation in itertools.permutations(members):
        plan = plan_indemnities(problem, list(permutation), agent=agent)
        if not plan.feasible:
            continue
        if best is None or plan.total_cents < best.total_cents:
            best = plan
    return best if best is not None else minimal_indemnity_plan(problem, agent)


def apply_plan(plan: IndemnityPlan, execution: ExecutionSequence) -> ExecutionSequence:
    """Splice a plan's escrow actions into an execution sequence.

    Deposits go first (credibility must precede the transaction) and refunds
    last (issued once the covered pieces were delivered).  Only meaningful
    for feasible plans.
    """
    if not plan.feasible:
        raise IndemnityError("cannot execute an exchange whose plan is not feasible")
    steps: list[ExecutionStep] = []
    for offer in plan.offers:
        steps.append(ExecutionStep(0, StepKind.INDEMNITY_DEPOSIT, offer.deposit_action()))
    steps.extend(
        ExecutionStep(0, step.kind, step.action, step.commitment) for step in execution.steps
    )
    for offer in plan.offers:
        steps.append(ExecutionStep(0, StepKind.INDEMNITY_REFUND, offer.refund_action()))
    renumbered = tuple(
        ExecutionStep(i + 1, s.kind, s.action, s.commitment) for i, s in enumerate(steps)
    )
    return ExecutionSequence(renumbered)
