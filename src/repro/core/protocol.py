"""Protocol synthesis: from a total order to per-party instructions.

The paper defines a *protocol* as "a set of instructions for each participant
that governs its actions" and calls a protocol acceptable when every
execution it sanctions ends in a state acceptable to all parties (§2.3).
This module compiles a recovered :class:`ExecutionSequence` into such
instructions:

* **Principals** get a :class:`PrincipalRole`: an ordered list of
  :class:`SendInstruction`, each guarded by the set of *locally observable*
  events (transfers delivered to the principal, notifications addressed to
  it) that precede the send in the global order.  A principal that follows
  its role never moves before the assurances the sequencing graph proved it
  should have.
* **Trusted components** get a :class:`TrustedExchangeSpec` — the §2.5
  semantics: hold deposits, notify the last outstanding party, release all
  pieces when complete, reverse everything on deadline expiry.  They are not
  scripted step-by-step because their behaviour is the *same* in every
  exchange; the spec only tells them what to expect and where to send it.

The simulator (:mod:`repro.sim`) interprets both role kinds directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.execution import ExecutionSequence, StepKind
from repro.core.indemnity import IndemnityOffer
from repro.core.interaction import InteractionGraph
from repro.core.items import Item
from repro.core.parties import Party
from repro.errors import ProtocolError


@dataclass(frozen=True)
class SendInstruction:
    """One guarded send: perform *action* once *preconditions* were observed.

    ``preconditions`` are actions whose effect is locally observable at the
    sender — transfers whose effective recipient is the sender, or notifies
    addressed to it.  ``global_index`` records the position in the source
    execution sequence (useful for debugging and metrics).
    """

    global_index: int
    action: Action
    preconditions: frozenset[Action]

    def ready(self, observed: set[Action]) -> bool:
        """Whether every precondition has been observed."""
        return self.preconditions <= observed

    def __str__(self) -> str:
        guards = ", ".join(sorted(str(a) for a in self.preconditions)) or "none"
        return f"[{self.global_index}] send {self.action} after: {guards}"


@dataclass(frozen=True)
class PrincipalRole:
    """All instructions for one principal, in global order."""

    party: Party
    instructions: tuple[SendInstruction, ...]

    def describe(self) -> list[str]:
        lines = [f"role {self.party.name}:"]
        lines.extend(f"  {i}" for i in self.instructions)
        return lines


@dataclass(frozen=True)
class TrustedExchangeSpec:
    """What one trusted component expects and owes (§2.5).

    ``deposits`` maps each participating principal to the item it must
    deposit; ``entitlements`` maps each principal to the item the component
    forwards to it on completion.  ``deadline`` bounds how long deposits are
    held before reversal.  ``indemnities`` lists escrows this component
    administers (§6): deposits outside the swap, refunded on success and
    forfeited to the beneficiary on failure.
    """

    agent: Party
    deposits: tuple[tuple[Party, Item], ...]
    entitlements: tuple[tuple[Party, Item], ...]
    deadline: float | None = None
    indemnities: tuple[IndemnityOffer, ...] = ()

    def expected_from(self, principal: Party) -> Item:
        """The deposit owed by *principal* (raises for non-participants)."""
        for party, item in self.deposits:
            if party == principal:
                return item
        raise ProtocolError(f"{principal.name} deposits nothing at {self.agent.name}")

    def owed_to(self, principal: Party) -> Item:
        """The item released to *principal* on completion."""
        for party, item in self.entitlements:
            if party == principal:
                return item
        raise ProtocolError(f"{self.agent.name} owes nothing to {principal.name}")

    @property
    def participants(self) -> tuple[Party, ...]:
        return tuple(party for party, _ in self.deposits)


@dataclass(frozen=True)
class Protocol:
    """The full synthesized protocol for one exchange problem."""

    problem_name: str
    sequence: ExecutionSequence
    roles: dict[Party, PrincipalRole] = field(default_factory=dict)
    trusted_specs: dict[Party, TrustedExchangeSpec] = field(default_factory=dict)

    def role_of(self, party: Party) -> PrincipalRole:
        """The scripted role of a principal."""
        try:
            return self.roles[party]
        except KeyError:
            raise ProtocolError(f"{party.name} has no principal role in {self.problem_name}")

    def spec_of(self, agent: Party) -> TrustedExchangeSpec:
        """The escrow spec of a trusted component."""
        try:
            return self.trusted_specs[agent]
        except KeyError:
            raise ProtocolError(f"{agent.name} has no trusted spec in {self.problem_name}")

    def describe(self) -> list[str]:
        lines = [f"protocol for {self.problem_name}:"]
        for role in self.roles.values():
            lines.extend("  " + line for line in role.describe())
        for spec in self.trusted_specs.values():
            deposits = ", ".join(f"{p.name}:{i}" for p, i in spec.deposits)
            lines.append(f"  escrow {spec.agent.name}: deposits {deposits}")
        return lines


def _observable_at(action: Action, party: Party) -> bool:
    """Whether *party* locally observes the completion of *action*."""
    return action.effective_recipient == party


def synthesize_protocol(
    interaction: InteractionGraph,
    sequence: ExecutionSequence,
    problem_name: str = "exchange",
    deadline: float | None = None,
    indemnities: tuple[IndemnityOffer, ...] = (),
) -> Protocol:
    """Compile an execution sequence into per-party instructions.

    Principal sends are the DEPOSIT and INDEMNITY_DEPOSIT steps; each is
    guarded by every earlier step observable at that principal.  Trusted
    components receive a :class:`TrustedExchangeSpec` derived from the
    interaction graph (their behaviour is data-independent of the order).
    """
    roles: dict[Party, list[SendInstruction]] = {}
    for step in sequence.steps:
        if step.kind not in (StepKind.DEPOSIT, StepKind.INDEMNITY_DEPOSIT):
            continue
        sender = step.action.sender
        if not sender.is_principal:
            raise ProtocolError(
                f"step {step.index} has trusted component {sender.name} as depositor"
            )
        preconditions = frozenset(
            earlier.action
            for earlier in sequence.steps
            if earlier.index < step.index and _observable_at(earlier.action, sender)
        )
        roles.setdefault(sender, []).append(
            SendInstruction(step.index, step.action, preconditions)
        )

    trusted_specs: dict[Party, TrustedExchangeSpec] = {}
    indemnities_by_agent: dict[Party, list[IndemnityOffer]] = {}
    for offer in indemnities:
        indemnities_by_agent.setdefault(offer.via, []).append(offer)
    for agent in interaction.trusted_components:
        edges = interaction.edges_at(agent)
        deposits = tuple((e.principal, e.provides) for e in edges)
        entitlements = tuple((e.principal, interaction.expects(e)) for e in edges)
        agent_deadline = interaction.deadline_of(agent)
        trusted_specs[agent] = TrustedExchangeSpec(
            agent=agent,
            deposits=deposits,
            entitlements=entitlements,
            deadline=agent_deadline if agent_deadline is not None else deadline,
            indemnities=tuple(indemnities_by_agent.get(agent, ())),
        )

    principal_roles = {
        party: PrincipalRole(party, tuple(instructions))
        for party, instructions in roles.items()
    }
    # Principals that only receive (pure producers in some topologies) still
    # get an empty role so the simulator can instantiate them uniformly.
    for principal in interaction.principals:
        principal_roles.setdefault(principal, PrincipalRole(principal, ()))
    return Protocol(
        problem_name=problem_name,
        sequence=sequence,
        roles=principal_roles,
        trusted_specs=trusted_specs,
    )
