"""Execution-sequence recovery (paper §5).

When a sequencing graph is feasible, the order in which commitment nodes
became disconnected during reduction is the order in which commit points are
reached.  The execution order equals the commit order with one exception:
commitments attached to their conjunction by a **red** edge are committed
first but *executed last* — "a broker should have a buyer committed before he
obtains goods, but must obtain the goods before he is able to give them to
the customer".

Each commitment execution is the principal's inbound transfer to the trusted
component.  A trusted component that now holds all but one of its exchange's
pieces issues a ``notify`` to the remaining principal; one that holds all the
pieces *releases*: it forwards each deposit to its destination, goods before
payments (this expansion reproduces the ten-step listing of §5 exactly).

Indemnity deposits/refunds (§6) are spliced in by
:func:`repro.core.indemnity.apply_plan`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.actions import Action, notify, transfer
from repro.core.constraints import Constraint, possession_constraints
from repro.core.interaction import InteractionGraph
from repro.core.parties import Party
from repro.core.reduction import ReductionTrace
from repro.core.sequencing import CommitmentNode
from repro.errors import InfeasibleExchangeError, ModelError


class StepKind(enum.Enum):
    """What an execution step does."""

    DEPOSIT = "deposit"  # principal -> trusted inbound transfer (a commitment)
    NOTIFY = "notify"  # trusted component informs the last outstanding principal
    RELEASE = "release"  # trusted -> principal outbound transfer
    INDEMNITY_DEPOSIT = "indemnity-deposit"  # §6 escrow, spliced in by indemnity module
    INDEMNITY_REFUND = "indemnity-refund"


@dataclass(frozen=True)
class ExecutionStep:
    """One totally ordered step of the distributed transaction."""

    index: int
    kind: StepKind
    action: Action
    commitment: CommitmentNode | None = None

    def describe(self) -> str:
        """Paper-style prose, e.g. ``'Producer sends document to Trusted2.'``"""
        action = self.action
        if self.kind is StepKind.NOTIFY:
            return f"{action.sender.name} notifies {action.recipient.name}."
        assert action.item is not None
        noun = "money" if action.item.is_money else "document"
        if self.kind is StepKind.INDEMNITY_DEPOSIT:
            return f"{action.sender.name} deposits indemnity with {action.recipient.name}."
        if self.kind is StepKind.INDEMNITY_REFUND:
            return f"{action.sender.name} refunds indemnity to {action.recipient.name}."
        return f"{action.sender.name} sends {noun} to {action.recipient.name}."

    def __str__(self) -> str:
        return f"{self.index}. {self.describe()}"


@dataclass(frozen=True)
class ExecutionSequence:
    """A total order of pairwise transfers and notifications (§5)."""

    steps: tuple[ExecutionStep, ...]

    @property
    def actions(self) -> tuple[Action, ...]:
        """The bare action sequence."""
        return tuple(step.action for step in self.steps)

    @property
    def transfers(self) -> tuple[Action, ...]:
        """Only the give/pay actions, in order."""
        return tuple(a for a in self.actions if a.is_transfer)

    def describe(self) -> list[str]:
        """The numbered prose listing, matching the paper's §5 format."""
        return [str(step) for step in self.steps]

    def violated_constraints(self, extra: tuple[Constraint, ...] = ()) -> list[Constraint]:
        """Possession (§2.4) and extra constraints violated by this order.

        An empty list certifies the sequence is physically executable: no
        party ever sends a document it has not yet received.
        """
        constraints = possession_constraints(self.transfers) | set(extra)
        sequence = list(self.actions)
        return [c for c in constraints if not c.satisfied_by(sequence)]

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return "\n".join(self.describe())


def _resequence(steps: list[ExecutionStep]) -> tuple[ExecutionStep, ...]:
    """Renumber steps 1..n preserving order."""
    return tuple(
        ExecutionStep(index=i + 1, kind=s.kind, action=s.action, commitment=s.commitment)
        for i, s in enumerate(steps)
    )


def execution_order(trace: ReductionTrace) -> tuple[CommitmentNode, ...]:
    """Commit order with red-edge commitments deferred to the end (§5).

    Relative order is preserved within the non-deferred and deferred groups.
    """
    red_commitments = {edge.commitment for edge in trace.graph.red_edges}
    immediate = [c for c in trace.commitment_order if c not in red_commitments]
    deferred = [c for c in trace.commitment_order if c in red_commitments]
    return tuple(immediate + deferred)


def recover_execution(
    trace: ReductionTrace, scheduler: str = "possession"
) -> ExecutionSequence:
    """Expand a feasible reduction trace into the §5 execution sequence.

    ``scheduler`` selects the ordering discipline:

    * ``"possession"`` (default) — the §5 recipe plus possession gating: a
      commitment only executes once its principal holds the item it must
      deposit.  Exact on the paper's examples and correct on multi-reseller
      chains.
    * ``"paper-strict"`` — the literal §5 recipe (commit order, red
      commitments deferred, no gating).  Kept for the ablation benchmark:
      on chains with ≥2 resellers it emits sequences that violate §2.4
      possession constraints, which is why the default gates.

    Raises :class:`InfeasibleExchangeError` on an infeasible trace, and
    :class:`ModelError` if the sequencing graph was built without an
    interaction graph (the transfers' items come from the interaction edges).
    """
    if scheduler not in ("possession", "paper-strict"):
        raise ModelError(f"unknown execution scheduler {scheduler!r}")
    if not trace.feasible:
        raise InfeasibleExchangeError(
            "cannot recover an execution sequence from an infeasible reduction; "
            + "; ".join(str(b) for b in trace.blockages)
        )
    interaction = trace.graph.interaction
    if interaction is None:
        raise ModelError(
            "sequencing graph has no interaction graph attached; build it via "
            "SequencingGraph.from_interaction to recover executions"
        )

    order = list(execution_order(trace))
    steps: list[ExecutionStep] = []
    executed: set[CommitmentNode] = set()
    commitments_at: dict[Party, list[CommitmentNode]] = {}
    for commitment in trace.graph.commitments:
        commitments_at.setdefault(commitment.trusted, []).append(commitment)
    possession = _initial_possession(interaction)
    bundle_gates = _bundle_gates(trace, commitments_at)

    # Possession-gated greedy scheduler.  The paper's rule (commit order with
    # red commitments deferred) is exact for a single red edge; with several
    # resellers the deferred group must additionally respect possession — a
    # broker cannot deposit a document it has not yet been handed (§2.4).
    # Scheduling the first *executable* commitment in the deferred-adjusted
    # commit order reproduces the §5 listing and generalizes to chains.
    while order:
        if scheduler == "possession":
            commitment = _next_executable(order, possession, bundle_gates, executed)
        else:
            commitment = order[0]
        order.remove(commitment)
        edge = commitment.edge
        deposit = transfer(edge.principal, edge.trusted, edge.provides)
        if not edge.provides.is_money:
            possession[edge.principal].discard(edge.provides)
        steps.append(ExecutionStep(0, StepKind.DEPOSIT, deposit, commitment))
        executed.add(commitment)
        siblings = commitments_at[edge.trusted]
        pending = [c for c in siblings if c not in executed]
        if len(pending) == 1:
            steps.append(
                ExecutionStep(
                    0,
                    StepKind.NOTIFY,
                    notify(edge.trusted, pending[0].principal),
                    commitment,
                )
            )
        elif not pending:
            releases = _release_steps(interaction, edge.trusted, siblings)
            for release in releases:
                item = release.action.item
                assert item is not None
                if not item.is_money:
                    possession[release.action.recipient].add(item)
            steps.extend(releases)
    return ExecutionSequence(_resequence(steps))


def _initial_possession(interaction: InteractionGraph) -> dict[Party, set]:
    """Who starts out holding which goods.

    A principal initially owns a document it provides unless it also
    *expects* that same document from one of its other exchanges (then it is
    a reseller acquiring the good mid-transaction).  Money is not tracked:
    principals are assumed solvent — insolvency is modeled structurally with
    red edges (the §5 "poor broker"), not by the scheduler.
    """
    possession: dict[Party, set] = {p: set() for p in interaction.parties}
    for edge in interaction.edges:
        if edge.provides.is_money:
            continue
        incoming = any(
            interaction.expects(other) == edge.provides
            for other in interaction.edges
            if other.principal == edge.principal and other != edge
        )
        if not incoming:
            possession[edge.principal].add(edge.provides)
    return possession


def _bundle_gates(
    trace: ReductionTrace,
    commitments_at: dict[Party, list[CommitmentNode]],
) -> dict[CommitmentNode, list[CommitmentNode]]:
    """Cross-exchange assurance gates for bundle (all-black) conjunctions.

    The §4.1 second-type conjunction ("a customer wants a set of documents,
    useful only if all are received") imposes no *commit* ordering, but the
    §2.3 guarantee requires that a bundle member's deposit not enable one
    exchange to complete while a sibling exchange can still silently fail.
    The gate: a bundle member executes only after, for every *sibling*
    exchange still conjoined (indemnity splits remove members, §6), the
    counterpart deposits at that sibling's trusted component have executed —
    precisely the state in which that component issues its notify (§2.5).

    Red conjunctions are untouched: their ordering is the red-deferral rule.
    """
    gates: dict[CommitmentNode, list[CommitmentNode]] = {}
    graph = trace.graph
    for conjunction in graph.conjunctions:
        if not conjunction.agent.is_principal:
            continue
        edges = graph.edges_of_conjunction(conjunction)
        if len(edges) < 2 or any(e.is_red for e in edges):
            continue
        members = [e.commitment for e in edges]
        for member in members:
            required: list[CommitmentNode] = []
            for sibling in members:
                if sibling == member:
                    continue
                required.extend(
                    c
                    for c in commitments_at[sibling.trusted]
                    if c != sibling
                )
            gates[member] = required
    return gates


def _next_executable(
    order: list[CommitmentNode],
    possession: dict[Party, set],
    bundle_gates: dict[CommitmentNode, list[CommitmentNode]],
    executed: set[CommitmentNode],
) -> CommitmentNode:
    """The first commitment whose deposit its principal can actually make."""
    for commitment in order:
        item = commitment.edge.provides
        if not item.is_money and item not in possession[commitment.edge.principal]:
            continue
        gate = bundle_gates.get(commitment, ())
        if any(required not in executed for required in gate):
            continue
        return commitment
    labels = [c.label for c in order]
    raise InfeasibleExchangeError(
        f"execution scheduler stalled: no pending commitment of {labels} can "
        "be funded and bundle-assured; the reduction order admits no "
        "§2.3-protective total order"
    )


def _release_steps(
    interaction: InteractionGraph,
    trusted: Party,
    siblings: list[CommitmentNode],
) -> list[ExecutionStep]:
    """Outbound transfers when a trusted component holds every piece.

    Each principal receives what its counterpart(s) provided.  Goods are
    released before payments (matching steps 6–7 and 9–10 of the paper's §5
    listing); ties break on recipient name for determinism.
    """
    releases: list[ExecutionStep] = []
    for receiver in siblings:
        item = interaction.expects(receiver.edge)
        outbound = transfer(trusted, receiver.principal, item)
        releases.append(ExecutionStep(0, StepKind.RELEASE, outbound, receiver))
    releases.sort(
        key=lambda s: (
            s.action.item.is_money if s.action.item is not None else True,
            s.action.recipient.name,
        )
    )
    return releases
