"""Mediation planning under a hierarchy of trust (§9 future work).

The paper closes with: "Another interesting extension is trust relationships
among the trusted intermediaries.  A 'hierarchy of trust' may allow more
completed transactions, and model more closely the use of trust in the real
world."

This module makes trust in intermediaries *explicit* (in the body of the
paper it is implicit in the interaction edges) and implements the
hierarchy: if principal *a* trusts component *t₁* and *t₁* trusts *t₂*, then
*a* may transact through *t₂* — trust composes along chains of trusted
components (and only through trusted components: a hierarchy of escrows, not
of principals).  The planner finds a common usable intermediary for two
principals under the closure and emits the standard pairwise exchange; the
accompanying study quantifies how many principal pairs become transactable
as the hierarchy deepens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interaction import InteractionGraph
from repro.core.items import Item
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.trust import TrustRelation
from repro.errors import GraphError


class NoCommonIntermediaryError(GraphError):
    """No trusted component is (transitively) trusted by both principals."""


def hierarchical_closure(trust: TrustRelation, max_depth: int | None = None) -> TrustRelation:
    """Close trust over chains of trusted components.

    ``x → t₁ → t₂ → … → tₖ`` yields ``x → tₖ`` when every tᵢ is a trusted
    component: intermediaries vouch for intermediaries, but a principal in
    the middle of a chain breaks it (principals are self-interested; §7.1).
    ``max_depth`` bounds the chain length (None = unbounded).
    """
    closure = trust.copy()
    depth = 0
    changed = True
    while changed and (max_depth is None or depth < max_depth):
        changed = False
        depth += 1
        for truster, middle in list(closure):
            if not middle.is_trusted:
                continue
            for trustee in closure.trustees_of(middle):
                if not trustee.is_trusted or trustee == truster:
                    continue
                if not closure.trusts(truster, trustee):
                    closure.add(truster, trustee)
                    changed = True
    return closure


def usable_intermediaries(
    a: Party,
    b: Party,
    trust: TrustRelation,
    pool: list[Party] | tuple[Party, ...],
    hierarchy: bool = True,
) -> tuple[Party, ...]:
    """Trusted components both *a* and *b* trust (directly, or through the
    hierarchy when *hierarchy* is set)."""
    effective = hierarchical_closure(trust) if hierarchy else trust
    return tuple(
        t
        for t in pool
        if t.is_trusted and effective.trusts(a, t) and effective.trusts(b, t)
    )


@dataclass(frozen=True)
class MediationPlan:
    """A planned pairwise exchange through a commonly trusted component."""

    left: Party
    right: Party
    via: Party
    used_hierarchy: bool


def plan_mediation(
    a: Party,
    b: Party,
    trust: TrustRelation,
    pool: list[Party] | tuple[Party, ...],
) -> MediationPlan:
    """Choose an intermediary for *a* and *b*, preferring directly shared ones.

    Raises :class:`NoCommonIntermediaryError` when even the hierarchy closes
    no gap — the exchange cannot be protected (absent direct principal
    trust or indemnities negotiated elsewhere).
    """
    direct = usable_intermediaries(a, b, trust, pool, hierarchy=False)
    if direct:
        return MediationPlan(a, b, direct[0], used_hierarchy=False)
    bridged = usable_intermediaries(a, b, trust, pool, hierarchy=True)
    if bridged:
        return MediationPlan(a, b, bridged[0], used_hierarchy=True)
    raise NoCommonIntermediaryError(
        f"{a.name} and {b.name} share no trusted intermediary, even through "
        "the trust hierarchy"
    )


def mediated_problem(
    name: str,
    a: Party,
    item_a: Item,
    b: Party,
    item_b: Item,
    trust: TrustRelation,
    pool: list[Party] | tuple[Party, ...],
) -> tuple[ExchangeProblem, MediationPlan]:
    """Build the standard protected exchange for the planned intermediary."""
    plan = plan_mediation(a, b, trust, pool)
    graph = InteractionGraph()
    graph.add_principal(a)
    graph.add_principal(b)
    graph.add_trusted(plan.via)
    graph.add_exchange(a, item_a, b, item_b, via=plan.via)
    problem = ExchangeProblem(name, graph).validate()
    return problem, plan


@dataclass(frozen=True)
class HierarchyStudyRow:
    """Transactable principal pairs with and without the hierarchy."""

    n_principals: int
    n_intermediaries: int
    pairs_total: int
    pairs_direct: int
    pairs_hierarchical: int

    @property
    def unlocked_by_hierarchy(self) -> int:
        return self.pairs_hierarchical - self.pairs_direct


def hierarchy_study(
    n_principals: int = 8,
    n_intermediaries: int = 5,
    direct_trust_probability: float = 0.3,
    inter_trust_probability: float = 0.4,
    seed: int = 0,
) -> HierarchyStudyRow:
    """Random trust topologies: how many pairs does the hierarchy unlock?

    Each principal trusts each intermediary independently with
    ``direct_trust_probability``; each ordered intermediary pair trusts with
    ``inter_trust_probability``.
    """
    import random

    from repro.core.parties import broker, trusted

    rng = random.Random(seed)
    principals = [broker(f"P{i + 1}") for i in range(n_principals)]
    pool = [trusted(f"T{i + 1}") for i in range(n_intermediaries)]
    trust = TrustRelation()
    for p in principals:
        for t in pool:
            if rng.random() < direct_trust_probability:
                trust.add(p, t)
    for t1 in pool:
        for t2 in pool:
            if t1 != t2 and rng.random() < inter_trust_probability:
                trust.add(t1, t2)

    pairs_total = 0
    pairs_direct = 0
    pairs_hierarchical = 0
    for i, a in enumerate(principals):
        for b in principals[i + 1 :]:
            pairs_total += 1
            if usable_intermediaries(a, b, trust, pool, hierarchy=False):
                pairs_direct += 1
            if usable_intermediaries(a, b, trust, pool, hierarchy=True):
                pairs_hierarchical += 1
    return HierarchyStudyRow(
        n_principals=n_principals,
        n_intermediaries=n_intermediaries,
        pairs_total=pairs_total,
        pairs_direct=pairs_direct,
        pairs_hierarchical=pairs_hierarchical,
    )
