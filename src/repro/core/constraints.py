"""Ordering constraints on exchange actions (paper §2.4).

The paper writes a constraint as ``later → earlier`` ("with the earlier one at
the point of the arrow"), e.g. ``give_{b→c}(d) → give_{p→b}(d)``: the broker
can only forward a document after receiving it.  :class:`Constraint` captures
one such pair; :func:`possession_constraints` derives the physically necessary
ones ("a party cannot send a document that it does not have") from a set of
transfers; and :func:`check_sequence` validates a total order against a
constraint set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.actions import Action
from repro.errors import ModelError


@dataclass(frozen=True, order=True)
class Constraint:
    """``later`` may only execute after ``earlier`` (paper's ``later → earlier``)."""

    later: Action
    earlier: Action

    def __post_init__(self) -> None:
        if self.later == self.earlier:
            raise ModelError("a constraint cannot order an action against itself")

    def satisfied_by(self, sequence: Sequence[Action]) -> bool:
        """Whether *sequence* (a total order) satisfies this constraint.

        A constraint is vacuously satisfied when ``later`` does not occur;
        if ``later`` occurs, ``earlier`` must occur before it.
        """
        try:
            later_index = sequence.index(self.later)
        except ValueError:
            return True
        try:
            earlier_index = sequence.index(self.earlier)
        except ValueError:
            return False
        return earlier_index < later_index

    def __str__(self) -> str:
        return f"{self.later} -> {self.earlier}"


def possession_constraints(transfers: Iterable[Action]) -> set[Constraint]:
    """Derive "cannot send what you do not have" constraints (§2.4).

    For every pair of non-inverted transfers of the *same item* where one
    party receives the item and later sends it onward, the inbound transfer
    must precede the outbound one.  Money is excluded: parties may have their
    own funds (the paper's "poor broker" variant adds such a constraint
    explicitly rather than deriving it).
    """
    transfers = [t for t in transfers if t.is_transfer and not t.inverted]
    constraints: set[Constraint] = set()
    for outbound in transfers:
        if outbound.item is None or outbound.item.is_money:
            continue
        for inbound in transfers:
            if inbound is outbound:
                continue
            if inbound.item == outbound.item and inbound.recipient == outbound.sender:
                constraints.add(Constraint(later=outbound, earlier=inbound))
    return constraints


def check_sequence(
    sequence: Sequence[Action], constraints: Iterable[Constraint]
) -> list[Constraint]:
    """Return the constraints *violated* by a total order (empty = valid)."""
    sequence = list(sequence)
    return [c for c in constraints if not c.satisfied_by(sequence)]


def topological_respects(
    sequence: Sequence[Action], constraints: Iterable[Constraint]
) -> bool:
    """Convenience predicate: True iff no constraint is violated."""
    return not check_sequence(sequence, constraints)
