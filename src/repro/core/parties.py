"""Parties to a distributed commerce transaction (paper §2.1, §2.5).

The paper distinguishes three classes of *principals* — producers, consumers,
and brokers — plus *trusted components* (intermediaries).  A party is a named,
hashable value object; identity is the name, so two ``Party`` objects with the
same name are interchangeable.

The principal/trusted distinction matters structurally: interaction graphs are
bipartite between principals and trusted components (§3), and only trusted
components may emit ``notify`` actions or reverse transfers they received
(§2.5).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import ModelError

_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_\-]*$")


class Role(enum.Enum):
    """Functional role a party plays in a transaction.

    ``CONSUMER``/``BROKER``/``PRODUCER`` are the paper's three principal
    classes (§2.1); ``TRUSTED`` marks a trusted component (§2.5).  The role
    only constrains graph structure (principal vs trusted); the
    consumer/broker/producer distinction is descriptive and used by workload
    generators and the spec language.
    """

    CONSUMER = "consumer"
    BROKER = "broker"
    PRODUCER = "producer"
    TRUSTED = "trusted"

    @property
    def is_principal(self) -> bool:
        """True for consumer/broker/producer, False for trusted components."""
        return self is not Role.TRUSTED


@dataclass(frozen=True, order=True)
class Party:
    """A named participant with a :class:`Role`.

    Parties are immutable and hashable; they are used as graph-node keys
    throughout the library.

    >>> c = Party("consumer", Role.CONSUMER)
    >>> c.is_principal
    True
    >>> Party("t1", Role.TRUSTED).is_trusted
    True
    """

    name: str
    role: Role

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ModelError(
                f"invalid party name {self.name!r}: names must start with a "
                "letter and contain only letters, digits, '_' or '-'"
            )

    def __hash__(self) -> int:
        # Parties key every graph index and hot-loop set; cache the hash on
        # first use.  The cache must not cross process boundaries (str hashes
        # are per-process salted), so __getstate__ strips it before pickling.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.name, self.role))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def is_principal(self) -> bool:
        """Whether this party is a principal (non-trusted) participant."""
        return self.role.is_principal

    @property
    def is_trusted(self) -> bool:
        """Whether this party is a trusted component."""
        return self.role is Role.TRUSTED

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def consumer(name: str) -> Party:
    """Create a consumer principal (paper §2.1)."""
    return Party(name, Role.CONSUMER)


def broker(name: str) -> Party:
    """Create a broker principal (paper §2.1)."""
    return Party(name, Role.BROKER)


def producer(name: str) -> Party:
    """Create a producer principal (paper §2.1)."""
    return Party(name, Role.PRODUCER)


def trusted(name: str) -> Party:
    """Create a trusted component (paper §2.5)."""
    return Party(name, Role.TRUSTED)


def require_principal(party: Party, context: str) -> Party:
    """Validate that *party* is a principal; raise :class:`ModelError` otherwise."""
    if not party.is_principal:
        raise ModelError(f"{context}: {party.name} is a trusted component, not a principal")
    return party


def require_trusted(party: Party, context: str) -> Party:
    """Validate that *party* is a trusted component; raise otherwise."""
    if not party.is_trusted:
        raise ModelError(f"{context}: {party.name} is a principal, not a trusted component")
    return party
