"""The original rescan-everything reduction engine, retained as an oracle.

This is the seed implementation of the §4.2 greedy reduction: every fringe
test rescans the full remaining-edge set and :meth:`applicable` re-derives
all legal steps from scratch each iteration, giving O(E³) behavior on large
graphs.  It was replaced by the incremental indexed engine in
:mod:`repro.core.reduction`, but is kept (unoptimized, and never imported by
production code) as the **equivalence oracle**: the property suite in
``tests/property/test_engine_equivalence.py`` drives both engines through
identical strategies, personas, and ablations and asserts they agree on the
verdict, the step sequence, the blockage diagnosis, and the commitment /
conjunction disconnection orders.

The only change from the seed is that remaining-edge enumeration iterates
``graph.edges`` (original graph order) rather than a Python ``set``, so
``blocking_red_edges`` tuples are deterministic and comparable against the
indexed engine's output.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.core.reduction import Blockage, ReductionStep, ReductionTrace, Rule
from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    SGEdge,
    SequencingGraph,
)
from repro.errors import ReductionError


class ReferenceReductionEngine:
    """Naive O(E³) engine: full rescans, no indices.  Oracle use only."""

    def __init__(self, graph: SequencingGraph, enable_persona_clause: bool = True) -> None:
        self.graph = graph
        self.enable_persona_clause = enable_persona_clause
        self.remaining: set[SGEdge] = set(graph.edges)
        self.steps: list[ReductionStep] = []
        self._commitment_order: list[CommitmentNode] = []
        self._conjunction_order: list[ConjunctionNode] = []
        for commitment in graph.commitments:
            if not self._edges_of_commitment(commitment):
                self._commitment_order.append(commitment)
        for conjunction in graph.conjunctions:
            if not self._edges_of_conjunction(conjunction):
                self._conjunction_order.append(conjunction)

    # ----------------------------------------------------------- fringe tests

    def _edges_of_commitment(self, commitment: CommitmentNode) -> list[SGEdge]:
        return [
            e for e in self.graph.edges if e in self.remaining and e.commitment == commitment
        ]

    def _edges_of_conjunction(self, conjunction: ConjunctionNode) -> list[SGEdge]:
        return [
            e for e in self.graph.edges if e in self.remaining and e.conjunction == conjunction
        ]

    def is_commitment_fringe(self, commitment: CommitmentNode) -> bool:
        return len(self._edges_of_commitment(commitment)) == 1

    def is_conjunction_fringe(self, conjunction: ConjunctionNode) -> bool:
        return len(self._edges_of_conjunction(conjunction)) == 1

    def blocking_red_edges(self, edge: SGEdge) -> tuple[SGEdge, ...]:
        return tuple(
            other
            for other in self._edges_of_conjunction(edge.conjunction)
            if other.is_red and other.commitment != edge.commitment
        )

    def rule1_applicable(self, edge: SGEdge) -> tuple[bool, bool]:
        if edge not in self.remaining:
            return False, False
        if not self.is_commitment_fringe(edge.commitment):
            return False, False
        if self.enable_persona_clause and edge.commitment in self.graph.personas:
            return True, bool(self.blocking_red_edges(edge))
        if self.blocking_red_edges(edge):
            return False, False
        return True, False

    def rule2_applicable(self, edge: SGEdge) -> bool:
        return edge in self.remaining and self.is_conjunction_fringe(edge.conjunction)

    def applicable(self) -> list[tuple[Rule, SGEdge, bool]]:
        result: list[tuple[Rule, SGEdge, bool]] = []
        for edge in self.graph.edges:
            if edge not in self.remaining:
                continue
            ok, via_persona = self.rule1_applicable(edge)
            if ok:
                result.append((Rule.COMMITMENT_FRINGE, edge, via_persona))
            if self.rule2_applicable(edge):
                result.append((Rule.CONJUNCTION_FRINGE, edge, False))
        return result

    # ----------------------------------------------------------------- apply

    def apply(self, rule: Rule, edge: SGEdge) -> ReductionStep:
        if edge not in self.remaining:
            raise ReductionError(f"edge already removed or unknown: {edge}")
        via_persona = False
        if rule is Rule.COMMITMENT_FRINGE:
            ok, via_persona = self.rule1_applicable(edge)
            if not ok:
                if not self.is_commitment_fringe(edge.commitment):
                    raise ReductionError(
                        f"Rule #1 inapplicable: {edge.commitment.label} is not a fringe node"
                    )
                reds = self.blocking_red_edges(edge)
                raise ReductionError(
                    f"Rule #1 inapplicable: {edge} is pre-empted by red edge(s) "
                    f"{[str(r) for r in reds]} and the commitment is not a persona"
                )
        elif rule is Rule.CONJUNCTION_FRINGE:
            if not self.rule2_applicable(edge):
                raise ReductionError(
                    f"Rule #2 inapplicable: {edge.conjunction.label} is not a fringe node"
                )
        else:  # pragma: no cover - enum exhausted
            raise ReductionError(f"unknown rule {rule!r}")

        self.remaining.discard(edge)
        commitment_done = None
        conjunction_done = None
        if not self._edges_of_commitment(edge.commitment):
            commitment_done = edge.commitment
            self._commitment_order.append(edge.commitment)
        if not self._edges_of_conjunction(edge.conjunction):
            conjunction_done = edge.conjunction
            self._conjunction_order.append(edge.conjunction)
        step = ReductionStep(
            index=len(self.steps) + 1,
            rule=rule,
            edge=edge,
            via_persona=via_persona,
            commitment_disconnected=commitment_done,
            conjunction_disconnected=conjunction_done,
        )
        self.steps.append(step)
        return step

    def apply_edge(self, edge: SGEdge) -> ReductionStep:
        ok, _ = self.rule1_applicable(edge)
        if ok:
            return self.apply(Rule.COMMITMENT_FRINGE, edge)
        if self.rule2_applicable(edge):
            return self.apply(Rule.CONJUNCTION_FRINGE, edge)
        raise ReductionError(f"no reduction rule applies to {edge}")

    # -------------------------------------------------------------------- run

    def run(
        self,
        strategy: str = "fifo",
        rng: random.Random | None = None,
        chooser: Callable[[list[tuple[Rule, SGEdge, bool]]], tuple[Rule, SGEdge, bool]]
        | None = None,
    ) -> ReductionTrace:
        if strategy == "random" and rng is None and chooser is None:
            rng = random.Random(0)
        while True:
            options = self.applicable()
            if not options:
                break
            if chooser is not None:
                choice = chooser(options)
                if choice not in options:
                    raise ReductionError("chooser returned an inapplicable step")
            elif strategy == "fifo":
                choice = options[0]
            elif strategy == "lifo":
                choice = options[-1]
            elif strategy == "random":
                assert rng is not None
                choice = rng.choice(options)
            else:
                raise ReductionError(f"unknown reduction strategy {strategy!r}")
            rule, edge, _ = choice
            self.apply(rule, edge)
        return self.trace()

    def trace(self) -> ReductionTrace:
        return ReductionTrace(
            graph=self.graph,
            steps=tuple(self.steps),
            remaining=frozenset(self.remaining),
            commitment_order=tuple(self._commitment_order),
            conjunction_order=tuple(self._conjunction_order),
            blockages=tuple(self._diagnose()),
        )

    def _diagnose(self) -> list[Blockage]:
        blockages: list[Blockage] = []
        for edge in sorted(self.remaining):
            if not self.is_commitment_fringe(edge.commitment):
                continue
            reds = self.blocking_red_edges(edge)
            persona_waived = (
                self.enable_persona_clause and edge.commitment in self.graph.personas
            )
            if reds and not persona_waived:
                blockages.append(Blockage(edge=edge, blocking_red=reds))
        return blockages


def reference_reduce(
    graph: SequencingGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
    enable_persona_clause: bool = True,
) -> ReductionTrace:
    """One-call reduction through the naive oracle engine."""
    engine = ReferenceReductionEngine(graph, enable_persona_clause=enable_persona_clause)
    return engine.run(strategy=strategy, rng=rng)


def replay_reference(
    graph: SequencingGraph, script: Iterable[tuple[Rule, SGEdge]]
) -> ReductionTrace:
    """Replay a script through the oracle engine (mirrors :func:`repro.core.reduction.replay`)."""
    engine = ReferenceReductionEngine(graph)
    for rule, edge in script:
        engine.apply(rule, edge)
    return engine.trace()
