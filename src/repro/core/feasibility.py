"""Feasibility verdicts (paper §4.2.4).

The objective test is trivial — a fully reduced graph is feasible iff no
edges remain — but callers usually want more: the trace, the impasse
diagnosis, and (for infeasible exchanges) hints about what would unblock the
transaction.  :class:`FeasibilityVerdict` packages all of that, and
:func:`check_feasibility` is the one-call entry point from an interaction
graph or a sequencing graph.

Note the paper's caveat: the test is sound but not known to be complete —
"If the reduced graph does not pass the feasibility test, then no
determination can be made by this process."  The verdict therefore
distinguishes ``FEASIBLE`` from ``NOT_SHOWN_FEASIBLE`` rather than claiming
impossibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.interaction import InteractionGraph
from repro.core.reduction import Blockage, ReductionTrace, reduce_graph
from repro.core.sequencing import SequencingGraph
from repro.core.trust import TrustRelation


class Verdict(enum.Enum):
    """Outcome of the §4.2.4 test."""

    FEASIBLE = "feasible"
    NOT_SHOWN_FEASIBLE = "not-shown-feasible"


@dataclass(frozen=True)
class FeasibilityVerdict:
    """The result of reducing an exchange's sequencing graph.

    ``verdict`` is :data:`Verdict.FEASIBLE` when every edge was eliminated;
    otherwise :data:`Verdict.NOT_SHOWN_FEASIBLE` (the paper's machinery never
    proves impossibility).  ``trace`` retains the full reduction record and
    ``blockages`` the red-edge impasse diagnosis.
    """

    verdict: Verdict
    trace: ReductionTrace

    @property
    def feasible(self) -> bool:
        """True iff the exchange was shown feasible."""
        return self.verdict is Verdict.FEASIBLE

    @property
    def blockages(self) -> tuple[Blockage, ...]:
        """Why the reduction stalled (empty when feasible)."""
        return self.trace.blockages

    @property
    def graph(self) -> SequencingGraph:
        """The sequencing graph that was reduced."""
        return self.trace.graph

    def explain(self) -> str:
        """A human-readable summary of the verdict."""
        if self.feasible:
            return (
                f"feasible: all {len(self.trace.steps)} edges eliminated; "
                f"commit order {[c.label for c in self.trace.commitment_order]}"
            )
        lines = [
            f"not shown feasible: {len(self.trace.remaining)} edge(s) remain "
            f"after {len(self.trace.steps)} reduction step(s)"
        ]
        lines.extend(f"  {blockage}" for blockage in self.blockages)
        if not self.blockages:
            lines.append("  (no fringe commitment is red-blocked; the graph is cyclic)")
        return "\n".join(lines)


def check_feasibility(
    graph: InteractionGraph | SequencingGraph,
    trust: TrustRelation | None = None,
    strategy: str = "fifo",
    enable_persona_clause: bool = True,
) -> FeasibilityVerdict:
    """Reduce and classify an exchange.

    Accepts either an :class:`InteractionGraph` (the sequencing graph is
    derived mechanically, §4.1) or a ready :class:`SequencingGraph` (in which
    case *trust* must already be baked into its personas).

    ``enable_persona_clause=False`` ablates Rule #1 clause 2 (§4.2.3), so
    trust-sensitivity studies can measure the clause's effect through the
    same entry point the rest of the pipeline uses.
    """
    if isinstance(graph, InteractionGraph):
        sequencing = SequencingGraph.from_interaction(graph, trust)
    else:
        sequencing = graph
    trace = reduce_graph(
        sequencing, strategy=strategy, enable_persona_clause=enable_persona_clause
    )
    verdict = Verdict.FEASIBLE if trace.feasible else Verdict.NOT_SHOWN_FEASIBLE
    return FeasibilityVerdict(verdict=verdict, trace=trace)
