"""Exchange states and per-party acceptance specifications (paper §2.3).

A *state* is the unordered set of actions executed so far.  Each party owns an
:class:`AcceptanceSpec`: a set of partial state descriptions such that a final
state is acceptable to the party iff it contains a superset of one
description's actions *and no other action performed by that party*.  One
acceptable description is marked *preferred*, which prevents, e.g., a seller
from always refunding when it could deliver.

The module also provides :func:`purchase_acceptance`, the canonical
buyer/seller/trusted-component specs the paper walks through for the simple
document purchase (the four acceptable customer states of §2.3), reused by the
simulator's safety monitor and many tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.actions import Action
from repro.core.items import Item, Money
from repro.core.parties import Party
from repro.errors import ModelError
from repro.core.actions import give, pay


def _performer(action: Action) -> Party:
    """The party that physically executes *action* (returns for inverses)."""
    return action.effective_sender


@dataclass(frozen=True)
class ExchangeState:
    """An unordered set of executed actions.

    >>> s = ExchangeState.empty()
    >>> s.is_status_quo
    True
    """

    actions: frozenset[Action] = field(default_factory=frozenset)

    @classmethod
    def empty(cls) -> "ExchangeState":
        """The status-quo state ``{}``."""
        return cls(frozenset())

    @classmethod
    def of(cls, actions: Iterable[Action]) -> "ExchangeState":
        """Build a state from any iterable of actions."""
        return cls(frozenset(actions))

    @property
    def is_status_quo(self) -> bool:
        """Whether no actions have been executed."""
        return not self.actions

    def with_action(self, action: Action) -> "ExchangeState":
        """The state after additionally executing *action*."""
        return ExchangeState(self.actions | {action})

    def actions_by(self, party: Party) -> frozenset[Action]:
        """All actions in this state performed by *party*."""
        return frozenset(a for a in self.actions if _performer(a) == party)

    def transfers(self) -> frozenset[Action]:
        """All give/pay actions (including inverses), excluding notifies."""
        return frozenset(a for a in self.actions if a.is_transfer)

    def contains(self, actions: Iterable[Action]) -> bool:
        """Whether every action in *actions* has been executed."""
        return frozenset(actions) <= self.actions

    def net_uncompensated(self) -> frozenset[Action]:
        """Transfers whose inverse has not also been executed.

        A ``give``/``pay`` paired with its ``give⁻¹``/``pay⁻¹`` nets out to
        the status quo for ownership purposes.
        """
        remaining = set()
        for action in self.transfers():
            if action.inverted:
                continue
            if action.inverse() not in self.actions:
                remaining.add(action)
        # Inverted actions without an original are dangling reversals and are
        # kept so the anomaly remains visible to acceptance checks.
        for action in self.transfers():
            if action.inverted and action.inverse() not in self.actions:
                remaining.add(action)
        return frozenset(remaining)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __str__(self) -> str:
        if self.is_status_quo:
            return "{}"
        return "{" + ", ".join(sorted(str(a) for a in self.actions)) + "}"


@dataclass(frozen=True)
class AcceptanceSpec:
    """A party's acceptable (and preferred) final states (§2.3).

    ``acceptable`` is the set of partial state descriptions; ``preferred``
    must be one of them.  A state *S* is acceptable iff some description *D*
    satisfies ``D ⊆ S`` and *S* contains no action performed by ``party``
    outside *D*.
    """

    party: Party
    acceptable: tuple[frozenset[Action], ...]
    preferred: frozenset[Action]

    def __post_init__(self) -> None:
        if self.preferred not in self.acceptable:
            raise ModelError(
                f"preferred state for {self.party.name} must be one of the acceptable states"
            )

    def accepts(self, state: ExchangeState) -> bool:
        """Whether *state* is an acceptable outcome for this party."""
        return any(self._matches(description, state) for description in self.acceptable)

    def matching_description(self, state: ExchangeState) -> frozenset[Action] | None:
        """The first acceptable description matched by *state*, or ``None``."""
        for description in self.acceptable:
            if self._matches(description, state):
                return description
        return None

    def is_preferred(self, state: ExchangeState) -> bool:
        """Whether *state* matches the preferred description."""
        return self._matches(self.preferred, state)

    def _matches(self, description: frozenset[Action], state: ExchangeState) -> bool:
        if not description <= state.actions:
            return False
        own_in_state = state.actions_by(self.party)
        own_in_description = frozenset(a for a in description if _performer(a) == self.party)
        return own_in_state <= own_in_description


def purchase_acceptance(
    customer: Party,
    seller: Party,
    good: Item,
    price: Money,
    via: Party | None = None,
) -> dict[Party, AcceptanceSpec]:
    """The canonical acceptance specs for a simple purchase (§2.3).

    When ``via`` is ``None``, the customer pays the seller directly; the four
    acceptable customer states are exactly the paper's: the completed
    exchange, the refund, the status quo, and the windfall (goods without
    payment).  With a trusted intermediary ``via``, payments flow to the
    intermediary and goods may arrive from either the intermediary or the
    seller, mirroring the §3.1 formalization.
    """
    payee = via if via is not None else seller
    pay_act = pay(customer, payee, price)
    refund = pay_act.inverse()
    sources = [seller] if via is None else [seller, via]
    receive_any = [give(src, customer, good) for src in sources]
    deliver_target = via if via is not None else customer
    deliver = give(seller, deliver_target, good)
    returned = deliver.inverse()
    seller_paid_any = [pay(customer, payee, price)] if via is None else [
        pay(customer, via, price),
        pay(via, seller, price),
    ]

    customer_states: list[frozenset[Action]] = []
    preferred_customer = frozenset({receive_any[0], pay_act})
    for receive in receive_any:
        customer_states.append(frozenset({receive, pay_act}))
    customer_states.append(frozenset())  # status quo
    for receive in receive_any:
        customer_states.append(frozenset({receive}))  # windfall
    customer_states.append(frozenset({pay_act, refund}))  # refunded

    seller_states: list[frozenset[Action]] = []
    preferred_seller = frozenset({deliver, seller_paid_any[-1]})
    for paid in seller_paid_any:
        seller_states.append(frozenset({deliver, paid}))
    seller_states.append(frozenset())  # status quo
    for paid in seller_paid_any:
        seller_states.append(frozenset({paid}))  # windfall
    seller_states.append(frozenset({deliver, returned}))  # goods returned
    # §2.3: the refunded-payment outcome is acceptable to the producer too
    # ("any of the first three states are acceptable").
    seller_states.append(frozenset({pay_act, refund}))

    specs = {
        customer: AcceptanceSpec(customer, tuple(customer_states), preferred_customer),
        seller: AcceptanceSpec(seller, tuple(seller_states), preferred_seller),
    }
    if via is not None:
        forward_good = give(via, customer, good)
        forward_pay = pay(via, seller, price)
        complete = frozenset({deliver, pay_act, forward_good, forward_pay})
        back_out_money = frozenset({pay_act, refund})
        back_out_good = frozenset({deliver, returned})
        specs[via] = AcceptanceSpec(
            via,
            (complete, frozenset(), back_out_money, back_out_good),
            complete,
        )
    return specs
