"""Interaction graphs (paper §3).

An interaction graph ``I = (P, T, E)`` records the parties to a distributed
transaction and which principal uses which trusted intermediary for one side
of an exchange.  The graph is bipartite: every edge joins a principal in *P*
to a trusted component in *T*.

This implementation enriches each edge with the *item the principal provides*
through that intermediary (a document or a payment), which is what the
sequencing machinery (§4), indemnity sizing (§6), and the simulator all need.
A trusted component with exactly two edges mediates one pairwise exchange:
each side provides its item and expects the counterpart's.

Resale priorities (the third conjunction type of §4.1 — "a broker will commit
to obtain a document only if it has a committed buyer") are declared with
:meth:`InteractionGraph.mark_priority` on the *sell-side* edge and become red
edges in the sequencing graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.items import Item
from repro.core.parties import Party, require_principal, require_trusted
from repro.errors import GraphError


@dataclass(frozen=True, order=True)
class InteractionEdge:
    """One edge ``(principal, trusted)`` of the interaction graph.

    ``provides`` is the item the principal deposits with the trusted
    component for this exchange.  ``tag`` disambiguates parallel edges
    between the same pair (rare, but legal in the formalism).
    """

    principal: Party
    trusted: Party
    provides: Item
    tag: str = ""

    def __post_init__(self) -> None:
        require_principal(self.principal, "interaction edge")
        require_trusted(self.trusted, "interaction edge")

    def __hash__(self) -> int:
        # Cached: interaction edges sit inside every CommitmentNode/SGEdge
        # hash, so this is the deepest level of the reduction hot loop.  The
        # cache never survives pickling (per-process str-hash salting).
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.principal, self.trusted, self.provides, self.tag))
            object.__setattr__(self, "_hash", value)
            return value

    def __getstate__(self) -> dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``'consumer--t1'``."""
        suffix = f"#{self.tag}" if self.tag else ""
        return f"{self.principal.name}--{self.trusted.name}{suffix}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


class InteractionGraph:
    """The bipartite graph of principals and trusted components (§3).

    Build it incrementally with :meth:`add_principal`, :meth:`add_trusted`,
    and :meth:`add_edge`, then call :meth:`validate`.  The typical shortcut
    for a whole mediated exchange is :meth:`add_exchange`, which adds the
    two edges of a pairwise swap through one intermediary.
    """

    def __init__(self) -> None:
        self._principals: dict[str, Party] = {}
        self._trusted: dict[str, Party] = {}
        self._edges: list[InteractionEdge] = []
        self._priority: set[InteractionEdge] = set()
        # §9 extension: explicit entitlement maps for trusted components that
        # mediate more than two parties (who receives what on completion).
        self._multi_entitlements: dict[Party, dict[Party, Item]] = {}
        # §2.2: optional per-exchange deadlines (how long deposits are held
        # before the trusted component reverses them).
        self._deadlines: dict[Party, float] = {}

    # ------------------------------------------------------------------ build

    def add_principal(self, party: Party) -> Party:
        """Register a principal; re-adding the same party is a no-op."""
        require_principal(party, "add_principal")
        existing = self._principals.get(party.name)
        if existing is not None and existing != party:
            raise GraphError(f"conflicting principal registration for {party.name!r}")
        if party.name in self._trusted:
            raise GraphError(f"{party.name!r} is already registered as a trusted component")
        self._principals[party.name] = party
        return party

    def add_trusted(self, party: Party) -> Party:
        """Register a trusted component; re-adding the same party is a no-op."""
        require_trusted(party, "add_trusted")
        if party.name in self._principals:
            raise GraphError(f"{party.name!r} is already registered as a principal")
        self._trusted[party.name] = party
        return party

    def add_edge(
        self, principal: Party, trusted: Party, provides: Item, tag: str = ""
    ) -> InteractionEdge:
        """Add an edge: *principal* deposits *provides* with *trusted*."""
        if principal.name not in self._principals:
            raise GraphError(f"unknown principal {principal.name!r}; add_principal it first")
        if trusted.name not in self._trusted:
            raise GraphError(
                f"unknown trusted component {trusted.name!r}; add_trusted it first"
            )
        edge = InteractionEdge(principal, trusted, provides, tag)
        if edge in self._edges:
            raise GraphError(
                f"duplicate interaction edge {edge.label!r} (use tag= to disambiguate)"
            )
        self._edges.append(edge)
        return edge

    def add_exchange(
        self,
        left: Party,
        left_provides: Item,
        right: Party,
        right_provides: Item,
        via: Party,
        tag: str = "",
    ) -> tuple[InteractionEdge, InteractionEdge]:
        """Add both edges of a pairwise exchange mediated by *via*.

        *left* deposits *left_provides* and expects *right_provides*, and
        symmetrically for *right*.
        """
        return (
            self.add_edge(left, via, left_provides, tag=tag),
            self.add_edge(right, via, right_provides, tag=tag),
        )

    def add_multi_exchange(
        self,
        via: Party,
        members: "Sequence[tuple[Party, Item]]",
        entitlements: "Mapping[Party, Item] | None" = None,
        tag: str = "",
    ) -> tuple[InteractionEdge, ...]:
        """Add a k-party exchange mediated by one trusted component (§9).

        The paper's core setting is pairwise ("When an agent is trusted by
        more than two parties, additional distributed exchanges may become
        feasible, and our results should be extended to cover this case");
        this extension covers it.  *members* lists each principal and its
        deposit; *entitlements* says what each principal receives on
        completion (default: a ring — member *i* receives member *i−1*'s
        deposit).  Validate with ``allow_multiparty=True``.
        """
        if len(members) < 2:
            raise GraphError("a multi-party exchange needs at least two members")
        if entitlements is None:
            entitlements = {
                party: members[i - 1][1] for i, (party, _) in enumerate(members)
            }
        member_parties = [party for party, _ in members]
        if set(entitlements) != set(member_parties):
            raise GraphError(
                "entitlements must cover exactly the members of the exchange"
            )
        provided = {item for _, item in members}
        for party, item in entitlements.items():
            if item not in provided:
                raise GraphError(
                    f"entitlement {item!s} for {party.name} was not deposited "
                    "by any member"
                )
            if dict(members).get(party) == item:
                raise GraphError(
                    f"{party.name} would receive back its own deposit {item!s}"
                )
        edges = tuple(
            self.add_edge(party, via, item, tag=tag) for party, item in members
        )
        self._multi_entitlements[via] = dict(entitlements)
        return edges

    def set_deadline(self, trusted: Party, deadline: float) -> None:
        """Set how long *trusted* holds deposits before reversing (§2.2)."""
        if trusted.name not in self._trusted:
            raise GraphError(f"unknown trusted component {trusted.name!r}")
        if deadline <= 0:
            raise GraphError("deadlines must be positive")
        self._deadlines[trusted] = deadline

    def deadline_of(self, trusted: Party) -> float | None:
        """The deadline set for *trusted*, or None."""
        return self._deadlines.get(trusted)

    def mark_priority(self, edge: InteractionEdge) -> None:
        """Declare that *edge*'s commitment must precede the principal's others.

        This yields a red edge at the principal's conjunction node in the
        sequencing graph (the resale pattern: secure the buyer before buying).
        """
        if edge not in self._edges:
            raise GraphError(f"cannot mark unknown edge {edge.label!r} as priority")
        self._priority.add(edge)

    # ------------------------------------------------------------------ query

    @property
    def principals(self) -> tuple[Party, ...]:
        """All registered principals, in insertion order."""
        return tuple(self._principals.values())

    @property
    def trusted_components(self) -> tuple[Party, ...]:
        """All registered trusted components, in insertion order."""
        return tuple(self._trusted.values())

    @property
    def parties(self) -> tuple[Party, ...]:
        """All parties (principals then trusted components)."""
        return self.principals + self.trusted_components

    @property
    def edges(self) -> tuple[InteractionEdge, ...]:
        """All edges, in insertion order (this order is the node order used
        by deterministic reduction strategies)."""
        return tuple(self._edges)

    @property
    def priority_edges(self) -> frozenset[InteractionEdge]:
        """Edges whose commitments are priority (red) at their principal."""
        return frozenset(self._priority)

    def edges_at(self, party: Party) -> tuple[InteractionEdge, ...]:
        """All edges incident to *party* (either endpoint)."""
        return tuple(e for e in self._edges if party in (e.principal, e.trusted))

    def degree(self, party: Party) -> int:
        """Number of edges incident to *party*."""
        return len(self.edges_at(party))

    def internal_nodes(self) -> tuple[Party, ...]:
        """Parties with more than one edge — they get conjunction nodes (§4.1)."""
        degrees: dict[Party, int] = {}
        for e in self._edges:
            degrees[e.principal] = degrees.get(e.principal, 0) + 1
            degrees[e.trusted] = degrees.get(e.trusted, 0) + 1
        return tuple(p for p in self.parties if degrees.get(p, 0) > 1)

    def counterparts(self, edge: InteractionEdge) -> tuple[InteractionEdge, ...]:
        """The other edge(s) at *edge*'s trusted component."""
        return tuple(e for e in self.edges_at(edge.trusted) if e != edge)

    def expects(self, edge: InteractionEdge) -> Item:
        """What *edge*'s principal receives if the mediated exchange completes.

        Pairwise exchanges swap the two deposits; multi-party exchanges
        (added via :meth:`add_multi_exchange`) consult their entitlement map.
        """
        entitlements = self._multi_entitlements.get(edge.trusted)
        if entitlements is not None:
            return entitlements[edge.principal]
        others = self.counterparts(edge)
        if len(others) != 1:
            raise GraphError(
                f"trusted component {edge.trusted.name!r} mediates {len(others) + 1} "
                "parties without an entitlement map; use add_multi_exchange"
            )
        return others[0].provides

    def find_edge(self, principal_name: str, trusted_name: str, tag: str = "") -> InteractionEdge:
        """Look up an edge by endpoint names (raises if absent)."""
        for edge in self._edges:
            if (
                edge.principal.name == principal_name
                and edge.trusted.name == trusted_name
                and edge.tag == tag
            ):
                return edge
        raise GraphError(f"no interaction edge {principal_name}--{trusted_name}#{tag}")

    def shared_intermediaries(self, a: Party, b: Party) -> tuple[Party, ...]:
        """Trusted components that both *a* and *b* have an edge to."""
        at_a = {e.trusted for e in self._edges if e.principal == a}
        at_b = {e.trusted for e in self._edges if e.principal == b}
        return tuple(t for t in self.trusted_components if t in at_a and t in at_b)

    # --------------------------------------------------------------- validate

    def validate(self, allow_multiparty: bool = False) -> None:
        """Check structural invariants; raise :class:`GraphError` on failure.

        * the graph is bipartite by construction, but every trusted component
          must mediate at least two parties, and exactly two unless
          *allow_multiparty* (multi-party trusted agents are the paper's §9
          future work, supported here as an extension);
        * every principal has at least one edge;
        * the two sides of a pairwise exchange must provide distinct items.
        """
        incident: dict[Party, list[InteractionEdge]] = {p: [] for p in self.parties}
        for e in self._edges:
            incident[e.principal].append(e)
            incident[e.trusted].append(e)
        for t in self.trusted_components:
            degree = len(incident[t])
            if degree < 2:
                raise GraphError(
                    f"trusted component {t.name!r} has degree {degree}; it must "
                    "mediate an exchange between at least two principals"
                )
            if degree > 2 and not allow_multiparty:
                raise GraphError(
                    f"trusted component {t.name!r} mediates {degree} parties; pass "
                    "allow_multiparty=True to permit this §9 extension"
                )
            if degree == 2:
                left, right = incident[t]
                if left.provides == right.provides:
                    raise GraphError(
                        f"both sides of the exchange at {t.name!r} provide "
                        f"{left.provides!s}; an exchange must swap distinct items"
                    )
        for p in self.principals:
            if not incident[p]:
                raise GraphError(f"principal {p.name!r} participates in no exchange")

    # ------------------------------------------------------------------ misc

    def copy(self) -> "InteractionGraph":
        """A structural copy sharing the (immutable) parties and edges."""
        clone = InteractionGraph()
        clone._principals = dict(self._principals)
        clone._trusted = dict(self._trusted)
        clone._edges = list(self._edges)
        clone._priority = set(self._priority)
        clone._multi_entitlements = {
            t: dict(m) for t, m in self._multi_entitlements.items()
        }
        clone._deadlines = dict(self._deadlines)
        return clone

    def __str__(self) -> str:
        lines = [
            f"InteractionGraph(principals={[p.name for p in self.principals]}, "
            f"trusted={[t.name for t in self.trusted_components]})"
        ]
        for edge in self._edges:
            marker = " [priority]" if edge in self._priority else ""
            lines.append(
                f"  {edge.principal.name} --({edge.provides})--> {edge.trusted.name}{marker}"
            )
        return "\n".join(lines)


def build_interaction_graph(
    principals: Iterable[Party],
    trusted: Iterable[Party],
    exchanges: Iterable[tuple[Party, Item, Party, Item, Party]],
) -> InteractionGraph:
    """Convenience constructor from a list of mediated exchanges.

    Each exchange is ``(left, left_provides, right, right_provides, via)``.
    """
    graph = InteractionGraph()
    for p in principals:
        graph.add_principal(p)
    for t in trusted:
        graph.add_trusted(t)
    for left, left_item, right, right_item, via in exchanges:
        graph.add_exchange(left, left_item, right, right_item, via)
    return graph
