"""The top-level handle for one distributed commerce transaction.

:class:`ExchangeProblem` bundles an interaction graph (§3) with a direct-trust
relation (§4.2.3) and offers the full pipeline as methods: derive the
sequencing graph, reduce it, test feasibility, and recover the execution
sequence.  It is the object the spec-language compiler produces and the
object every example and benchmark starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.execution import ExecutionSequence, recover_execution
from repro.core.feasibility import FeasibilityVerdict, check_feasibility
from repro.core.interaction import InteractionGraph
from repro.core.reduction import ReductionTrace, reduce_graph
from repro.core.sequencing import SequencingGraph
from repro.core.trust import TrustRelation


@dataclass
class ExchangeProblem:
    """An exchange specification ready for analysis.

    ``name`` identifies the problem in reports; ``interaction`` carries the
    parties, mediated exchanges, and priority (resale) markings; ``trust``
    carries direct principal-to-principal trust.
    """

    name: str
    interaction: InteractionGraph
    trust: TrustRelation = field(default_factory=TrustRelation)

    def validate(self, allow_multiparty: bool = False) -> "ExchangeProblem":
        """Validate the interaction graph; returns self for chaining."""
        self.interaction.validate(allow_multiparty=allow_multiparty)
        return self

    def sequencing_graph(self) -> SequencingGraph:
        """Mechanically derive the sequencing graph (§4.1)."""
        return SequencingGraph.from_interaction(self.interaction, self.trust)

    def reduce(
        self, strategy: str = "fifo", enable_persona_clause: bool = True
    ) -> ReductionTrace:
        """Reduce the sequencing graph greedily (§4.2)."""
        return reduce_graph(
            self.sequencing_graph(),
            strategy=strategy,
            enable_persona_clause=enable_persona_clause,
        )

    def feasibility(
        self, strategy: str = "fifo", enable_persona_clause: bool = True
    ) -> FeasibilityVerdict:
        """The §4.2.4 feasibility verdict (optionally with §4.2.3 ablated)."""
        return check_feasibility(
            self.interaction,
            self.trust,
            strategy=strategy,
            enable_persona_clause=enable_persona_clause,
        )

    def execution_sequence(self, strategy: str = "fifo") -> ExecutionSequence:
        """The §5 execution sequence (raises if not shown feasible)."""
        return recover_execution(self.reduce(strategy=strategy))

    def with_trust(self, truster_name: str, trustee_name: str) -> "ExchangeProblem":
        """A copy with one extra direct-trust edge (for §4.2.3 variants)."""
        by_name = {p.name: p for p in self.interaction.parties}
        new_trust = self.trust.copy()
        new_trust.add(by_name[truster_name], by_name[trustee_name])
        return ExchangeProblem(
            name=f"{self.name}+trust({truster_name}->{trustee_name})",
            interaction=self.interaction,
            trust=new_trust,
        )

    def copy(self) -> "ExchangeProblem":
        """A deep-enough copy: shared immutable edges, fresh mutable state."""
        return ExchangeProblem(
            name=self.name,
            interaction=self.interaction.copy(),
            trust=self.trust.copy(),
        )
