"""Actions of the exchange formalism (paper §2.2, §2.5).

Only actions that *transfer* something between parties are modeled, plus the
``notify`` action available to trusted components:

* ``give_{a->b}(d)`` — *a* gives *b* item *d* (:func:`give`).
* ``pay_{b->a}(m)`` — *b* pays *a* amount *m*; a special case of give
  (:func:`pay`).
* ``give⁻¹`` / ``pay⁻¹`` — the mathematical inverse, compensating the original
  transfer (the recipient returns the item to the sender; :meth:`Action.inverse`).
* ``notify(x)`` — a trusted component informs principal *x* that all other
  parts of the exchange are in place (:func:`notify`).

Actions are frozen value objects so they can populate the unordered *state
sets* of §2.3.  The paper attaches deadlines to transfers toward trusted
components (§2.2); :class:`Action` carries an optional ``deadline`` which the
formal machinery ignores (the paper assumes generous deadlines) but the
simulator enforces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.core.items import Item, Money
from repro.core.parties import Party
from repro.errors import ModelError


class ActionKind(enum.Enum):
    """Discriminates the three action schemas of §2.2/§2.5."""

    GIVE = "give"
    PAY = "pay"
    NOTIFY = "notify"


@dataclass(frozen=True, order=True)
class Action:
    """One action instance: a transfer, its inverse, or a notification.

    ``inverted`` marks the compensation action (``give⁻¹``/``pay⁻¹``): the
    *same* sender/recipient/item as the original, flagged as reversed, exactly
    as the paper writes ``give⁻¹_{a->b}(d)`` for the return of *d* from *b*
    to *a*.

    For ``NOTIFY``, ``sender`` is the trusted component and ``recipient`` the
    notified principal; ``item`` is ``None``.
    """

    kind: ActionKind
    sender: Party
    recipient: Party
    item: Item | None = None
    inverted: bool = False
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.kind is ActionKind.NOTIFY:
            if self.item is not None:
                raise ModelError("notify actions carry no item")
            if self.inverted:
                raise ModelError("notify actions cannot be inverted")
            if not self.sender.is_trusted:
                raise ModelError(
                    f"only trusted components may notify; {self.sender.name} is a principal"
                )
        else:
            if self.item is None:
                raise ModelError(f"{self.kind.value} actions require an item")
            if self.kind is ActionKind.PAY and not isinstance(self.item, Money):
                raise ModelError("pay actions must transfer Money")
            if self.kind is ActionKind.GIVE and isinstance(self.item, Money):
                raise ModelError("money transfers must use pay, not give")
        if self.sender == self.recipient:
            raise ModelError(f"{self.sender.name} cannot perform an action on itself")
        if self.deadline is not None and self.deadline < 0:
            raise ModelError("deadlines must be non-negative")

    @property
    def is_transfer(self) -> bool:
        """True for give/pay (and their inverses), False for notify."""
        return self.kind is not ActionKind.NOTIFY

    def inverse(self) -> "Action":
        """The compensating action (``give⁻¹``/``pay⁻¹``) for this transfer.

        Inverting twice restores the original action, matching the paper's
        treatment of the inverse as a mathematical involution.
        """
        if self.kind is ActionKind.NOTIFY:
            raise ModelError("notify actions have no inverse")
        return replace(self, inverted=not self.inverted, deadline=None)

    def compensates(self, other: "Action") -> bool:
        """Whether this action is exactly the inverse of *other*."""
        if not other.is_transfer or not self.is_transfer:
            return False
        return self.inverse() == replace(other, deadline=None) or (
            replace(self, deadline=None) == other.inverse()
        )

    @property
    def effective_sender(self) -> Party:
        """Who physically relinquishes the item (the recipient, if inverted)."""
        return self.recipient if self.inverted else self.sender

    @property
    def effective_recipient(self) -> Party:
        """Who physically obtains the item (the sender, if inverted)."""
        return self.sender if self.inverted else self.recipient

    def __str__(self) -> str:
        if self.kind is ActionKind.NOTIFY:
            return f"notify[{self.sender}]({self.recipient})"
        sup = "^-1" if self.inverted else ""
        return f"{self.kind.value}{sup}[{self.sender}->{self.recipient}]({self.item})"


def give(sender: Party, recipient: Party, item: Item, deadline: float | None = None) -> Action:
    """``give_{sender->recipient}(item)`` — transfer a good (§2.2)."""
    return Action(ActionKind.GIVE, sender, recipient, item, deadline=deadline)


def pay(sender: Party, recipient: Party, amount: Money, deadline: float | None = None) -> Action:
    """``pay_{sender->recipient}(amount)`` — transfer money (§2.2)."""
    return Action(ActionKind.PAY, sender, recipient, amount, deadline=deadline)


def transfer(sender: Party, recipient: Party, item: Item, deadline: float | None = None) -> Action:
    """Create a give or pay depending on whether *item* is money."""
    if isinstance(item, Money):
        return pay(sender, recipient, item, deadline=deadline)
    return give(sender, recipient, item, deadline=deadline)


def notify(trusted_component: Party, principal: Party) -> Action:
    """``notify(principal)`` issued by *trusted_component* (§2.5)."""
    return Action(ActionKind.NOTIFY, trusted_component, principal)
