"""Trust relations between parties (paper §1, §2.5, §4.2.3).

Trust is a *directed*, not necessarily symmetric, relation: "one party can
trust another without being trusted by it, and the asymmetry can directly
affect the ultimate feasibility of transactions" (§4.2.3).  Two forms matter
here:

* **Trust in an intermediary** — implicit in the interaction graph: an edge
  ``(p, t)`` exists only if principal *p* trusts component *t*.
* **Direct trust between principals** — recorded in :class:`TrustRelation`.
  When principal *q* directly trusts principal *p*, *p* may "play the role"
  of the trusted agent in their exchange (a *persona*, §3/§4.2.3), which
  waives the red-edge pre-emption in Reduction Rule #1 clause 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.parties import Party
from repro.errors import ModelError


@dataclass
class TrustRelation:
    """A mutable set of directed ``truster -> trustee`` trust edges.

    >>> from repro.core.parties import broker, producer
    >>> b, p = broker("b1"), producer("s1")
    >>> rel = TrustRelation()
    >>> rel.add(p, b)      # source s1 trusts broker b1 ...
    >>> rel.trusts(p, b)
    True
    >>> rel.trusts(b, p)   # ... but not conversely (asymmetry, §4.2.3)
    False
    """

    _edges: set[tuple[Party, Party]] = field(default_factory=set)

    @classmethod
    def of(cls, pairs: Iterable[tuple[Party, Party]]) -> "TrustRelation":
        """Build a relation from ``(truster, trustee)`` pairs."""
        relation = cls()
        for truster, trustee in pairs:
            relation.add(truster, trustee)
        return relation

    def add(self, truster: Party, trustee: Party) -> None:
        """Record that *truster* directly trusts *trustee*."""
        if truster == trustee:
            raise ModelError(f"{truster.name} trusting itself is vacuous and not recorded")
        self._edges.add((truster, trustee))

    def add_mutual(self, a: Party, b: Party) -> None:
        """Record symmetric trust between *a* and *b*."""
        self.add(a, b)
        self.add(b, a)

    def remove(self, truster: Party, trustee: Party) -> None:
        """Delete a trust edge; missing edges are ignored."""
        self._edges.discard((truster, trustee))

    def trusts(self, truster: Party, trustee: Party) -> bool:
        """Whether *truster* directly trusts *trustee*."""
        return (truster, trustee) in self._edges

    def trustees_of(self, truster: Party) -> frozenset[Party]:
        """Every party directly trusted by *truster*."""
        return frozenset(b for a, b in self._edges if a == truster)

    def trusters_of(self, trustee: Party) -> frozenset[Party]:
        """Every party that directly trusts *trustee*."""
        return frozenset(a for a, b in self._edges if b == trustee)

    def copy(self) -> "TrustRelation":
        """An independent copy of this relation."""
        return TrustRelation(set(self._edges))

    def __iter__(self) -> Iterator[tuple[Party, Party]]:
        return iter(sorted(self._edges))

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, pair: tuple[Party, Party]) -> bool:
        return pair in self._edges
