"""Sequencing-graph reduction (paper §4.2).

Two reduction rules remove edges from a sequencing graph:

* **Rule #1** (commitment fringe): an edge ``(c, j)`` may be removed when
  commitment *c* has no other remaining edge AND either (clause 1) no *other*
  red edge remains at *j*, or (clause 2) the trusted-agent role of *c* is
  played by *c*'s own principal (a persona, §4.2.3).  The candidate edge
  itself never pre-empts its own removal — this is required to reproduce the
  paper's Example #1, where the red edge at ∧B is removed by Rule #1 once it
  is the only red edge left there.
* **Rule #2** (conjunction fringe): an edge ``(c, j)`` may be removed when
  conjunction *j* has no other remaining edge.

Reductions "may be done in a greedy fashion — any applicable reduction may be
applied at any time, in any order" and the feasibility verdict is
order-independent (§4.2.4); the property-based tests exercise exactly this
confluence claim.  The engine therefore supports both automatic strategies
(``fifo``, ``lifo``, ``random``) and scripted step-by-step replay (used by the
benchmarks to replay the paper's circled elimination orders).

A reduced graph is **feasible** iff no edges remain (§4.2.4).  When edges do
remain the trace carries a :class:`Blockage` diagnosis: which fringe
commitments are pre-empted by which red edges — the raw material for the
indemnity planner (§6).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    SGEdge,
    SequencingGraph,
)
from repro.errors import ReductionError


class Rule(enum.IntEnum):
    """The paper's two reduction rules (§4.2.1)."""

    COMMITMENT_FRINGE = 1
    CONJUNCTION_FRINGE = 2


@dataclass(frozen=True)
class ReductionStep:
    """One edge removal: which rule, which edge, and what it disconnected.

    ``via_persona`` is True when Rule #1 fired through clause 2 (direct
    trust).  ``commitment_disconnected``/``conjunction_disconnected`` are set
    when this removal left that node with no remaining edges — the events
    that drive execution-sequence recovery (§5).
    """

    index: int
    rule: Rule
    edge: SGEdge
    via_persona: bool = False
    commitment_disconnected: CommitmentNode | None = None
    conjunction_disconnected: ConjunctionNode | None = None

    def __str__(self) -> str:
        persona = " (persona)" if self.via_persona else ""
        return f"step {self.index}: Rule#{int(self.rule)}{persona} removes {self.edge}"


@dataclass(frozen=True)
class Blockage:
    """A fringe commitment edge that cannot be removed, and why (§4.2.4).

    ``blocking_red`` lists the red edges at the conjunction that pre-empt the
    blocked edge (Rule #1 clause 1 failure, with no persona to rescue it).
    """

    edge: SGEdge
    blocking_red: tuple[SGEdge, ...]

    def __str__(self) -> str:
        reds = ", ".join(str(e) for e in self.blocking_red)
        return f"{self.edge} blocked by red edge(s): {reds}"


@dataclass(frozen=True)
class ReductionTrace:
    """The complete record of one reduction run.

    * ``steps`` — the edge removals, in order;
    * ``remaining`` — edges left when no rule applied any more;
    * ``feasible`` — the §4.2.4 test: ``remaining`` is empty;
    * ``commitment_order`` — commitment nodes in disconnection order (the
      commit order of §5);
    * ``conjunction_order`` — conjunction nodes in disconnection order;
    * ``blockages`` — diagnosis of the impasse when infeasible.
    """

    graph: SequencingGraph
    steps: tuple[ReductionStep, ...]
    remaining: frozenset[SGEdge]
    commitment_order: tuple[CommitmentNode, ...]
    conjunction_order: tuple[ConjunctionNode, ...]
    blockages: tuple[Blockage, ...]

    @property
    def feasible(self) -> bool:
        """The objective feasibility test: all edges removed (§4.2.4)."""
        return not self.remaining

    def step_for_edge(self, edge: SGEdge) -> ReductionStep:
        """The step that removed *edge* (raises if it was never removed)."""
        for step in self.steps:
            if step.edge == edge:
                return step
        raise ReductionError(f"edge {edge} was not removed in this trace")

    def __str__(self) -> str:
        header = "feasible" if self.feasible else f"INFEASIBLE ({len(self.remaining)} edges remain)"
        lines = [f"ReductionTrace: {header}"]
        lines.extend(f"  {step}" for step in self.steps)
        if not self.feasible:
            lines.extend(f"  !! {blockage}" for blockage in self.blockages)
        return "\n".join(lines)


class ReductionEngine:
    """Mutable reduction state over an (immutable) sequencing graph.

    Use :meth:`applicable` to enumerate legal steps, :meth:`apply` /
    :meth:`apply_edge` to perform one, and :meth:`run` for an automatic
    greedy reduction.  :func:`reduce_graph` is the one-call convenience.
    """

    def __init__(self, graph: SequencingGraph, enable_persona_clause: bool = True) -> None:
        """``enable_persona_clause=False`` ablates Rule #1 clause 2 (the
        §4.2.3 direct-trust waiver); used by the ablation benchmarks to show
        the clause is exactly what makes the trust variants differ."""
        self.graph = graph
        self.enable_persona_clause = enable_persona_clause
        self.remaining: set[SGEdge] = set(graph.edges)
        self.steps: list[ReductionStep] = []
        self._commitment_order: list[CommitmentNode] = []
        self._conjunction_order: list[ConjunctionNode] = []
        # Commitments/conjunctions that start with no edges are disconnected
        # from the outset (possible only in hand-built graphs).
        for commitment in graph.commitments:
            if not self._edges_of_commitment(commitment):
                self._commitment_order.append(commitment)
        for conjunction in graph.conjunctions:
            if not self._edges_of_conjunction(conjunction):
                self._conjunction_order.append(conjunction)

    # ----------------------------------------------------------- fringe tests

    def _edges_of_commitment(self, commitment: CommitmentNode) -> list[SGEdge]:
        return [e for e in self.remaining if e.commitment == commitment]

    def _edges_of_conjunction(self, conjunction: ConjunctionNode) -> list[SGEdge]:
        return [e for e in self.remaining if e.conjunction == conjunction]

    def is_commitment_fringe(self, commitment: CommitmentNode) -> bool:
        """Whether *commitment* has exactly one remaining edge."""
        return len(self._edges_of_commitment(commitment)) == 1

    def is_conjunction_fringe(self, conjunction: ConjunctionNode) -> bool:
        """Whether *conjunction* has exactly one remaining edge."""
        return len(self._edges_of_conjunction(conjunction)) == 1

    def blocking_red_edges(self, edge: SGEdge) -> tuple[SGEdge, ...]:
        """Remaining red edges at ``edge.conjunction`` from *other* commitments."""
        return tuple(
            other
            for other in self._edges_of_conjunction(edge.conjunction)
            if other.is_red and other.commitment != edge.commitment
        )

    def rule1_applicable(self, edge: SGEdge) -> tuple[bool, bool]:
        """Whether Rule #1 may remove *edge*; returns ``(ok, via_persona)``.

        Clause 1: no other red edge remains at the conjunction.  Clause 2:
        the commitment is a persona (its principal plays the trusted-agent
        role), which waives pre-emption entirely (§4.2.3).
        """
        if edge not in self.remaining:
            return False, False
        if not self.is_commitment_fringe(edge.commitment):
            return False, False
        if self.enable_persona_clause and edge.commitment in self.graph.personas:
            # Clause 2 applies; report persona only when clause 1 would fail,
            # so traces show where direct trust actually mattered.
            pre_empted = bool(self.blocking_red_edges(edge))
            return True, pre_empted
        if self.blocking_red_edges(edge):
            return False, False
        return True, False

    def rule2_applicable(self, edge: SGEdge) -> bool:
        """Whether Rule #2 may remove *edge* (its conjunction is fringe)."""
        return edge in self.remaining and self.is_conjunction_fringe(edge.conjunction)

    def applicable(self) -> list[tuple[Rule, SGEdge, bool]]:
        """Every currently legal step as ``(rule, edge, via_persona)``.

        The list is deterministic: edges in original graph order, Rule #1
        before Rule #2 for the same edge.
        """
        result: list[tuple[Rule, SGEdge, bool]] = []
        for edge in self.graph.edges:
            if edge not in self.remaining:
                continue
            ok, via_persona = self.rule1_applicable(edge)
            if ok:
                result.append((Rule.COMMITMENT_FRINGE, edge, via_persona))
            if self.rule2_applicable(edge):
                result.append((Rule.CONJUNCTION_FRINGE, edge, False))
        return result

    # ----------------------------------------------------------------- apply

    def apply(self, rule: Rule, edge: SGEdge) -> ReductionStep:
        """Apply *rule* to *edge*; raise :class:`ReductionError` if illegal."""
        if edge not in self.remaining:
            raise ReductionError(f"edge already removed or unknown: {edge}")
        via_persona = False
        if rule is Rule.COMMITMENT_FRINGE:
            ok, via_persona = self.rule1_applicable(edge)
            if not ok:
                if not self.is_commitment_fringe(edge.commitment):
                    raise ReductionError(
                        f"Rule #1 inapplicable: {edge.commitment.label} is not a fringe node"
                    )
                reds = self.blocking_red_edges(edge)
                raise ReductionError(
                    f"Rule #1 inapplicable: {edge} is pre-empted by red edge(s) "
                    f"{[str(r) for r in reds]} and the commitment is not a persona"
                )
        elif rule is Rule.CONJUNCTION_FRINGE:
            if not self.rule2_applicable(edge):
                raise ReductionError(
                    f"Rule #2 inapplicable: {edge.conjunction.label} is not a fringe node"
                )
        else:  # pragma: no cover - enum exhausted
            raise ReductionError(f"unknown rule {rule!r}")

        self.remaining.discard(edge)
        commitment_done = None
        conjunction_done = None
        if not self._edges_of_commitment(edge.commitment):
            commitment_done = edge.commitment
            self._commitment_order.append(edge.commitment)
        if not self._edges_of_conjunction(edge.conjunction):
            conjunction_done = edge.conjunction
            self._conjunction_order.append(edge.conjunction)
        step = ReductionStep(
            index=len(self.steps) + 1,
            rule=rule,
            edge=edge,
            via_persona=via_persona,
            commitment_disconnected=commitment_done,
            conjunction_disconnected=conjunction_done,
        )
        self.steps.append(step)
        return step

    def apply_edge(self, edge: SGEdge) -> ReductionStep:
        """Remove *edge* by whichever rule applies (Rule #1 preferred)."""
        ok, _ = self.rule1_applicable(edge)
        if ok:
            return self.apply(Rule.COMMITMENT_FRINGE, edge)
        if self.rule2_applicable(edge):
            return self.apply(Rule.CONJUNCTION_FRINGE, edge)
        raise ReductionError(f"no reduction rule applies to {edge}")

    # -------------------------------------------------------------------- run

    def run(
        self,
        strategy: str = "fifo",
        rng: random.Random | None = None,
        chooser: Callable[[list[tuple[Rule, SGEdge, bool]]], tuple[Rule, SGEdge, bool]]
        | None = None,
    ) -> ReductionTrace:
        """Greedily reduce until no rule applies; return the trace.

        ``strategy`` selects among applicable steps: ``"fifo"`` (first in
        deterministic order), ``"lifo"`` (last), or ``"random"`` (requires
        *rng* for reproducibility).  A custom *chooser* overrides strategy.
        """
        if strategy == "random" and rng is None and chooser is None:
            rng = random.Random(0)
        while True:
            options = self.applicable()
            if not options:
                break
            if chooser is not None:
                choice = chooser(options)
                if choice not in options:
                    raise ReductionError("chooser returned an inapplicable step")
            elif strategy == "fifo":
                choice = options[0]
            elif strategy == "lifo":
                choice = options[-1]
            elif strategy == "random":
                assert rng is not None
                choice = rng.choice(options)
            else:
                raise ReductionError(f"unknown reduction strategy {strategy!r}")
            rule, edge, _ = choice
            self.apply(rule, edge)
        return self.trace()

    def trace(self) -> ReductionTrace:
        """Snapshot the current state as a :class:`ReductionTrace`."""
        return ReductionTrace(
            graph=self.graph,
            steps=tuple(self.steps),
            remaining=frozenset(self.remaining),
            commitment_order=tuple(self._commitment_order),
            conjunction_order=tuple(self._conjunction_order),
            blockages=tuple(self._diagnose()),
        )

    def _diagnose(self) -> list[Blockage]:
        """Explain the impasse: fringe commitment edges pre-empted by reds."""
        blockages: list[Blockage] = []
        for edge in sorted(self.remaining):
            if not self.is_commitment_fringe(edge.commitment):
                continue
            reds = self.blocking_red_edges(edge)
            persona_waived = (
                self.enable_persona_clause and edge.commitment in self.graph.personas
            )
            if reds and not persona_waived:
                blockages.append(Blockage(edge=edge, blocking_red=reds))
        return blockages


def reduce_graph(
    graph: SequencingGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
) -> ReductionTrace:
    """Reduce *graph* greedily and return the trace (one-call convenience)."""
    return ReductionEngine(graph).run(strategy=strategy, rng=rng)


def replay(graph: SequencingGraph, script: Iterable[tuple[Rule, SGEdge]]) -> ReductionTrace:
    """Replay an explicit sequence of ``(rule, edge)`` steps.

    Used by the figure benchmarks to replay the paper's circled elimination
    orders and assert each step is legal.  The replayed steps need not
    exhaust the graph; the returned trace reflects whatever remains.
    """
    engine = ReductionEngine(graph)
    for rule, edge in script:
        engine.apply(rule, edge)
    return engine.trace()
