"""Sequencing-graph reduction (paper §4.2).

Two reduction rules remove edges from a sequencing graph:

* **Rule #1** (commitment fringe): an edge ``(c, j)`` may be removed when
  commitment *c* has no other remaining edge AND either (clause 1) no *other*
  red edge remains at *j*, or (clause 2) the trusted-agent role of *c* is
  played by *c*'s own principal (a persona, §4.2.3).  The candidate edge
  itself never pre-empts its own removal — this is required to reproduce the
  paper's Example #1, where the red edge at ∧B is removed by Rule #1 once it
  is the only red edge left there.
* **Rule #2** (conjunction fringe): an edge ``(c, j)`` may be removed when
  conjunction *j* has no other remaining edge.

Reductions "may be done in a greedy fashion — any applicable reduction may be
applied at any time, in any order" and the feasibility verdict is
order-independent (§4.2.4); the property-based tests exercise exactly this
confluence claim.  The engine therefore supports both automatic strategies
(``fifo``, ``lifo``, ``random``) and scripted step-by-step replay (used by the
benchmarks to replay the paper's circled elimination orders).

A reduced graph is **feasible** iff no edges remain (§4.2.4).  When edges do
remain the trace carries a :class:`Blockage` diagnosis: which fringe
commitments are pre-empted by which red edges — the raw material for the
indemnity planner (§6).

Performance
-----------

The engine is the hot path of every feasibility verdict, confluence property
test, indemnity plan, and Monte-Carlo study, so it maintains **incremental
adjacency indices** over the remaining-edge set instead of rescanning it:

* per-commitment and per-conjunction remaining-edge counts (fringe tests are
  O(1));
* a per-conjunction red-edge counter plus per-``(conjunction, commitment)``
  red counts, making ``blocking_red_edges`` cardinality and Rule #1 clause-1
  checks O(1);
* a **dirty-candidate worklist**: after each :meth:`apply` only the edges
  incident to the removed edge's commitment and conjunction are re-checked
  for rule eligibility — no other edge's eligibility can have changed —
  and the currently-applicable set is kept in lazily-invalidated min/max
  heaps for the deterministic strategies.

A full :meth:`run` is therefore O(E · (max-degree + log E)) instead of the
naive O(E³), while reproducing the naive engine's behavior *step for step*
(``fifo``/``lifo``/``random`` orderings, the persona clause, scripted
:func:`replay`, and :class:`Blockage` diagnosis).  The original
rescan-everything engine is retained verbatim in
:mod:`repro.core.reduction_reference` as the equivalence oracle for the
property suite, and ``benchmarks/test_bench_scaling.py`` measures the gap.
"""

from __future__ import annotations

import enum
import heapq
import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    SGEdge,
    SequencingGraph,
)
from repro.errors import ReductionError
from repro.obs.runtime import active as _active_tracer


class Rule(enum.IntEnum):
    """The paper's two reduction rules (§4.2.1)."""

    COMMITMENT_FRINGE = 1
    CONJUNCTION_FRINGE = 2


@dataclass(frozen=True, slots=True)
class ReductionStep:
    """One edge removal: which rule, which edge, and what it disconnected.

    ``via_persona`` is True when Rule #1 fired through clause 2 (direct
    trust).  ``commitment_disconnected``/``conjunction_disconnected`` are set
    when this removal left that node with no remaining edges — the events
    that drive execution-sequence recovery (§5).
    """

    index: int
    rule: Rule
    edge: SGEdge
    via_persona: bool = False
    commitment_disconnected: CommitmentNode | None = None
    conjunction_disconnected: ConjunctionNode | None = None

    def __str__(self) -> str:
        persona = " (persona)" if self.via_persona else ""
        return f"step {self.index}: Rule#{int(self.rule)}{persona} removes {self.edge}"


@dataclass(frozen=True, slots=True)
class Blockage:
    """A fringe commitment edge that cannot be removed, and why (§4.2.4).

    ``blocking_red`` lists the red edges at the conjunction that pre-empt the
    blocked edge (Rule #1 clause 1 failure, with no persona to rescue it),
    in original graph-edge order.
    """

    edge: SGEdge
    blocking_red: tuple[SGEdge, ...]

    def __str__(self) -> str:
        reds = ", ".join(str(e) for e in self.blocking_red)
        return f"{self.edge} blocked by red edge(s): {reds}"


@dataclass(frozen=True)
class ReductionTrace:
    """The complete record of one reduction run.

    * ``steps`` — the edge removals, in order;
    * ``remaining`` — edges left when no rule applied any more;
    * ``feasible`` — the §4.2.4 test: ``remaining`` is empty;
    * ``commitment_order`` — commitment nodes in disconnection order (the
      commit order of §5);
    * ``conjunction_order`` — conjunction nodes in disconnection order;
    * ``blockages`` — diagnosis of the impasse when infeasible.
    """

    graph: SequencingGraph
    steps: tuple[ReductionStep, ...]
    remaining: frozenset[SGEdge]
    commitment_order: tuple[CommitmentNode, ...]
    conjunction_order: tuple[ConjunctionNode, ...]
    blockages: tuple[Blockage, ...]

    @property
    def feasible(self) -> bool:
        """The objective feasibility test: all edges removed (§4.2.4)."""
        return not self.remaining

    def step_for_edge(self, edge: SGEdge) -> ReductionStep:
        """The step that removed *edge* (raises if it was never removed).

        Backed by a lazily built edge→step mapping, so repeated lookups
        (execution recovery walks every edge) are O(1) instead of a linear
        scan per call.
        """
        try:
            mapping = object.__getattribute__(self, "_step_by_edge")
        except AttributeError:
            mapping = {step.edge: step for step in self.steps}
            object.__setattr__(self, "_step_by_edge", mapping)
        step = mapping.get(edge)
        if step is None:
            raise ReductionError(f"edge {edge} was not removed in this trace")
        return step

    def __str__(self) -> str:
        header = "feasible" if self.feasible else f"INFEASIBLE ({len(self.remaining)} edges remain)"
        lines = [f"ReductionTrace: {header}"]
        lines.extend(f"  {step}" for step in self.steps)
        if not self.feasible:
            lines.extend(f"  !! {blockage}" for blockage in self.blockages)
        return "\n".join(lines)


class ReductionEngine:
    """Mutable reduction state over an (immutable) sequencing graph.

    Use :meth:`applicable` to enumerate legal steps, :meth:`apply` /
    :meth:`apply_edge` to perform one, and :meth:`run` for an automatic
    greedy reduction.  :func:`reduce_graph` is the one-call convenience.

    Internally the engine indexes edges by their position in
    ``graph.edges`` (the deterministic order all strategies are defined
    over) and keeps every fringe/pre-emption test O(1); see the module
    docstring for the data structures.
    """

    def __init__(self, graph: SequencingGraph, enable_persona_clause: bool = True) -> None:
        """``enable_persona_clause=False`` ablates Rule #1 clause 2 (the
        §4.2.3 direct-trust waiver); used by the ablation benchmarks to show
        the clause is exactly what makes the trust variants differ."""
        self.graph = graph
        self.enable_persona_clause = enable_persona_clause
        # Captured once: the per-firing observability cost is a single
        # ``is not None`` test when tracing is off (the common case).
        self._obs = _active_tracer()
        edges = graph.edges
        self.remaining: set[SGEdge] = set(edges)
        self.steps: list[ReductionStep] = []
        self._commitment_order: list[CommitmentNode] = []
        self._conjunction_order: list[ConjunctionNode] = []

        # ---- static indices (edge identity -> position, node -> incident edges)
        self._edges = edges
        self._index_of: dict[SGEdge, int] = {e: i for i, e in enumerate(edges)}
        self._alive: list[bool] = [True] * len(edges)
        self._commitment_edges: dict[CommitmentNode, list[int]] = {
            c: [] for c in graph.commitments
        }
        self._conjunction_edges: dict[ConjunctionNode, list[int]] = {
            j: [] for j in graph.conjunctions
        }
        for i, e in enumerate(edges):
            self._commitment_edges[e.commitment].append(i)
            self._conjunction_edges[e.conjunction].append(i)

        # ---- incremental counters over the remaining-edge set
        self._commitment_count: dict[CommitmentNode, int] = {
            c: len(ids) for c, ids in self._commitment_edges.items()
        }
        self._conjunction_count: dict[ConjunctionNode, int] = {
            j: len(ids) for j, ids in self._conjunction_edges.items()
        }
        self._red_count: dict[ConjunctionNode, int] = {j: 0 for j in graph.conjunctions}
        self._pair_red: dict[tuple[ConjunctionNode, CommitmentNode], int] = {}
        for e in edges:
            if e.is_red:
                self._red_count[e.conjunction] += 1
                key = (e.conjunction, e.commitment)
                self._pair_red[key] = self._pair_red.get(key, 0) + 1

        # ---- dirty-candidate worklist state: edge index -> (rule1, persona, rule2)
        self._cand: dict[int, tuple[bool, bool, bool]] = {}
        self._heap_min: list[int] = []  # lazily-invalidated candidate heaps
        self._heap_max: list[int] = []
        for i in range(len(edges)):
            self._recheck(i)

        # Commitments/conjunctions that start with no edges are disconnected
        # from the outset (possible only in hand-built graphs).
        for commitment in graph.commitments:
            if self._commitment_count[commitment] == 0:
                self._commitment_order.append(commitment)
        for conjunction in graph.conjunctions:
            if self._conjunction_count[conjunction] == 0:
                self._conjunction_order.append(conjunction)

    # ----------------------------------------------------------- fringe tests

    def _edges_of_commitment(self, commitment: CommitmentNode) -> list[SGEdge]:
        """Remaining edges at *commitment*, in graph-edge order."""
        return [
            self._edges[i]
            for i in self._commitment_edges.get(commitment, ())
            if self._alive[i]
        ]

    def _edges_of_conjunction(self, conjunction: ConjunctionNode) -> list[SGEdge]:
        """Remaining edges at *conjunction*, in graph-edge order."""
        return [
            self._edges[i]
            for i in self._conjunction_edges.get(conjunction, ())
            if self._alive[i]
        ]

    def is_commitment_fringe(self, commitment: CommitmentNode) -> bool:
        """Whether *commitment* has exactly one remaining edge."""
        return self._commitment_count.get(commitment, 0) == 1

    def is_conjunction_fringe(self, conjunction: ConjunctionNode) -> bool:
        """Whether *conjunction* has exactly one remaining edge."""
        return self._conjunction_count.get(conjunction, 0) == 1

    def _blocking_red_count(self, edge: SGEdge) -> int:
        """O(1) cardinality of :meth:`blocking_red_edges`."""
        own = self._pair_red.get((edge.conjunction, edge.commitment), 0)
        return self._red_count.get(edge.conjunction, 0) - own

    def blocking_red_edges(self, edge: SGEdge) -> tuple[SGEdge, ...]:
        """Remaining red edges at ``edge.conjunction`` from *other* commitments."""
        if self._blocking_red_count(edge) == 0:
            return ()
        return tuple(
            other
            for other in self._edges_of_conjunction(edge.conjunction)
            if other.is_red and other.commitment != edge.commitment
        )

    def rule1_applicable(self, edge: SGEdge) -> tuple[bool, bool]:
        """Whether Rule #1 may remove *edge*; returns ``(ok, via_persona)``.

        Clause 1: no other red edge remains at the conjunction.  Clause 2:
        the commitment is a persona (its principal plays the trusted-agent
        role), which waives pre-emption entirely (§4.2.3).
        """
        if edge not in self.remaining:
            return False, False
        if not self.is_commitment_fringe(edge.commitment):
            return False, False
        if self.enable_persona_clause and edge.commitment in self.graph.personas:
            # Clause 2 applies; report persona only when clause 1 would fail,
            # so traces show where direct trust actually mattered.
            return True, self._blocking_red_count(edge) > 0
        if self._blocking_red_count(edge) > 0:
            return False, False
        return True, False

    def rule2_applicable(self, edge: SGEdge) -> bool:
        """Whether Rule #2 may remove *edge* (its conjunction is fringe)."""
        return edge in self.remaining and self.is_conjunction_fringe(edge.conjunction)

    def applicable(self) -> list[tuple[Rule, SGEdge, bool]]:
        """Every currently legal step as ``(rule, edge, via_persona)``.

        The list is deterministic: edges in original graph order, Rule #1
        before Rule #2 for the same edge.
        """
        result: list[tuple[Rule, SGEdge, bool]] = []
        for index in sorted(self._cand):
            rule1, via_persona, rule2 = self._cand[index]
            edge = self._edges[index]
            if rule1:
                result.append((Rule.COMMITMENT_FRINGE, edge, via_persona))
            if rule2:
                result.append((Rule.CONJUNCTION_FRINGE, edge, False))
        return result

    # ------------------------------------------------------------- worklist

    def _recheck(self, index: int) -> None:
        """Re-derive rule eligibility for one (dirty) edge — O(1)."""
        if not self._alive[index]:
            self._cand.pop(index, None)
            return
        edge = self._edges[index]
        rule1 = False
        via_persona = False
        if self._commitment_count[edge.commitment] == 1:
            blocked = self._blocking_red_count(edge) > 0
            if self.enable_persona_clause and edge.commitment in self.graph.personas:
                rule1, via_persona = True, blocked
            else:
                rule1 = not blocked
        rule2 = self._conjunction_count[edge.conjunction] == 1
        if rule1 or rule2:
            if index not in self._cand:
                heapq.heappush(self._heap_min, index)
                heapq.heappush(self._heap_max, -index)
            self._cand[index] = (rule1, via_persona, rule2)
        else:
            self._cand.pop(index, None)

    def _peek_candidate(self, lifo: bool) -> int | None:
        """Lowest (fifo) or highest (lifo) candidate edge index, or None."""
        heap = self._heap_max if lifo else self._heap_min
        while heap:
            index = -heap[0] if lifo else heap[0]
            if index in self._cand:
                return index
            heapq.heappop(heap)
        return None

    # ----------------------------------------------------------------- apply

    def apply(self, rule: Rule, edge: SGEdge) -> ReductionStep:
        """Apply *rule* to *edge*; raise :class:`ReductionError` if illegal."""
        if edge not in self.remaining:
            raise ReductionError(f"edge already removed or unknown: {edge}")
        via_persona = False
        if rule is Rule.COMMITMENT_FRINGE:
            ok, via_persona = self.rule1_applicable(edge)
            if not ok:
                if not self.is_commitment_fringe(edge.commitment):
                    raise ReductionError(
                        f"Rule #1 inapplicable: {edge.commitment.label} is not a fringe node"
                    )
                reds = self.blocking_red_edges(edge)
                raise ReductionError(
                    f"Rule #1 inapplicable: {edge} is pre-empted by red edge(s) "
                    f"{[str(r) for r in reds]} and the commitment is not a persona"
                )
        elif rule is Rule.CONJUNCTION_FRINGE:
            if not self.rule2_applicable(edge):
                raise ReductionError(
                    f"Rule #2 inapplicable: {edge.conjunction.label} is not a fringe node"
                )
        else:  # pragma: no cover - enum exhausted
            raise ReductionError(f"unknown rule {rule!r}")

        index = self._index_of[edge]
        commitment, conjunction = edge.commitment, edge.conjunction
        self.remaining.discard(edge)
        self._alive[index] = False
        self._cand.pop(index, None)
        self._commitment_count[commitment] -= 1
        self._conjunction_count[conjunction] -= 1
        if edge.is_red:
            self._red_count[conjunction] -= 1
            self._pair_red[(conjunction, commitment)] -= 1

        commitment_done = None
        conjunction_done = None
        if self._commitment_count[commitment] == 0:
            commitment_done = commitment
            self._commitment_order.append(commitment)
        if self._conjunction_count[conjunction] == 0:
            conjunction_done = conjunction
            self._conjunction_order.append(conjunction)

        # Only edges incident to the touched commitment/conjunction can have
        # changed eligibility (fringe counts, red pre-emption) — re-enqueue
        # exactly those for re-checking.
        for dirty in self._commitment_edges[commitment]:
            if self._alive[dirty]:
                self._recheck(dirty)
        for dirty in self._conjunction_edges[conjunction]:
            if self._alive[dirty]:
                self._recheck(dirty)

        step = ReductionStep(
            index=len(self.steps) + 1,
            rule=rule,
            edge=edge,
            via_persona=via_persona,
            commitment_disconnected=commitment_done,
            conjunction_disconnected=conjunction_done,
        )
        self.steps.append(step)
        if self._obs is not None:
            self._obs.rule_firing(
                f"rule{int(rule)}",
                edge=index,
                depth=len(self._cand),
                persona=via_persona,
            )
        return step

    def apply_edge(self, edge: SGEdge) -> ReductionStep:
        """Remove *edge* by whichever rule applies (Rule #1 preferred)."""
        ok, _ = self.rule1_applicable(edge)
        if ok:
            return self.apply(Rule.COMMITMENT_FRINGE, edge)
        if self.rule2_applicable(edge):
            return self.apply(Rule.CONJUNCTION_FRINGE, edge)
        raise ReductionError(f"no reduction rule applies to {edge}")

    # -------------------------------------------------------------------- run

    def run(
        self,
        strategy: str = "fifo",
        rng: random.Random | None = None,
        chooser: Callable[[list[tuple[Rule, SGEdge, bool]]], tuple[Rule, SGEdge, bool]]
        | None = None,
    ) -> ReductionTrace:
        """Greedily reduce until no rule applies; return the trace.

        ``strategy`` selects among applicable steps: ``"fifo"`` (first in
        deterministic order), ``"lifo"`` (last), or ``"random"`` (requires
        *rng* for reproducibility).  A custom *chooser* overrides strategy.

        ``fifo``/``lifo`` pick straight off the candidate heaps (no list
        materialization); ``random`` and *chooser* materialize the full
        :meth:`applicable` list each step because their choice is defined
        over it.
        """
        obs = self._obs
        if obs is None:
            return self._run(strategy, rng, chooser)
        with obs.span(
            "reduce.indexed", {"edges": len(self._edges), "strategy": strategy}
        ) as span_id:
            trace = self._run(strategy, rng, chooser)
            obs.set_attr(span_id, "feasible", trace.feasible)
            obs.set_attr(span_id, "survivors", len(trace.remaining))
        obs.metrics.histogram("reduction.survivors").observe(len(trace.remaining))
        obs.verdict(trace.feasible)
        return trace

    def _run(
        self,
        strategy: str,
        rng: random.Random | None,
        chooser: Callable[[list[tuple[Rule, SGEdge, bool]]], tuple[Rule, SGEdge, bool]]
        | None,
    ) -> ReductionTrace:
        if strategy == "random" and rng is None and chooser is None:
            rng = random.Random(0)
        if chooser is not None or strategy == "random":
            while True:
                options = self.applicable()
                if not options:
                    break
                if chooser is not None:
                    choice = chooser(options)
                    if choice not in options:
                        raise ReductionError("chooser returned an inapplicable step")
                else:
                    assert rng is not None
                    choice = rng.choice(options)
                rule, edge, _ = choice
                self.apply(rule, edge)
            return self.trace()
        if strategy not in ("fifo", "lifo"):
            # Match the reference engine: an unknown strategy only errors
            # when there is actually a step left to choose.
            if self._cand:
                raise ReductionError(f"unknown reduction strategy {strategy!r}")
            return self.trace()
        lifo = strategy == "lifo"
        while True:
            index = self._peek_candidate(lifo)
            if index is None:
                break
            rule1, _, rule2 = self._cand[index]
            # The options list holds Rule #1 before Rule #2 per edge, so the
            # first entry overall is the lowest index's Rule #1 (when legal)
            # and the last entry is the highest index's Rule #2 (when legal).
            if lifo:
                rule = Rule.CONJUNCTION_FRINGE if rule2 else Rule.COMMITMENT_FRINGE
            else:
                rule = Rule.COMMITMENT_FRINGE if rule1 else Rule.CONJUNCTION_FRINGE
            self.apply(rule, self._edges[index])
        return self.trace()

    def trace(self) -> ReductionTrace:
        """Snapshot the current state as a :class:`ReductionTrace`."""
        return ReductionTrace(
            graph=self.graph,
            steps=tuple(self.steps),
            remaining=frozenset(self.remaining),
            commitment_order=tuple(self._commitment_order),
            conjunction_order=tuple(self._conjunction_order),
            blockages=tuple(self._diagnose()),
        )

    def _diagnose(self) -> list[Blockage]:
        """Explain the impasse: fringe commitment edges pre-empted by reds."""
        blockages: list[Blockage] = []
        for edge in sorted(self.remaining):
            if not self.is_commitment_fringe(edge.commitment):
                continue
            reds = self.blocking_red_edges(edge)
            persona_waived = (
                self.enable_persona_clause and edge.commitment in self.graph.personas
            )
            if reds and not persona_waived:
                blockages.append(Blockage(edge=edge, blocking_red=reds))
        return blockages


def reduce_graph(
    graph: SequencingGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
    enable_persona_clause: bool = True,
) -> ReductionTrace:
    """Reduce *graph* greedily and return the trace (one-call convenience).

    ``enable_persona_clause=False`` ablates Rule #1 clause 2 (§4.2.3), same
    as constructing :class:`ReductionEngine` with that flag.
    """
    engine = ReductionEngine(graph, enable_persona_clause=enable_persona_clause)
    return engine.run(strategy=strategy, rng=rng)


def replay(graph: SequencingGraph, script: Iterable[tuple[Rule, SGEdge]]) -> ReductionTrace:
    """Replay an explicit sequence of ``(rule, edge)`` steps.

    Used by the figure benchmarks to replay the paper's circled elimination
    orders and assert each step is legal.  The replayed steps need not
    exhaust the graph; the returned trace reflects whatever remains.
    """
    engine = ReductionEngine(graph)
    for rule, edge in script:
        engine.apply(rule, edge)
    return engine.trace()
