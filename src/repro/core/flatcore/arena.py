"""Pack N compiled problems into one arena and reduce them back-to-back.

A Monte-Carlo sweep poses thousands of *small* problems, so per-problem
Python overhead (scratch allocation, function dispatch, result boxing)
dominates the actual rule applications.  The arena amortizes it: every
problem's arrays are concatenated with node/edge ids shifted into one
global id space, a single set of scratch counters is copied per
:meth:`GraphArena.reduce_all` call, and the free-order verdict loop runs
over each problem's disjoint id range in turn.  Because the ranges are
disjoint, no cross-problem interference is possible — the packing is pure
layout.

Id-sum fields translate in O(1) per node: shifting every edge id by
``base`` adds ``count * base`` to a sum over ``count`` live edges.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.flatcore.compiler import CompiledGraph, compile_graph
from repro.core.flatcore.runtime import FlatVerdict, count_blockages, verdict_pass
from repro.core.sequencing import SequencingGraph
from repro.obs.runtime import active as _active_tracer


@dataclass(frozen=True)
class GraphArena:
    """N flattened problems in one global id space (read-only; reusable)."""

    n_problems: int
    e_base: array[int]  # len N+1: problem p owns edge ids [e_base[p], e_base[p+1])
    c_base: array[int]
    j_base: array[int]
    edge_commitment: array[int]
    edge_conjunction: array[int]
    edge_red: bytearray
    persona: bytearray
    j_off: array[int]
    j_adj: array[int]
    cc0: array[int]
    jc0: array[int]
    rj0: array[int]
    csum0: array[int]
    jsum0: array[int]
    jrsum0: array[int]
    seeds_on: array[int]
    seed_base_on: array[int]  # len N+1: CSR offsets into seeds_on per problem
    seeds_off: array[int]
    seed_base_off: array[int]

    @classmethod
    def from_graphs(
        cls, graphs: Iterable[SequencingGraph | CompiledGraph]
    ) -> GraphArena:
        """Compile (if needed) and pack the given problems."""
        compiled = [
            g if isinstance(g, CompiledGraph) else compile_graph(g) for g in graphs
        ]
        e_base = array("i", [0])
        c_base = array("i", [0])
        j_base = array("i", [0])
        ec: array[int] = array("i")
        ej: array[int] = array("i")
        red = bytearray()
        per = bytearray()
        j_off = array("i", [0])
        j_adj: array[int] = array("i")
        cc0: array[int] = array("i")
        jc0: array[int] = array("i")
        rj0: array[int] = array("i")
        csum0: array[int] = array("q")
        jsum0: array[int] = array("q")
        jrsum0: array[int] = array("q")
        seeds_on: array[int] = array("i")
        seed_base_on = array("i", [0])
        seeds_off: array[int] = array("i")
        seed_base_off = array("i", [0])

        eb = cb = jb = 0
        for comp in compiled:
            ec.extend(x + cb for x in comp.edge_commitment)
            ej.extend(x + jb for x in comp.edge_conjunction)
            red.extend(comp.edge_red)
            per.extend(comp.persona)
            j_off.extend(x + eb for x in comp.j_off[1:])
            j_adj.extend(x + eb for x in comp.j_adj)
            cc0.extend(comp.cc0)
            jc0.extend(comp.jc0)
            rj0.extend(comp.rj0)
            # A sum over k live edge ids shifts by k * eb under re-basing.
            csum0.extend(s + n * eb for s, n in zip(comp.csum0, comp.cc0))
            jsum0.extend(s + n * eb for s, n in zip(comp.jsum0, comp.jc0))
            jrsum0.extend(s + n * eb for s, n in zip(comp.jrsum0, comp.rj0))
            seeds_on.extend(x + eb for x in comp.seeds_on)
            seeds_off.extend(x + eb for x in comp.seeds_off)
            eb += comp.n_edges
            cb += comp.n_commitments
            jb += comp.n_conjunctions
            e_base.append(eb)
            c_base.append(cb)
            j_base.append(jb)
            seed_base_on.append(len(seeds_on))
            seed_base_off.append(len(seeds_off))

        return cls(
            n_problems=len(compiled),
            e_base=e_base,
            c_base=c_base,
            j_base=j_base,
            edge_commitment=ec,
            edge_conjunction=ej,
            edge_red=red,
            persona=per,
            j_off=j_off,
            j_adj=j_adj,
            cc0=cc0,
            jc0=jc0,
            rj0=rj0,
            csum0=csum0,
            jsum0=jsum0,
            jrsum0=jrsum0,
            seeds_on=seeds_on,
            seed_base_on=seed_base_on,
            seeds_off=seeds_off,
            seed_base_off=seed_base_off,
        )

    def reduce_all(self, *, enable_persona_clause: bool = True) -> list[FlatVerdict]:
        """Run the free-order verdict loop over every packed problem.

        Scratch counters are copied once per call (slice assignment over the
        whole arena), so the arena itself stays immutable and reusable.
        """
        n_e = len(self.edge_commitment)
        ec = self.edge_commitment
        ej = self.edge_conjunction
        red = self.edge_red
        per = self.persona if enable_persona_clause else bytearray(len(self.persona))
        cc = array("i", self.cc0)
        jc = array("i", self.jc0)
        rj = array("i", self.rj0)
        csum = array("q", self.csum0)
        jsum = array("q", self.jsum0)
        jrsum = array("q", self.jrsum0)
        alive = bytearray(b"\x01") * n_e
        elig = bytearray(n_e)
        seeds = self.seeds_on if enable_persona_clause else self.seeds_off
        seed_base = self.seed_base_on if enable_persona_clause else self.seed_base_off
        obs = _active_tracer()
        block_hist = None if obs is None else obs.metrics.histogram("arena.block_edges")

        verdicts: list[FlatVerdict] = []
        for p in range(self.n_problems):
            stack = list(seeds[seed_base[p] : seed_base[p + 1]])
            for e in stack:
                elig[e] = 1
            verdict_pass(
                ec, ej, red, per, self.j_off, self.j_adj,
                cc, jc, rj, csum, jsum, jrsum, alive, elig, stack,
            )
            lo = self.e_base[p]
            hi = self.e_base[p + 1]
            if block_hist is not None:
                block_hist.observe(hi - lo)
            remaining = alive.count(1, lo, hi)
            blockages = (
                count_blockages(ec, ej, red, per, cc, rj, alive, lo, hi)
                if remaining
                else 0
            )
            verdicts.append(
                FlatVerdict(
                    feasible=remaining == 0,
                    steps=(hi - lo) - remaining,
                    remaining=remaining,
                    blockages=blockages,
                )
            )
        if obs is not None:
            obs.metrics.inc("arena.problems", self.n_problems)
            for verdict in verdicts:
                obs.verdict(verdict.feasible)
        return verdicts


def check_feasibility_flat_batch(
    graphs: Iterable[SequencingGraph | CompiledGraph],
    *,
    enable_persona_clause: bool = True,
) -> list[FlatVerdict]:
    """Compile N problems into one packed arena and reduce them all.

    The batch analogue of :func:`~repro.core.flatcore.runtime.check_feasibility_flat`;
    verdicts come back in input order.
    """
    arena = GraphArena.from_graphs(graphs)
    obs = _active_tracer()
    if obs is None:
        return arena.reduce_all(enable_persona_clause=enable_persona_clause)
    with obs.span(
        "reduce.batch",
        {"problems": arena.n_problems, "edges": len(arena.edge_commitment)},
    ):
        return arena.reduce_all(enable_persona_clause=enable_persona_clause)
