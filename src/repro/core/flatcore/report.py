"""Payload builders for the ``BENCH_flatcore.json`` artifact.

Timing itself happens in ``benchmarks/flatcore_bench.py`` — wall-clock
reads are banned from the determinism-linted core (DET001) — so the bench
script measures and these functions only *assemble*.  They are serialization
sinks by name (``*_payload``), which puts them under DET002's
unordered-iteration lint: everything they emit must be deterministically
ordered.
"""

from __future__ import annotations

from typing import Mapping


def speedup_table(
    indexed_seconds: Mapping[int, float], flat_seconds: Mapping[int, float]
) -> dict[str, float]:
    """Per-size ``indexed / flat`` wall-clock ratios, keyed by broker count.

    Only sizes measured under *both* engines appear (the 16k point is
    flat-only: the indexed engine is benchmarked there once, separately, or
    not at all).  Keys are strings so the table round-trips through JSON
    unchanged.
    """
    table: dict[str, float] = {}
    for size in sorted(indexed_seconds):
        if size in flat_seconds and flat_seconds[size] > 0:
            table[str(size)] = round(indexed_seconds[size] / flat_seconds[size], 2)
    return table


def bench_payload(
    *,
    machine: str,
    date: str,
    process_cpus: int,
    graph_sizes: Mapping[int, int],
    indexed_reduce_seconds: Mapping[int, float],
    compile_seconds: Mapping[int, float],
    flat_verdict_seconds: Mapping[int, float],
    flat_trace_seconds: Mapping[int, float],
    phase_seconds: Mapping[int, Mapping[str, float]] | None = None,
    batch_problems: int,
    batch_indexed_problems_per_second: float,
    batch_flat_problems_per_second: float,
    notes: Mapping[str, str],
) -> dict[str, object]:
    """Assemble the BENCH_flatcore.json document from measured components.

    ``graph_sizes`` maps broker count → edge count; the per-size timing maps
    are median wall-clock seconds for one reduction of that graph.  The
    caller supplies ``date`` and ``machine`` (no clock or platform reads
    here), and ``process_cpus`` so throughput numbers stay interpretable on
    single-core hosts.  ``phase_seconds`` optionally breaks the flat trace
    path into its compile/run/decompile phases (measured with
    :class:`repro.obs.clock.PhaseTimer`, mean seconds per run).
    """

    def by_size(values: Mapping[int, float]) -> dict[str, float]:
        return {str(size): values[size] for size in sorted(values)}

    return {
        "benchmark": "flatcore",
        "machine": machine,
        "date": date,
        "process_cpus": process_cpus,
        "graph_edges": {str(s): graph_sizes[s] for s in sorted(graph_sizes)},
        "indexed_reduce_seconds": by_size(indexed_reduce_seconds),
        "compile_seconds": by_size(compile_seconds),
        "flat_verdict_seconds": by_size(flat_verdict_seconds),
        "flat_trace_seconds": by_size(flat_trace_seconds),
        "verdict_speedup_over_indexed": speedup_table(
            indexed_reduce_seconds, flat_verdict_seconds
        ),
        "trace_speedup_over_indexed": speedup_table(
            indexed_reduce_seconds, flat_trace_seconds
        ),
        "phase_seconds": {
            str(size): {
                phase: phase_seconds[size][phase]
                for phase in phase_seconds[size]
            }
            for size in sorted(phase_seconds)
        }
        if phase_seconds is not None
        else {},
        "batch": {
            "problems": batch_problems,
            "indexed_problems_per_second": batch_indexed_problems_per_second,
            "flat_problems_per_second": batch_flat_problems_per_second,
        },
        "notes": {key: notes[key] for key in sorted(notes)},
    }
