"""Flatten a :class:`SequencingGraph` into CSR-style integer arrays.

The compiled form is the whole trick: once commitments, conjunctions, and
edges are dense integer ids, the §4.2 reduction rules become comparisons on
``array('i')`` counters instead of hash lookups on frozen dataclasses.  The
compiler runs once per graph (O(V + E)); both runtime loops and the packed
batch arena consume its output.

Layout (all stdlib containers — no numpy in core):

* ``edge_commitment`` / ``edge_conjunction`` — ``array('i')`` of length E
  mapping edge id → node id, in ``graph.edges`` order (so edge id *i* is
  exactly ``graph.edges[i]``, which keeps decompilation a tuple lookup).
* ``edge_red`` — ``bytearray`` color mask (1 = red / priority obligation).
* ``persona`` — ``bytearray`` over commitments (1 = §4.2.3 persona, i.e.
  the trusted-principal waiver *may* apply at that commitment node).
* ``c_off``/``c_adj`` and ``j_off``/``j_adj`` — CSR adjacency: the edges
  incident to commitment ``c`` are ``c_adj[c_off[c]:c_off[c + 1]]``, in
  ``graph.edges`` order (the same order the indexed engine's adjacency
  tuples use, which matters for step-for-step blockage parity).
* ``cc0``/``jc0``/``rj0`` — initial live-edge counts per commitment, per
  conjunction, and initial *red* live-edge counts per conjunction.  An
  edge's blocking-red count is ``rj[j] - red[e]`` (parallel edges are
  rejected by ``SequencingGraph``, so an edge sees at most one red of its
  own at its conjunction — itself).
* ``csum0``/``jsum0``/``jrsum0`` — sums of live edge *ids* per node
  (``array('q')``: id sums exceed 32 bits at 16k-broker scale).  When a
  counter drops to 1 the surviving edge id is exactly the sum, so fringe
  survivors are found in O(1) without scanning adjacency rows.
* ``seeds_on``/``seeds_off`` — edge ids initially eligible under Rule 1 or
  Rule 2, with the persona clause enabled/disabled, in edge-id order (the
  same order the indexed engine seeds its worklist).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.core.sequencing import SequencingGraph


@dataclass(frozen=True)
class CompiledGraph:
    """The flat form of one sequencing graph.  Treat every field read-only;
    runtime loops copy the mutable counters before reducing."""

    graph: SequencingGraph
    n_edges: int
    n_commitments: int
    n_conjunctions: int
    edge_commitment: array[int]
    edge_conjunction: array[int]
    edge_red: bytearray
    persona: bytearray
    c_off: array[int]
    c_adj: array[int]
    j_off: array[int]
    j_adj: array[int]
    cc0: array[int]
    jc0: array[int]
    rj0: array[int]
    csum0: array[int]
    jsum0: array[int]
    jrsum0: array[int]
    seeds_on: array[int]
    seeds_off: array[int]


def _csr(rows: list[list[int]]) -> tuple[array[int], array[int]]:
    offsets = array("i", [0])
    adjacency: array[int] = array("i")
    total = 0
    for row in rows:
        total += len(row)
        offsets.append(total)
        adjacency.extend(row)
    return offsets, adjacency


def compile_graph(graph: SequencingGraph) -> CompiledGraph:
    """Flatten ``graph`` into the dense integer form described above."""
    edges = graph.edges
    commitments = graph.commitments
    conjunctions = graph.conjunctions
    n_e = len(edges)
    n_c = len(commitments)
    n_j = len(conjunctions)

    cidx = {node: i for i, node in enumerate(commitments)}
    jidx = {node: i for i, node in enumerate(conjunctions)}

    ec_list = [0] * n_e
    ej_list = [0] * n_e
    red = bytearray(n_e)
    c_rows: list[list[int]] = [[] for _ in range(n_c)]
    j_rows: list[list[int]] = [[] for _ in range(n_j)]
    for i, edge in enumerate(edges):
        ci = cidx[edge.commitment]
        ji = jidx[edge.conjunction]
        ec_list[i] = ci
        ej_list[i] = ji
        c_rows[ci].append(i)
        j_rows[ji].append(i)
        if edge.is_red:
            red[i] = 1

    persona = bytearray(n_c)
    for node in graph.personas:
        persona[cidx[node]] = 1

    cc0 = [len(row) for row in c_rows]
    jc0 = [len(row) for row in j_rows]
    rj0 = [0] * n_j
    jrsum0 = [0] * n_j
    for i in range(n_e):
        if red[i]:
            j = ej_list[i]
            rj0[j] += 1
            jrsum0[j] += i
    csum0 = [sum(row) for row in c_rows]
    jsum0 = [sum(row) for row in j_rows]

    seeds_on: list[int] = []
    seeds_off: list[int] = []
    for i in range(n_e):
        c = ec_list[i]
        j = ej_list[i]
        fringe = cc0[c] == 1
        unblocked = rj0[j] - red[i] == 0
        rule2 = jc0[j] == 1
        if rule2 or (fringe and unblocked):
            seeds_on.append(i)
            seeds_off.append(i)
        elif fringe and persona[c]:
            seeds_on.append(i)

    c_off, c_adj = _csr(c_rows)
    j_off, j_adj = _csr(j_rows)

    return CompiledGraph(
        graph=graph,
        n_edges=n_e,
        n_commitments=n_c,
        n_conjunctions=n_j,
        edge_commitment=array("i", ec_list),
        edge_conjunction=array("i", ej_list),
        edge_red=red,
        persona=persona,
        c_off=c_off,
        c_adj=c_adj,
        j_off=j_off,
        j_adj=j_adj,
        cc0=array("i", cc0),
        jc0=array("i", jc0),
        rj0=array("i", rj0),
        csum0=array("q", csum0),
        jsum0=array("q", jsum0),
        jrsum0=array("q", jrsum0),
        seeds_on=array("i", seeds_on),
        seeds_off=array("i", seeds_off),
    )
