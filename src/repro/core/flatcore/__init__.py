"""Compiled flat-array reduction core: compile → run → decompile.

The indexed :class:`~repro.core.reduction.ReductionEngine` already made the
§4.2 reduction incremental, but every step still walks frozen-dataclass
nodes, hashes :class:`~repro.core.sequencing.SGEdge` objects, and allocates
Python structures in the hot loop.  This package removes the object layer
entirely for the hot path:

* :mod:`repro.core.flatcore.compiler` — a one-time pass flattening a
  :class:`~repro.core.sequencing.SequencingGraph` into CSR-style integer
  arrays (``array('i')``/``bytearray`` only — no third-party dependency);
* :mod:`repro.core.flatcore.runtime` — two loops over those arrays: a
  **parity engine** (:func:`reduce_graph_flat`) that reproduces the indexed
  engine *step for step* and decompiles back into a full
  :class:`~repro.core.reduction.ReductionTrace`, and a **free-order verdict
  loop** (:func:`check_feasibility_flat`) that answers only
  feasible/steps/remaining/blockages with zero object allocation per edge;
* :mod:`repro.core.flatcore.arena` — N problems packed into one arena so a
  Monte-Carlo batch pays the interpreter's per-run set-up cost once
  (:func:`check_feasibility_flat_batch`);
* :mod:`repro.core.flatcore.report` — pure payload builders for the
  ``BENCH_flatcore.json`` artifact (timing itself lives in ``benchmarks/``,
  outside the determinism-linted core).

The free-order loop is safe because the reduction system has a **unique
normal form** (DESIGN.md §11): eligibility of an edge is anti-monotone in
the remaining-edge set, so every maximal reduction sequence strands exactly
the same residual set — the verdict, step count, remaining count, and
blockage diagnosis are all order-independent.  The parity engine plus the
conformance engine's flat differential arm certify the claim empirically on
every fuzz run.
"""

from repro.core.flatcore.arena import GraphArena, check_feasibility_flat_batch
from repro.core.flatcore.compiler import CompiledGraph, compile_graph
from repro.core.flatcore.report import bench_payload, speedup_table
from repro.core.flatcore.runtime import (
    ENGINES,
    FlatRun,
    FlatVerdict,
    check_feasibility_flat,
    reduce_graph_compiled,
    reduce_graph_flat,
    run_reduction,
)

__all__ = [
    "ENGINES",
    "CompiledGraph",
    "FlatRun",
    "FlatVerdict",
    "GraphArena",
    "bench_payload",
    "check_feasibility_flat",
    "check_feasibility_flat_batch",
    "compile_graph",
    "reduce_graph_compiled",
    "reduce_graph_flat",
    "run_reduction",
    "speedup_table",
]
