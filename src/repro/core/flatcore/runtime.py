"""Run the flat form: parity engine, verdict loop, and decompilation.

Two loops share the compiled arrays but serve different contracts:

* :func:`run_reduction` is the **parity engine**.  It mirrors the indexed
  :class:`~repro.core.reduction.ReductionEngine` *step for step* — same
  strategy semantics (fifo/lifo/random over the same candidate heaps, the
  same ``random.Random`` draw sequence, the same unknown-strategy error),
  same ``via_persona`` flags, same disconnection orders — and its result
  decompiles into a :class:`~repro.core.reduction.ReductionTrace` that is
  value-equal to ``reduce_graph()``'s.  The property suite and the
  conformance engine's flat differential arm enforce that equality.

* :func:`check_feasibility_flat` is the **free-order verdict loop**: a
  plain LIFO worklist with no heaps, no step records, and no object
  allocation per edge.  It may remove edges in a different order than any
  strategy, which is safe because the reduction system has a unique normal
  form (DESIGN.md §11): every maximal sequence strands the same residual
  edge set, so feasibility, step count, remaining count, and the blockage
  diagnosis are order-invariant.

Both loops find fringe survivors in O(1) with the id-sum trick: each node
carries the sum of its live edge ids, so when a counter hits 1 the survivor
is the sum.  The only row scan left is the rare red-count→0 event, which
must wake every black edge parked behind the vanished reds.
"""

from __future__ import annotations

import heapq
import random
from array import array
from dataclasses import dataclass

from repro.core.flatcore.compiler import CompiledGraph, compile_graph
from repro.core.reduction import (
    Blockage,
    ReductionError,
    ReductionStep,
    ReductionTrace,
    Rule,
)
from repro.core.sequencing import SequencingGraph
from repro.obs.runtime import active as _active_tracer
from repro.obs.spans import Tracer

ENGINES = ("indexed", "flat")
"""Engine names accepted by the analysis layer and the CLI ``--engine`` flag."""


@dataclass(frozen=True, slots=True)
class FlatVerdict:
    """What the free-order loop can tell you without building a trace."""

    feasible: bool
    steps: int
    remaining: int
    blockages: int


@dataclass(frozen=True)
class FlatRun:
    """Raw outcome of a parity-engine run, pre-decompilation.

    ``steps`` tuples are ``(index, rule, edge, via_persona, commitment_done,
    conjunction_done)`` with ``-1`` for "no node disconnected".
    """

    steps: list[tuple[int, int, int, bool, int, int]]
    alive: bytearray
    cc: array[int]
    jc: array[int]
    rj: array[int]
    per: bytearray
    commitment_order: list[int]
    conjunction_order: list[int]


def run_reduction(
    compiled: CompiledGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
    enable_persona_clause: bool = True,
) -> FlatRun:
    """Reduce the compiled graph step-for-step like the indexed engine."""
    obs = _active_tracer()
    if obs is None:
        return _run_reduction_impl(compiled, strategy, rng, enable_persona_clause, None)
    with obs.span(
        "reduce.flat", {"edges": compiled.n_edges, "strategy": strategy}
    ) as span_id:
        run = _run_reduction_impl(compiled, strategy, rng, enable_persona_clause, obs)
        remaining = run.alive.count(1)
        obs.set_attr(span_id, "feasible", remaining == 0)
        obs.set_attr(span_id, "survivors", remaining)
    obs.metrics.histogram("reduction.survivors").observe(remaining)
    obs.verdict(remaining == 0)
    return run


def _run_reduction_impl(
    compiled: CompiledGraph,
    strategy: str,
    rng: random.Random | None,
    enable_persona_clause: bool,
    obs: Tracer | None,
) -> FlatRun:
    n_e = compiled.n_edges
    ec = compiled.edge_commitment
    ej = compiled.edge_conjunction
    red = compiled.edge_red
    j_off = compiled.j_off
    j_adj = compiled.j_adj
    per = compiled.persona if enable_persona_clause else bytearray(compiled.n_commitments)
    cc = array("i", compiled.cc0)
    jc = array("i", compiled.jc0)
    rj = array("i", compiled.rj0)
    csum = array("q", compiled.csum0)
    jsum = array("q", compiled.jsum0)
    jrsum = array("q", compiled.jrsum0)
    alive = bytearray(b"\x01") * n_e
    elig = bytearray(n_e)
    seeds = compiled.seeds_on if enable_persona_clause else compiled.seeds_off
    commitment_order = [c for c in range(compiled.n_commitments) if cc[c] == 0]
    conjunction_order = [j for j in range(compiled.n_conjunctions) if jc[j] == 0]
    steps: list[tuple[int, int, int, bool, int, int]] = []

    def remove(e: int, rule: int) -> list[int]:
        """Apply one rule, record the step, return newly eligible edges."""
        c = ec[e]
        j = ej[e]
        # via_persona is computed before the decrement: the indexed engine
        # reports it from the candidate flags current at apply time.
        via_persona = rule == 1 and per[c] != 0 and rj[j] > red[e]
        alive[e] = 0
        newly: list[int] = []
        n = cc[c] - 1
        cc[c] = n
        s = csum[c] - e
        csum[c] = s
        c_done = -1
        j_done = -1
        if n == 0:
            c_done = c
            commitment_order.append(c)
        elif n == 1 and not elig[s]:
            j2 = ej[s]
            if per[c] != 0 or rj[j2] == red[s] or jc[j2] == 1:
                elig[s] = 1
                newly.append(s)
        m = jc[j] - 1
        jc[j] = m
        t = jsum[j] - e
        jsum[j] = t
        if m == 0:
            j_done = j
            conjunction_order.append(j)
        elif m == 1 and not elig[t]:
            elig[t] = 1
            newly.append(t)
        if red[e]:
            r = rj[j] - 1
            rj[j] = r
            u = jrsum[j] - e
            jrsum[j] = u
            if r == 1:
                # One red left at j: that red itself is now unblocked.
                if not elig[u] and cc[ec[u]] == 1:
                    elig[u] = 1
                    newly.append(u)
            elif r == 0 and m > 0:
                # Last red gone: every surviving black fringe edge at j wakes.
                for e2 in j_adj[j_off[j] : j_off[j + 1]]:
                    if alive[e2] and not elig[e2] and cc[ec[e2]] == 1:
                        elig[e2] = 1
                        newly.append(e2)
        steps.append((len(steps) + 1, rule, e, via_persona, c_done, j_done))
        return newly

    if strategy == "fifo" or strategy == "lifo":
        sign = 1 if strategy == "fifo" else -1
        heap = [sign * e for e in seeds]
        heapq.heapify(heap)
        for e in seeds:
            elig[e] = 1
        while heap:
            e = sign * heapq.heappop(heap)
            if not alive[e]:
                continue
            # Recompute the rule from live counters: eligibility is
            # monotone, but *which* rule applies can shift between push
            # and pop, and the indexed engine always reads fresh flags.
            c = ec[e]
            j = ej[e]
            if strategy == "fifo":
                rule = 1 if cc[c] == 1 and (per[c] != 0 or rj[j] == red[e]) else 2
            else:
                rule = 2 if jc[j] == 1 else 1
            newly = remove(e, rule)
            if obs is not None:
                obs.rule_firing(
                    f"rule{rule}", edge=e, depth=len(heap), persona=steps[-1][3]
                )
            for new_edge in newly:
                heapq.heappush(heap, sign * new_edge)
    elif strategy == "random":
        if rng is None:
            rng = random.Random(0)
        cand = set(seeds)
        for e in cand:
            elig[e] = 1
        while cand:
            options: list[tuple[int, int]] = []
            for e in sorted(cand):
                c = ec[e]
                j = ej[e]
                if cc[c] == 1 and (per[c] != 0 or rj[j] == red[e]):
                    options.append((1, e))
                if jc[j] == 1:
                    options.append((2, e))
            rule, e = rng.choice(options)
            cand.discard(e)
            newly = remove(e, rule)
            if obs is not None:
                obs.rule_firing(
                    f"rule{rule}", edge=e, depth=len(cand), persona=steps[-1][3]
                )
            cand.update(newly)
    elif seeds:
        raise ReductionError(f"unknown reduction strategy {strategy!r}")

    return FlatRun(
        steps=steps,
        alive=alive,
        cc=cc,
        jc=jc,
        rj=rj,
        per=bytearray(per),
        commitment_order=commitment_order,
        conjunction_order=conjunction_order,
    )


def decompile(compiled: CompiledGraph, run: FlatRun) -> ReductionTrace:
    """Lift a flat run back into the object-level trace contract."""
    graph = compiled.graph
    edges = graph.edges
    commitments = graph.commitments
    conjunctions = graph.conjunctions
    ec = compiled.edge_commitment
    ej = compiled.edge_conjunction
    red = compiled.edge_red
    j_off = compiled.j_off
    j_adj = compiled.j_adj
    alive = run.alive

    steps = tuple(
        ReductionStep(
            index=index,
            rule=Rule(rule),
            edge=edges[e],
            via_persona=via_persona,
            commitment_disconnected=None if c_done < 0 else commitments[c_done],
            conjunction_disconnected=None if j_done < 0 else conjunctions[j_done],
        )
        for index, rule, e, via_persona, c_done, j_done in run.steps
    )
    live_ids = [e for e in range(compiled.n_edges) if alive[e]]
    remaining = frozenset(edges[e] for e in live_ids)

    blockages: list[Blockage] = []
    if live_ids:
        index_of = {edges[e]: e for e in live_ids}
        for edge in sorted(remaining):
            e = index_of[edge]
            c = ec[e]
            j = ej[e]
            if run.cc[c] != 1:
                continue  # not on the commitment fringe
            if run.rj[j] - red[e] == 0:
                continue  # no blocking reds
            if run.per[c]:
                continue  # §4.2.3 persona waiver applies
            blocking = tuple(
                edges[e2]
                for e2 in j_adj[j_off[j] : j_off[j + 1]]
                if alive[e2] and red[e2] and ec[e2] != c
            )
            blockages.append(Blockage(edge=edge, blocking_red=blocking))

    return ReductionTrace(
        graph=graph,
        steps=steps,
        remaining=remaining,
        commitment_order=tuple(commitments[c] for c in run.commitment_order),
        conjunction_order=tuple(conjunctions[j] for j in run.conjunction_order),
        blockages=tuple(blockages),
    )


def reduce_graph_compiled(
    compiled: CompiledGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
    enable_persona_clause: bool = True,
) -> ReductionTrace:
    """``reduce_graph`` over an already-compiled graph (compile amortized)."""
    run = run_reduction(
        compiled, strategy=strategy, rng=rng, enable_persona_clause=enable_persona_clause
    )
    return decompile(compiled, run)


def reduce_graph_flat(
    graph: SequencingGraph,
    strategy: str = "fifo",
    rng: random.Random | None = None,
    enable_persona_clause: bool = True,
) -> ReductionTrace:
    """Drop-in replacement for :func:`repro.core.reduction.reduce_graph`."""
    return reduce_graph_compiled(
        compile_graph(graph),
        strategy=strategy,
        rng=rng,
        enable_persona_clause=enable_persona_clause,
    )


def verdict_pass(
    ec: array[int],
    ej: array[int],
    red: bytearray,
    per: bytearray,
    j_off: array[int],
    j_adj: array[int],
    cc: array[int],
    jc: array[int],
    rj: array[int],
    csum: array[int],
    jsum: array[int],
    jrsum: array[int],
    alive: bytearray,
    elig: bytearray,
    stack: list[int],
) -> None:
    """Drain a pre-seeded worklist to the unique normal form (in place).

    The caller owns the scratch arrays and has already marked the seeded
    edges eligible; on return ``alive`` is the residual set and the count
    arrays describe it.  Shared by the single-graph verdict path and the
    packed arena (which calls it once per problem over disjoint id ranges).
    """
    push = stack.append
    pop = stack.pop
    while stack:
        e = pop()
        c = ec[e]
        j = ej[e]
        alive[e] = 0
        n = cc[c] - 1
        cc[c] = n
        s = csum[c] - e
        csum[c] = s
        if n == 1 and not elig[s]:
            j2 = ej[s]
            if per[c] or rj[j2] == red[s] or jc[j2] == 1:
                elig[s] = 1
                push(s)
        m = jc[j] - 1
        jc[j] = m
        t = jsum[j] - e
        jsum[j] = t
        if m == 1 and not elig[t]:
            elig[t] = 1
            push(t)
        if red[e]:
            r = rj[j] - 1
            rj[j] = r
            u = jrsum[j] - e
            jrsum[j] = u
            if r == 1:
                if not elig[u] and cc[ec[u]] == 1:
                    elig[u] = 1
                    push(u)
            elif r == 0 and m > 0:
                for e2 in j_adj[j_off[j] : j_off[j + 1]]:
                    if alive[e2] and not elig[e2] and cc[ec[e2]] == 1:
                        elig[e2] = 1
                        push(e2)


def count_blockages(
    ec: array[int],
    ej: array[int],
    red: bytearray,
    per: bytearray,
    cc: array[int],
    rj: array[int],
    alive: bytearray,
    lo: int,
    hi: int,
) -> int:
    """Residual edges that are commitment-fringe, red-blocked, not waived.

    Matches the indexed engine's ``_diagnose`` count exactly: an alive edge
    is a blockage iff its commitment is on the fringe, at least one *other*
    red survives at its conjunction, and no persona waiver applies.
    """
    blocked = 0
    e = alive.find(1, lo, hi)
    while e != -1:
        c = ec[e]
        if cc[c] == 1 and not per[c] and rj[ej[e]] > red[e]:
            blocked += 1
        e = alive.find(1, e + 1, hi)
    return blocked


def check_feasibility_flat(
    graph: SequencingGraph | CompiledGraph,
    *,
    enable_persona_clause: bool = True,
) -> FlatVerdict:
    """Feasibility verdict via the free-order loop (no trace built).

    Observability wraps only this function boundary: the drain loop itself
    (:func:`verdict_pass`) carries no per-edge instrumentation, so the
    disabled-tracing overhead on the verdict bench is a single ``active()``
    call per verdict.
    """
    compiled = graph if isinstance(graph, CompiledGraph) else compile_graph(graph)
    obs = _active_tracer()
    if obs is None:
        return _check_feasibility_impl(compiled, enable_persona_clause)
    with obs.span("verdict.flat", {"edges": compiled.n_edges}) as span_id:
        verdict = _check_feasibility_impl(compiled, enable_persona_clause)
        obs.set_attr(span_id, "feasible", verdict.feasible)
        obs.set_attr(span_id, "survivors", verdict.remaining)
    obs.metrics.inc("reduction.free_order_steps", verdict.steps)
    obs.metrics.histogram("reduction.survivors").observe(verdict.remaining)
    obs.verdict(verdict.feasible)
    return verdict


def _check_feasibility_impl(
    compiled: CompiledGraph, enable_persona_clause: bool
) -> FlatVerdict:
    n_e = compiled.n_edges
    per = compiled.persona if enable_persona_clause else bytearray(compiled.n_commitments)
    cc = array("i", compiled.cc0)
    jc = array("i", compiled.jc0)
    rj = array("i", compiled.rj0)
    csum = array("q", compiled.csum0)
    jsum = array("q", compiled.jsum0)
    jrsum = array("q", compiled.jrsum0)
    alive = bytearray(b"\x01") * n_e
    elig = bytearray(n_e)
    seeds = compiled.seeds_on if enable_persona_clause else compiled.seeds_off
    stack = list(seeds)
    for e in stack:
        elig[e] = 1
    verdict_pass(
        compiled.edge_commitment,
        compiled.edge_conjunction,
        compiled.edge_red,
        per,
        compiled.j_off,
        compiled.j_adj,
        cc,
        jc,
        rj,
        csum,
        jsum,
        jrsum,
        alive,
        elig,
        stack,
    )
    remaining = alive.count(1)
    blockages = 0
    if remaining:
        blockages = count_blockages(
            compiled.edge_commitment,
            compiled.edge_conjunction,
            compiled.edge_red,
            per,
            cc,
            rj,
            alive,
            0,
            n_e,
        )
    return FlatVerdict(
        feasible=remaining == 0,
        steps=n_e - remaining,
        remaining=remaining,
        blockages=blockages,
    )
