"""Transferable items: goods and money (paper §2.2).

The paper's ``give`` action transfers a *document* and ``pay`` transfers a
*dollar amount*; payment "is only a special case of a give action".  We model
both under a common :class:`Item` interface so ledgers and transfer machinery
are uniform, while keeping the give/pay distinction for action rendering and
for the §5 rule that trusted agents release goods before payments.

Money amounts are held in integer *cents* to avoid floating-point drift in
ledgers and indemnity sums; the constructors accept floats/ints in dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True, order=True)
class Item:
    """Base class for transferable objects.  Identity is the label."""

    label: str

    def __post_init__(self) -> None:
        if not self.label:
            raise ModelError("item label must be non-empty")

    @property
    def is_money(self) -> bool:
        """Whether this item is a monetary amount (a :class:`Money`)."""
        return False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.label


@dataclass(frozen=True, order=True)
class Document(Item):
    """A digital good: a document, dataset, or computation result.

    >>> Document("d1").is_money
    False
    """


@dataclass(frozen=True, order=True)
class Money(Item):
    """A dollar amount, stored as integer cents.

    The label is derived from the amount so that equal amounts with equal
    labels compare equal; distinct payments of the same amount in one exchange
    should carry distinct labels (use :func:`money` with ``tag``).

    >>> money(10).cents
    1000
    >>> str(money(10))
    '$10.00'
    """

    cents: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cents < 0:
            raise ModelError(f"money amount must be non-negative, got {self.cents} cents")

    @property
    def is_money(self) -> bool:
        return True

    @property
    def dollars(self) -> float:
        """The amount in dollars as a float (for display and analysis)."""
        return self.cents / 100.0

    def __str__(self) -> str:
        return f"${self.cents // 100}.{self.cents % 100:02d}"


def document(label: str) -> Document:
    """Create a document item."""
    return Document(label)


def money(dollars: float | int, tag: str = "") -> Money:
    """Create a :class:`Money` amount from a dollar figure.

    ``tag`` disambiguates multiple payments of the same amount within one
    exchange (e.g. the broker's purchase price vs. the consumer's price).

    >>> money(12.5).cents
    1250
    >>> money(10, tag="resale").label
    '$10.00#resale'
    """
    cents = round(dollars * 100)
    if cents < 0:
        raise ModelError(f"money amount must be non-negative, got {dollars}")
    base = f"${cents // 100}.{cents % 100:02d}"
    label = f"{base}#{tag}" if tag else base
    return Money(label=label, cents=cents)


def cents(amount: int, tag: str = "") -> Money:
    """Create a :class:`Money` amount from integer cents."""
    if amount < 0:
        raise ModelError(f"money amount must be non-negative, got {amount} cents")
    base = f"${amount // 100}.{amount % 100:02d}"
    label = f"{base}#{tag}" if tag else base
    return Money(label=label, cents=amount)
