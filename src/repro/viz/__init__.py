"""Renderings of interaction and sequencing graphs (Figures 1-6) as
Graphviz DOT or plain terminal text."""

from repro.viz.ascii_art import interaction_text, sequencing_text, trace_text
from repro.viz.dot import interaction_to_dot, petri_to_dot, sequencing_to_dot

__all__ = [
    "interaction_text",
    "sequencing_text",
    "trace_text",
    "interaction_to_dot",
    "petri_to_dot",
    "sequencing_to_dot",
]
