"""Plain-text renderings for terminals (the CLI's default output).

Nothing fancy: indented adjacency listings that make the figures readable in
a terminal, plus a reduction-trace narration matching the §4.2.2 walkthrough
style.
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.reduction import ReductionTrace
from repro.core.sequencing import SequencingGraph


def interaction_text(graph: InteractionGraph) -> list[str]:
    """An adjacency listing of an interaction graph."""
    lines = ["interaction graph:"]
    lines.append(
        "  principals: "
        + ", ".join(f"{p.name}({p.role.value})" for p in graph.principals)
    )
    lines.append(
        "  trusted:    " + ", ".join(t.name for t in graph.trusted_components)
    )
    for component in graph.trusted_components:
        left, *rest = graph.edges_at(component)
        sides = [left, *rest]
        swap = " <-> ".join(f"{e.principal.name}[{e.provides}]" for e in sides)
        lines.append(f"  {component.name}: {swap}")
    if graph.priority_edges:
        marks = ", ".join(
            f"{e.principal.name}--{e.trusted.name}" for e in sorted(graph.priority_edges)
        )
        lines.append(f"  priority (red): {marks}")
    return lines


def sequencing_text(graph: SequencingGraph) -> list[str]:
    """An adjacency listing of a sequencing graph."""
    lines = [
        f"sequencing graph: {len(graph.commitments)} commitments, "
        f"{len(graph.conjunctions)} conjunctions, {len(graph.red_edges)} red / "
        f"{len(graph.black_edges)} black edges"
    ]
    for conjunction in graph.conjunctions:
        lines.append(f"  AND({conjunction.agent.name}):")
        for edge in graph.edges_of_conjunction(conjunction):
            color = "RED  " if edge.is_red else "black"
            persona = " (persona)" if edge.commitment in graph.personas else ""
            lines.append(f"    [{color}] {edge.commitment.label}{persona}")
    return lines


def trace_text(trace: ReductionTrace) -> list[str]:
    """Narrate a reduction trace in the §4.2.2 walkthrough style."""
    lines = ["reduction:"]
    for step in trace.steps:
        persona = " via direct trust" if step.via_persona else ""
        lines.append(
            f"  {step.index}. Rule #{int(step.rule)}{persona} removes "
            f"{step.edge.commitment.label} = {step.edge.conjunction.label}"
        )
        if step.conjunction_disconnected is not None:
            lines.append(
                f"     -> {step.conjunction_disconnected.label} disconnected"
            )
    if trace.feasible:
        lines.append("  result: FEASIBLE (all edges eliminated)")
    else:
        lines.append(
            f"  result: NOT SHOWN FEASIBLE ({len(trace.remaining)} edges remain)"
        )
        for blockage in trace.blockages:
            lines.append(f"    impasse: {blockage}")
    return lines
