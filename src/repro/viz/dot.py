"""Graphviz DOT renderings of interaction and sequencing graphs.

Conventions mirror the paper's figures: principals are circles, trusted
components squares (Figures 1–2); commitment nodes are hexagons, conjunction
nodes squares, red edges bold red, black edges plain (Figures 3–6).  The
output is plain DOT text — no graphviz dependency — suitable for piping into
``dot -Tpng`` or pasting into a viewer.
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.reduction import ReductionTrace
from repro.core.sequencing import SequencingGraph


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def interaction_to_dot(graph: InteractionGraph, title: str = "interaction") -> str:
    """Render an interaction graph in the style of Figures 1–2."""
    lines = [f"graph {_quote(title)} {{", "  layout=dot;", "  rankdir=LR;"]
    for principal in graph.principals:
        lines.append(
            f"  {_quote(principal.name)} [shape=ellipse, "
            f'label="{principal.name}\\n({principal.role.value})"];'
        )
    for component in graph.trusted_components:
        lines.append(f"  {_quote(component.name)} [shape=box];")
    for edge in graph.edges:
        style = ", style=bold, color=red" if edge in graph.priority_edges else ""
        lines.append(
            f"  {_quote(edge.principal.name)} -- {_quote(edge.trusted.name)} "
            f'[label="{edge.provides}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def sequencing_to_dot(
    graph: SequencingGraph,
    title: str = "sequencing",
    trace: ReductionTrace | None = None,
) -> str:
    """Render a sequencing graph in the style of Figures 3–6.

    With *trace*, removed edges are drawn dashed grey and annotated with
    their elimination step number — reproducing the paper's circled numbers.
    """
    removed: dict = {}
    if trace is not None:
        for step in trace.steps:
            removed[step.edge] = step.index
    lines = [f"graph {_quote(title)} {{", "  layout=dot;", "  rankdir=LR;"]
    for commitment in graph.commitments:
        persona = " (persona)" if commitment in graph.personas else ""
        lines.append(
            f"  {_quote(commitment.label)} [shape=hexagon, "
            f'label="{commitment.label}{persona}"];'
        )
    for conjunction in graph.conjunctions:
        lines.append(
            f"  {_quote(conjunction.label)} [shape=box, "
            f'label="AND({conjunction.agent.name})"];'
        )
    for edge in graph.edges:
        attrs = ["style=bold", "color=red"] if edge.is_red else []
        if edge in removed:
            attrs = ["style=dashed", "color=grey", f'label="{removed[edge]}"']
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(
            f"  {_quote(edge.commitment.label)} -- "
            f"{_quote(edge.conjunction.label)}{attr_text};"
        )
    lines.append("}")
    return "\n".join(lines)


def petri_to_dot(net, title: str = "petri", highlight: tuple[str, ...] = ()) -> str:
    """Render a Petri net (§7.4): places as circles, transitions as bars.

    ``highlight`` names transitions to emphasize (e.g. a coverability
    witness).  Initially marked places are annotated with their token count.
    """
    initial = dict(net.initial.counts)
    lines = [f"digraph {_quote(title)} {{", "  rankdir=LR;"]
    for place in sorted(net.places):
        tokens = initial.get(place, 0)
        label = place + (f"\\n({tokens})" if tokens else "")
        style = ", style=filled, fillcolor=lightyellow" if tokens else ""
        lines.append(f'  {_quote(place)} [shape=ellipse, label="{label}"{style}];')
    for transition in net.transitions:
        color = ", color=red, penwidth=2" if transition.name in highlight else ""
        lines.append(
            f"  {_quote(transition.name)} [shape=box, style=filled, "
            f'fillcolor=lightgrey, label="{transition.name}"{color}];'
        )
        for place, count in transition.consumes:
            weight = f' [label="{count}"]' if count > 1 else ""
            lines.append(f"  {_quote(place)} -> {_quote(transition.name)}{weight};")
        for place, count in transition.produces:
            weight = f' [label="{count}"]' if count > 1 else ""
            lines.append(f"  {_quote(transition.name)} -> {_quote(place)}{weight};")
    lines.append("}")
    return "\n".join(lines)
