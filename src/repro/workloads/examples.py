"""The paper's worked examples as ready-made :class:`ExchangeProblem` fixtures.

Party names follow the paper's figures exactly (``Consumer``, ``Broker``,
``Producer``, ``Trusted1`` …) so that recovered execution sequences can be
compared verbatim with the §5 listing.

* :func:`example1` — Figure 1: consumer buys a document from a producer via a
  broker, two trusted intermediaries (feasible).
* :func:`example2` — Figure 2: consumer wants a two-document bundle from two
  broker/source pairs, four intermediaries (infeasible without indemnities).
* :func:`example2_source_trusts_broker` / :func:`example2_broker_trusts_source`
  — the §4.2.3 direct-trust variants (feasible / still infeasible).
* :func:`poor_broker` — the §5 variant where the broker needs the customer's
  money to buy the document (two red edges at ∧B; infeasible).
* :func:`figure7` — the three-broker/$10-$20-$30 indemnity example of §6.
* :func:`simple_purchase` — the §2.3 two-party document sale through one
  trusted agent (the smallest feasible exchange).

Prices the paper leaves unspecified are fixed here (retail $12 / wholesale
$10 for Example #1, and so on); they do not affect feasibility, only ledgers
and cost analyses.  Figure 7's customer prices are the paper's $10/$20/$30.
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.problem import ExchangeProblem
from repro.workloads.bundles import broker_bundle


def simple_purchase(price: float = 10.0) -> ExchangeProblem:
    """§2.3's two-party sale: customer buys document *d* via one trusted agent."""
    c = consumer("Customer")
    p = producer("Producer")
    t = trusted("Trusted")
    graph = InteractionGraph()
    graph.add_principal(c)
    graph.add_principal(p)
    graph.add_trusted(t)
    graph.add_exchange(c, money(price), p, document("d"), via=t)
    return ExchangeProblem("simple-purchase", graph).validate()


def example1(retail: float = 12.0, wholesale: float = 10.0) -> ExchangeProblem:
    """Figure 1 / §3.1: consumer–Trusted1–broker–Trusted2–producer chain.

    The broker resells document *d*: it must have the consumer's commitment
    (via Trusted1) before spending its own money at Trusted2, so the edge
    between the broker and Trusted1 is priority (red at ∧B).  The broker is
    assumed solvent — it buys with its own funds (see :func:`poor_broker`).
    """
    c = consumer("Consumer")
    b = broker("Broker")
    p = producer("Producer")
    t1 = trusted("Trusted1")
    t2 = trusted("Trusted2")
    d = document("d")

    graph = InteractionGraph()
    for principal in (c, b, p):
        graph.add_principal(principal)
    for t in (t1, t2):
        graph.add_trusted(t)
    edge_c_t1, edge_b_t1 = graph.add_exchange(c, money(retail, tag="retail"), b, d, via=t1)
    edge_b_t2, _edge_p_t2 = graph.add_exchange(b, money(wholesale, tag="wholesale"), p, d, via=t2)
    del edge_c_t1, edge_b_t2
    graph.mark_priority(edge_b_t1)
    return ExchangeProblem("example1", graph).validate()


def poor_broker(retail: float = 12.0, wholesale: float = 10.0) -> ExchangeProblem:
    """§5's infeasible variant: the broker needs the customer's money first.

    Both of the broker's commitments are priority, so ∧B has two red edges,
    "each of which must be done first. Since this is impossible, the whole
    exchange is infeasible."
    """
    problem = example1(retail=retail, wholesale=wholesale)
    buy_side = problem.interaction.find_edge("Broker", "Trusted2")
    problem.interaction.mark_priority(buy_side)
    problem.name = "poor-broker"
    return problem


def example2(
    retail: tuple[float, float] = (12.0, 22.0),
    wholesale: tuple[float, float] = (10.0, 20.0),
) -> ExchangeProblem:
    """Figure 2 / §3.2: two-document bundle through two broker/source pairs.

    The consumer wants both documents or neither (∧C conjoins its two
    commitments); each broker wants a committed buyer before purchasing from
    its source (red edges at ∧B1 and ∧B2).  Infeasible as specified.
    """
    c = consumer("Consumer")
    b1, b2 = broker("Broker1"), broker("Broker2")
    s1, s2 = producer("Source1"), producer("Source2")
    t1, t2, t3, t4 = (trusted(f"Trusted{i}") for i in range(1, 5))
    d1, d2 = document("d1"), document("d2")

    graph = InteractionGraph()
    for principal in (c, b1, b2, s1, s2):
        graph.add_principal(principal)
    for t in (t1, t2, t3, t4):
        graph.add_trusted(t)

    _, sell1 = graph.add_exchange(c, money(retail[0], tag="retail-d1"), b1, d1, via=t1)
    graph.add_exchange(b1, money(wholesale[0], tag="wholesale-d1"), s1, d1, via=t2)
    _, sell2 = graph.add_exchange(c, money(retail[1], tag="retail-d2"), b2, d2, via=t3)
    graph.add_exchange(b2, money(wholesale[1], tag="wholesale-d2"), s2, d2, via=t4)
    graph.mark_priority(sell1)
    graph.mark_priority(sell2)
    return ExchangeProblem("example2", graph).validate()


def example2_source_trusts_broker() -> ExchangeProblem:
    """§4.2.3 variant 1: Source1 directly trusts Broker1 (feasible).

    Broker1 then plays the role of Trusted2, so Rule #1 clause 2 removes the
    edge between ∧B1 and Broker1–Trusted2 despite the red pre-emption,
    triggering the domino that empties the graph.
    """
    problem = example2().with_trust("Source1", "Broker1")
    problem.name = "example2-source1-trusts-broker1"
    return problem


def example2_broker_trusts_source() -> ExchangeProblem:
    """§4.2.3 variant 2: Broker1 directly trusts Source1 (still infeasible).

    Source1 plays the role of Trusted2 — but the only edge this unlocks was
    already removable, so the impasse stands.  Trust asymmetry matters.
    """
    problem = example2().with_trust("Broker1", "Source1")
    problem.name = "example2-broker1-trusts-source1"
    return problem


def figure7(prices: tuple[float, float, float] = (10.0, 20.0, 30.0)) -> ExchangeProblem:
    """§6 / Figure 7: three-broker bundle with customer prices $10/$20/$30.

    Infeasible without indemnities; the indemnity planner demonstrates the
    $90-vs-$70 ordering effect and the greedy minimum.
    """
    problem = broker_bundle(
        n_docs=3,
        retail_prices=prices,
        wholesale_prices=tuple(p * 0.8 for p in prices),
        name="figure7",
    )
    return problem
