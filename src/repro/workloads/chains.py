"""Resale-chain workloads: consumer — broker₁ — … — brokerₙ — producer.

Figure 1 is the one-broker instance of this family.  Each broker resells the
single document one hop closer to the consumer and demands a committed buyer
before purchasing (red edge at its conjunction).  Chains of any length are
feasible — the commitment cascade runs from the producer's end inward — which
makes this family ideal for the scaling benchmark (reduction cost vs. graph
size) and the §8 message-cost sweep.
"""

from __future__ import annotations

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.problem import ExchangeProblem
from repro.errors import ModelError


def resale_chain(
    n_brokers: int,
    retail: float = 10.0,
    margin: float = 1.0,
    solvent: bool = True,
) -> ExchangeProblem:
    """Build a chain with *n_brokers* intermediating brokers.

    The consumer pays ``retail``; each broker buys one hop upstream for
    ``margin`` less than it sells for.  ``solvent=False`` reproduces the
    "poor broker" pathology at *every* broker (both edges red ⇒ infeasible
    for any ``n_brokers >= 1``).

    ``n_brokers=0`` degenerates to :func:`repro.workloads.examples.simple_purchase`.
    """
    if n_brokers < 0:
        raise ModelError(f"n_brokers must be non-negative, got {n_brokers}")
    lowest = retail - margin * n_brokers
    if lowest <= 0:
        raise ModelError(
            f"retail {retail} cannot absorb {n_brokers} margins of {margin}"
        )

    c = consumer("Consumer")
    p = producer("Producer")
    brokers = [broker(f"Broker{i + 1}") for i in range(n_brokers)]
    intermediaries = [trusted(f"Trusted{i + 1}") for i in range(n_brokers + 1)]
    d = document("d")

    graph = InteractionGraph()
    graph.add_principal(c)
    for b in brokers:
        graph.add_principal(b)
    graph.add_principal(p)
    for t in intermediaries:
        graph.add_trusted(t)

    # Chain of sellers from the consumer outward: c buys from brokers[0],
    # brokers[i] buys from brokers[i+1], brokers[-1] buys from the producer.
    buyers = [c] + brokers
    sellers = brokers + [p]
    for hop, (buyer, seller, via) in enumerate(zip(buyers, sellers, intermediaries)):
        price = money(retail - margin * hop, tag=f"hop{hop}")
        buy_edge, sell_edge = graph.add_exchange(buyer, price, seller, d, via=via)
        if seller is not p:
            # The seller is a broker: its sale must be committed before its
            # own purchase one hop upstream (the red edge at its conjunction).
            graph.mark_priority(sell_edge)
        if not solvent and buyer is not c:
            # A poor broker also demands its incoming payment before paying
            # upstream: its buy edge becomes red too, creating the impasse.
            graph.mark_priority(buy_edge)

    name = f"resale-chain-{n_brokers}" + ("" if solvent else "-poor")
    return ExchangeProblem(name, graph).validate()


def star(n_consumers: int, price: float = 10.0) -> ExchangeProblem:
    """One producer selling distinct documents to *n* consumers in parallel.

    Each sale has its own trusted intermediary and document, so the
    producer's conjunction is an all-black bundle over independent,
    individually satisfiable exchanges — feasible at any width, and a good
    stress shape for the scheduler's bundle-assurance gate.
    """
    if n_consumers < 1:
        raise ModelError(f"need at least one consumer, got {n_consumers}")
    p = producer("Producer")
    graph = InteractionGraph()
    graph.add_principal(p)
    for i in range(n_consumers):
        c = graph.add_principal(consumer(f"Consumer{i + 1}"))
        t = graph.add_trusted(trusted(f"Trusted{i + 1}"))
        graph.add_exchange(
            c, money(price, tag=f"sale{i + 1}"), p, document(f"d{i + 1}"), via=t
        )
    return ExchangeProblem(f"star-{n_consumers}", graph).validate()


def oversale(n_buyers: int = 2, price: float = 10.0) -> ExchangeProblem:
    """A producer promising the *same* document to several buyers.

    The sequencing-graph test is possession-blind and calls this feasible;
    the execution scheduler and the Petri token game both detect the
    physical impossibility (one document, many buyers).  Kept as a fixture
    for that documented limitation.
    """
    if n_buyers < 2:
        raise ModelError("an over-sale needs at least two buyers")
    p = producer("Producer")
    graph = InteractionGraph()
    graph.add_principal(p)
    d = document("d")
    for i in range(n_buyers):
        c = graph.add_principal(consumer(f"Buyer{i + 1}"))
        t = graph.add_trusted(trusted(f"Trusted{i + 1}"))
        graph.add_exchange(c, money(price, tag=f"buy{i + 1}"), p, d, via=t)
    return ExchangeProblem(f"oversale-{n_buyers}", graph).validate()
