"""Workload generators: the paper's worked examples plus parametric families.

* :mod:`repro.workloads.examples` — Figures 1, 2, 7 and the §4.2.3/§5
  variants, with the paper's party names.
* :mod:`repro.workloads.chains` — resale chains (Figure 1 generalized).
* :mod:`repro.workloads.bundles` — consumer bundles (Figures 2/7 generalized).
* :mod:`repro.workloads.random_graphs` — random topologies for studies and
  property-based tests.
"""

from repro.workloads.bundles import broker_bundle, consumer_bundle_prices
from repro.workloads.chains import oversale, resale_chain, star
from repro.workloads.examples import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    simple_purchase,
)
from repro.workloads.random_graphs import (
    RandomProblemConfig,
    random_problem,
    random_problem_batch,
)

__all__ = [
    "broker_bundle",
    "consumer_bundle_prices",
    "oversale",
    "resale_chain",
    "star",
    "example1",
    "example2",
    "example2_broker_trusts_source",
    "example2_source_trusts_broker",
    "figure7",
    "poor_broker",
    "simple_purchase",
    "RandomProblemConfig",
    "random_problem",
    "random_problem_batch",
]
