"""Random exchange topologies for feasibility studies and property tests.

Every generated problem is structurally valid: each exchange is mediated by a
fresh trusted component (degree exactly 2), swaps money for a unique
document, and priority (red) markings are placed randomly on principals that
hold several commitments.  Feasibility is *not* guaranteed — that is the
point: :mod:`repro.analysis.feasibility_study` measures how the feasible
fraction falls as priority density rises, and the confluence property tests
need graphs on both sides of the boundary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import Party, Role
from repro.core.problem import ExchangeProblem
from repro.errors import ModelError


@dataclass(frozen=True)
class RandomProblemConfig:
    """Knobs for :func:`random_problem`.

    * ``n_principals`` — how many principals to create;
    * ``n_exchanges`` — how many mediated pairwise exchanges to add;
    * ``priority_probability`` — chance that a seller with multiple
      commitments marks one of them priority (red);
    * ``max_price`` — uniform price ceiling in whole dollars;
    * ``hub_probability`` — chance that an exchange endpoint is drawn by
      preferential attachment (weighted by how many exchanges a principal
      already participates in) instead of uniformly.  Values near 1 grow a
      few hub principals with very large conjunction fan-in, the worst case
      for the reduction engine's adjacency indices.  At the default 0.0 the
      generator draws exactly the same rng stream as before the knob existed,
      so historical seeds reproduce bit-identical problems.
    """

    n_principals: int = 8
    n_exchanges: int = 6
    priority_probability: float = 0.5
    max_price: int = 50
    allow_cycles: bool = False
    hub_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.n_principals < 2:
            raise ModelError("need at least two principals")
        if self.n_exchanges < 1:
            raise ModelError("need at least one exchange")
        if not 0.0 <= self.priority_probability <= 1.0:
            raise ModelError("priority_probability must be in [0, 1]")
        if not 0.0 <= self.hub_probability <= 1.0:
            raise ModelError("hub_probability must be in [0, 1]")
        if not self.allow_cycles and self.n_exchanges > self.n_principals - 1:
            raise ModelError(
                "an acyclic topology over n principals holds at most n-1 "
                "exchanges; raise n_principals or set allow_cycles=True"
            )


def random_problem(
    config: RandomProblemConfig = RandomProblemConfig(),
    rng: random.Random | None = None,
    seed: int | None = None,
) -> ExchangeProblem:
    """Generate one random exchange problem.

    Supply *rng* (preferred for property tests) or *seed*; both default to a
    fixed seed for reproducibility.
    """
    if rng is None:
        rng = random.Random(0 if seed is None else seed)

    principals = [
        Party(f"P{i + 1}", rng.choice([Role.CONSUMER, Role.BROKER, Role.PRODUCER]))
        for i in range(config.n_principals)
    ]
    # Choose the exchange pairs first so principals that end up unused are
    # simply never registered (a registered-but-idle principal is invalid).
    # By default the interaction topology is kept acyclic (a forest over the
    # principals): the §4.2 reduction can never clear a cycle of mutual
    # all-or-nothing conjunctions, so cyclic instances are uniformly
    # infeasible and drown out every other effect in the studies.
    pairs: list[tuple[Party, Party]] = []
    index_of = {p: i for i, p in enumerate(principals)}
    parent = list(range(len(principals)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    # Preferential attachment: one entry per endpoint of every placed
    # exchange, so drawing from it uniformly weights by current degree.
    endpoints: list[Party] = []
    attempts = 0
    while len(pairs) < config.n_exchanges and attempts < config.n_exchanges * 200:
        attempts += 1
        if (
            config.hub_probability > 0.0
            and endpoints
            and rng.random() < config.hub_probability
        ):
            hub = rng.choice(endpoints)
            other = rng.choice([p for p in principals if p is not hub])
            buyer, seller = (hub, other) if rng.random() < 0.5 else (other, hub)
        else:
            buyer, seller = rng.sample(principals, 2)
        if not config.allow_cycles:
            buyer_root = find(index_of[buyer])
            seller_root = find(index_of[seller])
            if buyer_root == seller_root:
                continue
            parent[buyer_root] = seller_root
        pairs.append((buyer, seller))
        endpoints.extend((buyer, seller))
    if len(pairs) < config.n_exchanges:
        raise ModelError("could not place the requested number of acyclic exchanges")
    used = {p for pair in pairs for p in pair}
    graph = InteractionGraph()
    for p in principals:
        if p in used:
            graph.add_principal(p)

    edges_by_principal: dict[Party, list] = {p: [] for p in principals}
    for i, (buyer, seller) in enumerate(pairs):
        t = graph.add_trusted(Party(f"T{i + 1}", Role.TRUSTED))
        price = money(rng.randint(1, config.max_price), tag=f"x{i + 1}")
        doc = document(f"doc{i + 1}")
        buy_edge, sell_edge = graph.add_exchange(buyer, price, seller, doc, via=t)
        edges_by_principal[buyer].append(buy_edge)
        edges_by_principal[seller].append(sell_edge)

    for principal, edges in edges_by_principal.items():
        if len(edges) < 2:
            continue
        if rng.random() < config.priority_probability:
            graph.mark_priority(rng.choice(edges))

    problem = ExchangeProblem(f"random-{config.n_exchanges}x{config.n_principals}", graph)
    return problem.validate()


def random_problem_batch(
    count: int,
    config: RandomProblemConfig = RandomProblemConfig(),
    seed: int = 0,
) -> list[ExchangeProblem]:
    """A reproducible batch of random problems (distinct sub-seeds)."""
    rng = random.Random(seed)
    return [random_problem(config, rng=random.Random(rng.random())) for _ in range(count)]
