"""Parametric bundle workloads: one consumer, *k* broker/source pairs.

This is the Figure 2 / Figure 7 family generalized: the consumer wants all
*k* documents or none (its conjunction node conjoins all *k* purchase
commitments), and every broker demands a committed buyer before purchasing
from its source (a red edge at each broker conjunction).  For ``k >= 2`` the
exchange is infeasible without indemnities (§6); :mod:`repro.core.indemnity`
computes the escrow plans that unlock it.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.problem import ExchangeProblem
from repro.errors import ModelError


def broker_bundle(
    n_docs: int,
    retail_prices: Sequence[float],
    wholesale_prices: Sequence[float] | None = None,
    name: str | None = None,
    consumer_name: str = "Consumer",
) -> ExchangeProblem:
    """Build the *k*-document bundle problem.

    ``retail_prices[i]`` is what the consumer pays for document ``d{i+1}``
    (the costs Figure 7 annotates); ``wholesale_prices[i]`` what broker
    ``Broker{i+1}`` pays source ``Source{i+1}`` (defaults to 80% of retail).
    Intermediary ``Trusted{2i+1}`` sits between consumer and broker *i*,
    ``Trusted{2i+2}`` between broker *i* and source *i*, matching Figure 7's
    numbering (T1..T6 for three documents).
    """
    if n_docs < 1:
        raise ModelError(f"bundle needs at least one document, got {n_docs}")
    if len(retail_prices) != n_docs:
        raise ModelError(
            f"expected {n_docs} retail prices, got {len(retail_prices)}"
        )
    if wholesale_prices is None:
        wholesale_prices = tuple(p * 0.8 for p in retail_prices)
    if len(wholesale_prices) != n_docs:
        raise ModelError(
            f"expected {n_docs} wholesale prices, got {len(wholesale_prices)}"
        )

    c = consumer(consumer_name)
    graph = InteractionGraph()
    graph.add_principal(c)
    for i in range(n_docs):
        idx = i + 1
        b = graph.add_principal(broker(f"Broker{idx}"))
        s = graph.add_principal(producer(f"Source{idx}"))
        t_sell = graph.add_trusted(trusted(f"Trusted{2 * i + 1}"))
        t_buy = graph.add_trusted(trusted(f"Trusted{2 * i + 2}"))
        d = document(f"d{idx}")
        _, sell_edge = graph.add_exchange(
            c, money(retail_prices[i], tag=f"retail-d{idx}"), b, d, via=t_sell
        )
        graph.add_exchange(
            b, money(wholesale_prices[i], tag=f"wholesale-d{idx}"), s, d, via=t_buy
        )
        graph.mark_priority(sell_edge)

    problem_name = name if name is not None else f"broker-bundle-{n_docs}"
    return ExchangeProblem(problem_name, graph).validate()


def consumer_bundle_prices(problem: ExchangeProblem) -> dict[str, int]:
    """Map document-selling commitment labels to the consumer's price in cents.

    Convenience for indemnity studies: looks at every edge where the
    consumer pays money and returns ``{trusted_name: cents}``.
    """
    prices: dict[str, int] = {}
    for edge in problem.interaction.edges:
        if edge.principal.role.value == "consumer" and edge.provides.is_money:
            prices[edge.trusted.name] = getattr(edge.provides, "cents")
    return prices
