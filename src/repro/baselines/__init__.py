"""Comparator protocols from §7 and §8.

* :mod:`repro.baselines.direct` — naive two-message exchange; safe only
  under mutual trust.
* :mod:`repro.baselines.two_phase_commit` — textbook 2PC; agreement without
  protection (a committed cheat still harms performers).
* :mod:`repro.baselines.universal_intermediary` — §8's globally trusted
  agent; everything feasible, no indemnities.
* :mod:`repro.baselines.saga` — §7.2 sagas with compensation, and the
  acceptability bridge to the §2.3 state formalism.
"""

from repro.baselines.direct import (
    DirectOutcome,
    direct_exchange,
    direct_message_count,
    mediated_message_count,
    mistrust_overhead,
)
from repro.baselines.saga import (
    Saga,
    SagaResult,
    SagaStep,
    acceptable_to_all,
    check_saga_acceptability,
    saga_of_sequence,
)
from repro.baselines.two_phase_commit import (
    ParticipantBehavior,
    TwoPhaseOutcome,
    Vote,
    message_count,
    two_phase_commit,
)
from repro.baselines.universal_intermediary import (
    UNIVERSAL,
    UniversalOutcome,
    rewrite_to_universal,
    universal_exchange,
    universal_message_count,
)

__all__ = [
    "DirectOutcome",
    "direct_exchange",
    "direct_message_count",
    "mediated_message_count",
    "mistrust_overhead",
    "Saga",
    "SagaResult",
    "SagaStep",
    "acceptable_to_all",
    "check_saga_acceptability",
    "saga_of_sequence",
    "ParticipantBehavior",
    "TwoPhaseOutcome",
    "Vote",
    "message_count",
    "two_phase_commit",
    "UNIVERSAL",
    "UniversalOutcome",
    "rewrite_to_universal",
    "universal_exchange",
    "universal_message_count",
]
