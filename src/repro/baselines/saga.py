"""Sagas (§7.2): sequences of actions with compensations.

"A saga is a sequence of actions that result in an acceptable final system
state when they are executed.  Essentially, what we propose here is for each
agent to have its own set of acceptable sagas."  This module provides a
small saga runner — forward steps with compensating actions, reverse-order
compensation on failure — and the bridge the paper describes: checking a
recovered execution sequence against per-party acceptability.

The limitation the paper implies is also demonstrable here: a compensation
is just another action some party must *choose* to perform.  When the
compensator is the trusted intermediary (our protocols), compensation is
credible; when it is the counterparty itself (a naive saga between two
distrusting principals), a cheat simply skips it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.actions import Action
from repro.core.states import ExchangeState
from repro.errors import ProtocolError


@dataclass(frozen=True)
class SagaStep:
    """One forward action and its compensation (None = not compensatable)."""

    action: Action
    compensation: Action | None = None

    @classmethod
    def transfer(cls, action: Action) -> "SagaStep":
        """A transfer step compensated by its §2.2 inverse."""
        return cls(action=action, compensation=action.inverse())


@dataclass
class SagaResult:
    """What happened when a saga ran."""

    executed: list[Action] = field(default_factory=list)
    compensated: list[Action] = field(default_factory=list)
    failed_at: int | None = None
    compensations_skipped: list[Action] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.failed_at is None

    def final_state(self) -> ExchangeState:
        return ExchangeState.of(self.executed + self.compensated)


class Saga:
    """A forward sequence with reverse-order compensation on failure."""

    def __init__(self, steps: list[SagaStep]) -> None:
        self.steps = steps

    def run(
        self,
        fails_at: int | None = None,
        compensation_honored: Callable[[Action], bool] | None = None,
    ) -> SagaResult:
        """Execute forward; on failure at index *fails_at*, compensate back.

        *compensation_honored* models distrust: given a compensation action,
        return False when the party responsible for it refuses (the
        compensation is then recorded as skipped and the state stays dirty).
        """
        honored = compensation_honored or (lambda action: True)
        result = SagaResult()
        for index, step in enumerate(self.steps):
            if fails_at is not None and index == fails_at:
                result.failed_at = index
                break
            result.executed.append(step.action)
        if result.failed_at is None:
            return result
        for step in reversed(self.steps[: result.failed_at]):
            if step.compensation is None:
                result.compensations_skipped.append(step.action)
                continue
            if honored(step.compensation):
                result.compensated.append(step.compensation)
            else:
                result.compensations_skipped.append(step.compensation)
        return result


def saga_of_sequence(actions: list[Action]) -> Saga:
    """Build a saga whose steps are an execution sequence's transfers."""
    steps = [SagaStep.transfer(a) for a in actions if a.is_transfer]
    if not steps:
        raise ProtocolError("an empty action sequence yields no saga")
    return Saga(steps)


def acceptable_to_all(
    state: ExchangeState, specs: dict, parties: list | None = None
) -> bool:
    """Whether *state* is acceptable to every party in *specs* (§2.3)."""
    targets = parties if parties is not None else list(specs)
    return all(specs[party].accepts(state) for party in targets)


def check_saga_acceptability(
    saga: Saga,
    specs: dict,
    fails_at: int | None = None,
    compensation_honored: Callable[[Action], bool] | None = None,
) -> tuple[SagaResult, dict]:
    """Run a saga and report per-party acceptability of the final state."""
    result = saga.run(fails_at=fails_at, compensation_honored=compensation_honored)
    state = result.final_state()
    verdicts = {party: spec.accepts(state) for party, spec in specs.items()}
    return result, verdicts
