"""The universally trusted intermediary (§8).

"If a single trusted intermediary may be used for the entire system in any
exchange between two principals, then any exchange becomes feasible, without
indemnities."  Every principal ships its deposits to the one agent with a
set of constraints (the other exchanges that must occur if its own is to
occur); the agent checks that executing *all* exchanges satisfies *all*
constraints, and if so performs the whole distributed exchange atomically.

This module rewrites any exchange problem onto a single trusted component and
executes it: the result demonstrates the §8 claim on the paper's infeasible
examples (Figure 2, Figure 7, the poor broker) and provides the message-count
comparison (each principal deposit + each release = ``2·|E|`` transfers,
versus ``4`` per pairwise exchange plus notifies in the decentralized
protocol).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import Action, transfer
from repro.core.interaction import InteractionGraph
from repro.core.items import Item
from repro.core.parties import Party, trusted
from repro.core.problem import ExchangeProblem
from repro.errors import GraphError


@dataclass(frozen=True)
class UniversalOutcome:
    """Result of running an exchange through the universal intermediary."""

    problem_name: str
    feasible: bool
    messages: int
    transfers: tuple[Action, ...]
    received: dict[Party, tuple[Item, ...]]

    @property
    def completed(self) -> bool:
        return self.feasible


UNIVERSAL = trusted("Universal")


def rewrite_to_universal(problem: ExchangeProblem) -> InteractionGraph:
    """Replace every trusted component of *problem* with one shared agent.

    The pairwise structure is preserved (each original exchange becomes an
    exchange via ``Universal``), so the same goods and payments flow.
    """
    original = problem.interaction
    graph = InteractionGraph()
    for principal in original.principals:
        graph.add_principal(principal)
    graph.add_trusted(UNIVERSAL)
    for index, component in enumerate(original.trusted_components):
        left, right = original.edges_at(component)
        graph.add_edge(left.principal, UNIVERSAL, left.provides, tag=f"x{index}")
        graph.add_edge(right.principal, UNIVERSAL, right.provides, tag=f"x{index}")
    return graph


def _constraints_satisfiable(graph: InteractionGraph) -> bool:
    """The §8 check: if all exchanges execute, is every party made whole?

    With the pairwise structure preserved this reduces to every exchange
    having exactly two sides providing distinct items — which
    ``InteractionGraph`` construction already guarantees — so the check is a
    structural validation.
    """
    by_tag: dict[str, list] = {}
    for edge in graph.edges:
        by_tag.setdefault(edge.tag, []).append(edge)
    for tag, edges in by_tag.items():
        if len(edges) != 2:
            return False
        if edges[0].provides == edges[1].provides:
            return False
    return True


def universal_exchange(problem: ExchangeProblem) -> UniversalOutcome:
    """Execute *problem* through the single universally trusted agent.

    Always feasible for well-formed problems — including those the
    decentralized machinery cannot show feasible — with ``2·|E|`` messages:
    every deposit in, every entitlement out.
    """
    graph = rewrite_to_universal(problem)
    if not _constraints_satisfiable(graph):
        raise GraphError(f"{problem.name} is not a set of pairwise exchanges")

    deposits: list[Action] = []
    releases: list[Action] = []
    received: dict[Party, list[Item]] = {p: [] for p in graph.principals}
    by_tag: dict[str, list] = {}
    for edge in graph.edges:
        by_tag.setdefault(edge.tag, []).append(edge)
    for edges in by_tag.values():
        left, right = edges
        deposits.append(transfer(left.principal, UNIVERSAL, left.provides))
        deposits.append(transfer(right.principal, UNIVERSAL, right.provides))
        releases.append(transfer(UNIVERSAL, left.principal, right.provides))
        releases.append(transfer(UNIVERSAL, right.principal, left.provides))
        received[left.principal].append(right.provides)
        received[right.principal].append(left.provides)

    all_transfers = tuple(deposits + releases)
    return UniversalOutcome(
        problem_name=problem.name,
        feasible=True,
        messages=len(all_transfers),
        transfers=all_transfers,
        received={p: tuple(items) for p, items in received.items()},
    )


def universal_message_count(problem: ExchangeProblem) -> int:
    """Messages used by the universal-intermediary execution: ``2·|E|``."""
    return 2 * len(problem.interaction.edges)
