"""Naive direct exchange: the no-intermediary baseline (§1, §8).

Two mutually trusting parties "can perform an exchange with two messages —
each sending what the other wants" (§8).  Without trust, someone must move
first, and the §1 opening problem appears: "If the customer first sends the
funds, the publisher might keep them and not provide the document; if the
publisher gives the document first, the customer might refuse to pay later."

:func:`direct_exchange` plays this out deterministically for all four
honesty combinations and both move orders, producing the outcomes the safety
benchmark contrasts with the trusted-intermediary protocol: the naive scheme
harms whichever honest party moved first against a cheat.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ModelError
from repro.sim.faults import FaultPlan


@dataclass(frozen=True)
class DirectOutcome:
    """The result of one naive pairwise exchange.

    Money is in cents; ``buyer_has_good`` tracks the document.  ``buyer_ok``
    / ``seller_ok`` apply the §2.3 acceptability structure: a party is OK if
    it lost nothing, or received the counterpart value for what it gave.
    """

    messages: int
    buyer_paid: bool
    seller_delivered: bool
    buyer_has_good: bool
    seller_has_money: bool

    @property
    def buyer_ok(self) -> bool:
        if self.buyer_paid and not self.buyer_has_good:
            return False
        return True

    @property
    def seller_ok(self) -> bool:
        if self.seller_delivered and not self.seller_has_money:
            return False
        return True

    @property
    def completed(self) -> bool:
        return self.buyer_has_good and self.seller_has_money

    @property
    def all_ok(self) -> bool:
        return self.buyer_ok and self.seller_ok


def direct_exchange(
    buyer_honest: bool = True,
    seller_honest: bool = True,
    buyer_pays_first: bool = True,
) -> DirectOutcome:
    """Play the naive two-message protocol.

    The first mover always performs (that is what "first" means here); the
    second mover performs only if honest.  A dishonest party that has
    already received what it wanted simply stops.
    """
    messages = 0
    buyer_paid = False
    seller_delivered = False

    if buyer_pays_first:
        buyer_paid = True
        messages += 1
        if seller_honest:
            seller_delivered = True
            messages += 1
    else:
        seller_delivered = True
        messages += 1
        if buyer_honest:
            buyer_paid = True
            messages += 1

    return DirectOutcome(
        messages=messages,
        buyer_paid=buyer_paid,
        seller_delivered=seller_delivered,
        buyer_has_good=seller_delivered,
        seller_has_money=buyer_paid,
    )


def direct_exchange_under_faults(plan: FaultPlan) -> DirectOutcome:
    """Play the naive two-message exchange over *plan*'s unreliable wire.

    Both parties are honest here — the harm comes from the transport, which
    has no escrow to undo a half-completed exchange.  The buyer pays first;
    the payment or the countershipment may be dropped (per the plan's worst
    link drop rate, no retransmission — the naive scheme has no
    acknowledgements to retry on), and a permanently crashed party never
    performs its half.  This is the differential arm of the chaos study: the
    same fault schedules that the mediated protocol survives must provably
    hurt *someone* here, or the harness isn't detecting anything.
    """
    # An independent stream, decorrelated from the simulator's rolls so the
    # two arms of the differential see different but seed-reproducible luck.
    rng = random.Random((plan.seed << 1) ^ 0x5EED)
    drop = plan.worst_drop()
    silent = bool(plan.permanently_silent())

    messages = 0
    buyer_paid = False          # the buyer relinquished the funds
    seller_delivered = False    # the seller relinquished the good
    seller_has_money = False
    buyer_has_good = False

    messages += 1
    buyer_paid = True
    if rng.random() >= drop:                  # payment survives the wire
        seller_has_money = True
        if not silent:                        # a live seller reciprocates
            messages += 1
            seller_delivered = True
            if rng.random() >= drop:          # shipment survives the wire
                buyer_has_good = True

    return DirectOutcome(
        messages=messages,
        buyer_paid=buyer_paid,
        seller_delivered=seller_delivered,
        buyer_has_good=buyer_has_good,
        seller_has_money=seller_has_money,
    )


def direct_message_count() -> int:
    """§8: messages for one exchange between mutually trusting parties."""
    return 2


def mediated_message_count(include_notifies: bool = False) -> int:
    """§8: messages for one exchange through a trusted intermediary.

    "Four messages are required — two to the trusted intermediary, and two
    from the trusted intermediary."  The §5 machinery additionally issues up
    to one notify per exchange; pass ``include_notifies=True`` to count it.
    """
    return 5 if include_notifies else 4


def mistrust_overhead(n_exchanges: int, include_notifies: bool = False) -> float:
    """Message-cost ratio mediated/direct for *n_exchanges* exchanges (§8)."""
    if n_exchanges < 1:
        raise ModelError("need at least one exchange")
    mediated = mediated_message_count(include_notifies) * n_exchanges
    direct = direct_message_count() * n_exchanges
    return mediated / direct
