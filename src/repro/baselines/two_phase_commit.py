"""Two-phase commit over mutually distrusting principals (§7.1).

The paper's point: 2PC solves a *different* problem.  It assumes every node
runs the agreed protocol ("a single designer has control over the programs
that each process is running") and that all share one consistency goal.  In
a commerce exchange each principal has its own acceptable outcomes, and a
participant that votes COMMIT and then keeps the goods faces no mechanism
that protects the others.

This module implements textbook 2PC with a coordinator and voting
participants, then lets participants *defect after voting commit*: the vote
costs a cheat nothing, the transfers are not escrowed, and honest parties
that performed their transfers lose them.  Contrast with the sequencing-graph
protocol, where the same defection leaves every honest party whole (see the
SAFE benchmark).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.parties import Party
from repro.core.problem import ExchangeProblem


class Vote(enum.Enum):
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class ParticipantBehavior:
    """How one principal behaves under 2PC.

    ``vote`` — its phase-1 answer; ``performs`` — whether it actually
    executes its transfers after a global COMMIT (a Byzantine participant
    votes COMMIT and then reneges).
    """

    vote: Vote = Vote.COMMIT
    performs: bool = True


@dataclass(frozen=True)
class TwoPhaseOutcome:
    """Result of one 2PC round over an exchange problem."""

    problem_name: str
    decision: Vote
    messages: int
    performed: frozenset[Party]
    harmed: frozenset[Party]

    @property
    def all_safe(self) -> bool:
        return not self.harmed


def two_phase_commit(
    problem: ExchangeProblem,
    behaviors: dict[str, ParticipantBehavior] | None = None,
) -> TwoPhaseOutcome:
    """Run 2PC over the principals of *problem*.

    Message count is the textbook ``4·n`` (prepare, vote, decision, ack) for
    *n* participants.  On COMMIT, each principal with ``performs=True``
    executes its deposits directly to its counterparts; a principal is
    *harmed* when it performed but some counterpart on one of its exchanges
    did not.
    """
    behaviors = behaviors or {}
    principals = list(problem.interaction.principals)
    n = len(principals)
    messages = 4 * n

    votes = {
        p: behaviors.get(p.name, ParticipantBehavior()).vote for p in principals
    }
    decision = (
        Vote.COMMIT if all(v is Vote.COMMIT for v in votes.values()) else Vote.ABORT
    )
    if decision is Vote.ABORT:
        return TwoPhaseOutcome(
            problem_name=problem.name,
            decision=decision,
            messages=messages,
            performed=frozenset(),
            harmed=frozenset(),
        )

    performed = frozenset(
        p
        for p in principals
        if behaviors.get(p.name, ParticipantBehavior()).performs
    )
    # Direct transfers (no escrow): each performing principal sends its item
    # one message per interaction edge it owns.
    messages += sum(
        1 for e in problem.interaction.edges if e.principal in performed
    )

    harmed = set()
    for edge in problem.interaction.edges:
        if edge.principal not in performed:
            continue
        counterparts = problem.interaction.counterparts(edge)
        if any(c.principal not in performed for c in counterparts):
            harmed.add(edge.principal)
    return TwoPhaseOutcome(
        problem_name=problem.name,
        decision=decision,
        messages=messages,
        performed=performed,
        harmed=frozenset(harmed),
    )


def message_count(n_participants: int) -> int:
    """Control messages for one 2PC round: prepare + vote + decision + ack."""
    return 4 * n_participants
