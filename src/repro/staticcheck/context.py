"""Per-file analysis context for the AST lint passes.

One :class:`FileContext` is built per linted file: the parsed tree, a
child-to-parent map (the stdlib AST has no parent links), resolved import
aliases, and the per-line suppression table.  Rules receive the context and
yield findings; everything here is derived once so each rule stays a small
pure visitor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.staticcheck.suppress import expand_over_statements, suppressed_rules


@dataclass
class FileContext:
    """Everything a rule needs to analyze one source file."""

    path: str
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    # module alias -> real module name, e.g. {"rnd": "random", "time": "time"}
    module_aliases: dict[str, str] = field(default_factory=dict)
    # bare name -> "module.attr" for `from module import attr [as name]`
    from_imports: dict[str, str] = field(default_factory=dict)
    # Widened over multi-line simple statements: what the engine filters by.
    suppressions: dict[int, frozenset[str] | None] = field(default_factory=dict)
    # One entry per physical marker comment: what NOQA001 validates.
    noqa_lines: dict[int, frozenset[str] | None] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str) -> "FileContext":
        """Parse *source* and derive parent links, imports, suppressions."""
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree)
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[child] = node
        ctx._collect_imports()
        ctx.noqa_lines = suppressed_rules(source)
        ctx.suppressions = expand_over_statements(ctx.noqa_lines, tree)
        return ctx

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # ----------------------------------------------------------------- lookup

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The direct parent of *node*, or None at module level."""
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from *node*'s parent up to the module root."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function/method containing *node*, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def inside_fstring(self, node: ast.AST) -> bool:
        """Whether *node* sits inside an f-string formatted value."""
        return any(
            isinstance(ancestor, ast.JoinedStr) for ancestor in self.ancestors(node)
        )

    def resolve_call(self, node: ast.Call) -> tuple[str, ...] | None:
        """The dotted path a call resolves to, import-aware.

        ``time.time()`` with ``import time`` yields ``("time", "time")``;
        ``datetime.datetime.now()`` yields ``("datetime", "datetime", "now")``;
        ``choice(...)`` after ``from random import choice`` yields
        ``("random", "choice")``.  Returns None for calls whose target is not
        a plain dotted name (subscripts, call results, lambdas).
        """
        func = node.func
        parts: list[str] = []
        while isinstance(func, ast.Attribute):
            parts.append(func.attr)
            func = func.value
        if not isinstance(func, ast.Name):
            return None
        root = func.id
        parts.reverse()
        if not parts:
            dotted = self.from_imports.get(root)
            if dotted is not None:
                return tuple(dotted.split("."))
            return (root,)
        real = self.module_aliases.get(root)
        if real is not None:
            return tuple(real.split(".")) + tuple(parts)
        dotted = self.from_imports.get(root)
        if dotted is not None:
            return tuple(dotted.split(".")) + tuple(parts)
        return (root, *parts)
