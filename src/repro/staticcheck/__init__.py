"""Determinism & safety static analysis for the repro codebase.

The dynamic suites (chaos, conformance fuzzing) prove determinism by
running; this package proves the *preconditions* for determinism without
running anything: no unseeded randomness or wall-clock reads in the
deterministic packages, no unordered ``set`` iteration feeding digests or
renderers, no out-of-module mutation of frozen dataclasses, no float ledger
math, no exception-based control flow.  ``repro lint`` is the CLI entry;
DESIGN.md §10 is the rule catalogue.
"""

from repro.staticcheck.baseline import (
    apply_baseline,
    finding_key,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.context import FileContext
from repro.staticcheck.engine import (
    NOQA_RULE,
    PARSE_RULE,
    SPEC_ERROR_RULE,
    error_count,
    expand_paths,
    lint_paths,
    lint_python_source,
    lint_spec_source,
    self_check,
)
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.report import render_human, render_json, render_sarif
from repro.staticcheck.rules import REGISTRY, Rule, default_rules, register

# Importing the flow rule module registers NET001/ASY001/ASY002/LEDG001 in
# REGISTRY alongside the per-statement rules (DESIGN.md §14).
from repro.staticcheck.flow import rules as _flow_rules  # noqa: E402,F401

__all__ = [
    "FileContext",
    "Finding",
    "NOQA_RULE",
    "PARSE_RULE",
    "REGISTRY",
    "Rule",
    "SPEC_ERROR_RULE",
    "Severity",
    "apply_baseline",
    "default_rules",
    "error_count",
    "expand_paths",
    "finding_key",
    "lint_paths",
    "lint_python_source",
    "lint_spec_source",
    "load_baseline",
    "register",
    "render_human",
    "render_json",
    "render_sarif",
    "self_check",
    "write_baseline",
]
