"""Finding model shared by the AST lint passes and the spec warning tier.

A :class:`Finding` is one diagnostic anchored to a source position.  Both
producers — the :mod:`repro.staticcheck.rules` AST passes run over our own
Python source and the :func:`repro.spec.analyzer.analyze_warnings` tier run
over user ``.exchange`` specs — emit this same shape, so the reporters in
:mod:`repro.staticcheck.report` serve one diagnostics pipeline for both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding gates the exit code.

    ``ERROR`` findings make ``repro lint`` exit 1; ``WARNING`` findings (the
    spec warning tier) are surfaced but advisory — they never fail a build on
    their own.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation (or spec warning) at a position."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    suggestion: str = ""
    severity: Severity = Severity.ERROR

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report order: path, then position, then rule."""
        return (self.path, self.line, self.column, self.rule)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (stable key order via sort_keys later)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "suggestion": self.suggestion,
        }
