"""Project-specific AST lint passes.

Every rule guards an invariant the dynamic test suites can only check by
running: replayable fault plans and serial==``--jobs`` fuzz digests require
that no unseeded randomness, wall-clock read, or unordered ``set`` iteration
reaches a digest, renderer, or serialized report.  The rules are deliberately
narrow — each one states exactly what it matches, and anything cleverer than
the documented heuristic belongs in a new rule, not a broader regex.

Rule catalogue (see DESIGN.md §10 for rationale and examples):

* **DET001** — unseeded nondeterminism source (``random.*`` module
  functions, ``time.time``/``monotonic``/``perf_counter``,
  ``datetime.now``-family, ``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``) inside the deterministic packages (``core``, ``sim``,
  ``conformance``).  Seeded ``random.Random(seed)`` instances are the
  sanctioned alternative and never flagged.
* **DET002** — iteration over a ``set``/``frozenset`` expression inside an
  ordered-output sink (functions named like ``digest``/``describe``/
  ``to_dict``/``render``/``payload``… — the last covering the flatcore
  bench-artifact builders — or anything in ``viz/``) without an explicit
  ``sorted(...)``.  Set iteration order depends on ``PYTHONHASHSEED``, so it
  silently breaks cross-process digest equality.
* **MUT001** — ``object.__setattr__`` on anything other than ``self``:
  mutating a frozen/``__slots__`` dataclass from outside its own methods.
* **MONEY001** — float arithmetic on ledger amounts (names containing
  ``cents``): true division, mixing with float literals, or ``float(...)``
  coercion.  Display conversions inside f-strings or ``*dollar*`` helpers
  are exempt — money stays in integer cents everywhere else.
* **EXC001** — exception constructs used for control flow in library code:
  bare ``except:``, catching ``AssertionError``, or a broad
  ``except Exception: pass`` that silently swallows failures.
* **OBS001** — span lifecycle discipline: outside ``repro/obs`` the only
  legal way to open a tracing span is the context-manager form
  ``with tracer.span(...):`` (closed on every path, exceptions included).
  Imperative ``.start_span()``/``.end_span()`` calls, and ``.span(...)``
  used anywhere but as a ``with`` context item, are flagged.  The
  imperative pair exists for event-driven lifetimes (a message span opens
  at send, closes at delivery) and is confined to ``repro.obs.messages``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.staticcheck.context import FileContext
from repro.staticcheck.model import Finding, Severity


class Rule:
    """Base class: one registered lint pass.

    Subclasses set the class attributes and implement :meth:`visit`.
    ``restrict_to`` names path segments (package directories) the rule is
    scoped to; ``None`` applies everywhere.
    """

    code: str = ""
    title: str = ""
    suggestion: str = ""
    restrict_to: tuple[str, ...] | None = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on *path* (segment-based package gate)."""
        if self.restrict_to is None:
            return True
        segments = re.split(r"[\\/]", path)
        return any(segment in self.restrict_to for segment in segments)

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """A Finding anchored at *node* with this rule's code/suggestion."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            message=message,
            suggestion=self.suggestion,
            severity=Severity.ERROR,
        )


REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if rule_class.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule_class.code!r}")
    REGISTRY[rule_class.code] = rule_class
    return rule_class


def default_rules(select: tuple[str, ...] | None = None) -> tuple[Rule, ...]:
    """Instantiate the registered rules (optionally only *select* codes)."""
    if select is None:
        codes = sorted(REGISTRY)
    else:
        unknown = sorted(set(select) - set(REGISTRY))
        if unknown:
            raise KeyError(", ".join(unknown))
        codes = sorted(select)
    return tuple(REGISTRY[code]() for code in codes)


# --------------------------------------------------------------------- DET001

_WALL_CLOCK_TAILS: frozenset[tuple[str, str]] = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

_UNSEEDED_RANDOM = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "getrandbits",
        "seed",
        "betavariate",
        "expovariate",
        "triangular",
    }
)


@register
class UnseededNondeterminism(Rule):
    """DET001: wall-clock reads and module-level randomness in core packages."""

    code = "DET001"
    title = "unseeded nondeterminism source in a deterministic package"
    suggestion = (
        "thread a seeded random.Random through the call chain, or take the "
        "current time from the event loop / provenance layer"
    )
    restrict_to = ("core", "sim", "conformance")

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.resolve_call(node)
            if dotted is None:
                continue
            tail = tuple(dotted[-2:])
            if tail in _WALL_CLOCK_TAILS:
                yield self.finding(
                    ctx, node, f"wall-clock read {'.'.join(dotted)}() — "
                    "replay would observe a different value"
                )
            elif (
                len(dotted) == 2
                and dotted[0] == "random"
                and dotted[1] in _UNSEEDED_RANDOM
            ):
                yield self.finding(
                    ctx, node, f"unseeded module-level random.{dotted[1]}() — "
                    "use an explicitly seeded random.Random instance"
                )
            elif dotted[0] == "secrets" and len(dotted) > 1:
                yield self.finding(
                    ctx, node, f"{'.'.join(dotted)}() draws from the OS entropy "
                    "pool and can never replay"
                )
            elif tuple(dotted) in {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}:
                yield self.finding(
                    ctx, node, f"{'.'.join(dotted)}() is nondeterministic — "
                    "derive identifiers from the run seed instead"
                )


# --------------------------------------------------------------------- DET002

_SINK_NAME_RE = re.compile(
    r"digest|canonical|fingerprint|describe|to_dict|to_json|render|serialize"
    r"|summary|__str__|_text$|_dot$|format|payload"
)

_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset", "bool"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)


def _is_set_expr(node: ast.expr, known_names: set[str] | frozenset[str]) -> bool:
    """Whether *node* is syntactically a set: literal, constructor, algebra
    over sets, set-returning method, or a name known to hold one."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return _is_set_expr(node.func.value, known_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, known_names) or _is_set_expr(
            node.right, known_names
        )
    return False


@register
class UnorderedIterationInSink(Rule):
    """DET002: set iteration feeding digests/renderers/serialized output."""

    code = "DET002"
    title = "unordered set iteration in an ordered-output sink"
    suggestion = "wrap the iterable in sorted(...) with a total, stable key"

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        in_viz = any(segment == "viz" for segment in re.split(r"[\\/]", ctx.path))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not (in_viz or _SINK_NAME_RE.search(node.name)):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        set_names = self._known_set_names(func)

        def is_set(node: ast.expr) -> bool:
            return _is_set_expr(node, set_names)

        for node in ast.walk(func):
            if isinstance(node, ast.For) and is_set(node.iter):
                yield self.finding(
                    ctx, node.iter, "for-loop over a set expression inside "
                    f"ordered-output sink {func.name!r}"
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._consumed_order_insensitively(ctx, node):
                    continue
                for generator in node.generators:
                    if is_set(generator.iter):
                        yield self.finding(
                            ctx, generator.iter, "comprehension over a set "
                            f"expression inside ordered-output sink {func.name!r}"
                        )
            elif isinstance(node, ast.Call):
                direct_sink = (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "join"
                ) or (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                )
                if direct_sink:
                    for arg in node.args:
                        if is_set(arg):
                            yield self.finding(
                                ctx, arg, "set expression passed directly to an "
                                f"order-sensitive consumer inside {func.name!r}"
                            )

    def _consumed_order_insensitively(
        self, ctx: FileContext, node: ast.AST
    ) -> bool:
        """Whether a comprehension's order is discarded (e.g. sorted(...))."""
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE
        )

    def _known_set_names(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> frozenset[str]:
        """Names assigned a syntactically-set value anywhere in *func*.

        Runs to a fixpoint so chained assignments (``a = set(x); b = a | c``)
        are tracked through set-algebra expressions.
        """
        assignments: list[tuple[str, ast.expr]] = []
        for node in ast.walk(func):
            value: ast.expr | None = None
            target: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if isinstance(target, ast.Name) and value is not None:
                assignments.append((target.id, value))
        names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, value in assignments:
                if name not in names and _is_set_expr(value, names):
                    names.add(name)
                    changed = True
        return frozenset(names)


# --------------------------------------------------------------------- MUT001

@register
class FrozenMutationOutsideOwner(Rule):
    """MUT001: object.__setattr__ aimed at anything other than self."""

    code = "MUT001"
    title = "frozen/__slots__ instance mutated outside its own methods"
    suggestion = (
        "add an evolver classmethod (or dataclasses.replace) on the owning "
        "module instead of reaching into the frozen instance"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            if node.args and isinstance(node.args[0], ast.Name) and (
                node.args[0].id == "self"
            ):
                continue
            yield self.finding(
                ctx, node, "object.__setattr__ on a non-self target mutates a "
                "frozen instance from outside its own methods"
            )


# ------------------------------------------------------------------- MONEY001

_MONEY_HINT_RE = re.compile(r"cents", re.IGNORECASE)
_DOLLAR_CONTEXT_RE = re.compile(r"dollar", re.IGNORECASE)


def _name_hint(node: ast.expr) -> str:
    """A best-effort identifier for money-name matching."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return ""


@register
class FloatMoneyArithmetic(Rule):
    """MONEY001: float arithmetic on integer-cents ledger amounts."""

    code = "MONEY001"
    title = "float arithmetic on a ledger amount"
    suggestion = (
        "keep ledger amounts in integer cents (use //, or scale explicitly); "
        "convert to dollars only at the display boundary"
    )

    def _display_exempt(self, ctx: FileContext, node: ast.AST) -> bool:
        """Inside an f-string or a *dollar* helper: display conversion, ok."""
        if ctx.inside_fstring(node):
            return True
        func = ctx.enclosing_function(node)
        return func is not None and bool(_DOLLAR_CONTEXT_RE.search(func.name))

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                left_money = bool(_MONEY_HINT_RE.search(_name_hint(node.left)))
                right_money = bool(_MONEY_HINT_RE.search(_name_hint(node.right)))
                if not (left_money or right_money):
                    continue
                if isinstance(node.op, ast.Div):
                    if not self._display_exempt(ctx, node):
                        yield self.finding(
                            ctx, node, "true division on a cents amount yields "
                            "a float — ledger math must stay in integer cents"
                        )
                elif isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
                    other = node.right if left_money else node.left
                    if (
                        isinstance(other, ast.Constant)
                        and isinstance(other.value, float)
                        and not self._display_exempt(ctx, node)
                    ):
                        yield self.finding(
                            ctx, node, "arithmetic mixes a cents amount with a "
                            "float literal"
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                    and node.args
                    and _MONEY_HINT_RE.search(_name_hint(node.args[0]))
                    and not self._display_exempt(ctx, node)
                ):
                    yield self.finding(
                        ctx, node, "float(...) coercion of a cents amount"
                    )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, ast.Div) and _MONEY_HINT_RE.search(
                    _name_hint(node.target)
                ):
                    yield self.finding(
                        ctx, node, "in-place true division on a cents amount"
                    )


# --------------------------------------------------------------------- OBS001

@register
class SpanLifecycleDiscipline(Rule):
    """OBS001: spans opened outside the context-manager discipline.

    Narrow by design: matches attribute calls named ``start_span``/
    ``end_span`` anywhere, and attribute calls named ``span`` that are not
    the context expression of a ``with`` item.  ``repro/obs`` itself is
    exempt (the imperative pair is implemented and legitimately used there).
    """

    code = "OBS001"
    title = "tracing span not closed on all paths"
    suggestion = (
        "open spans with 'with tracer.span(...) as span_id:' so every exit "
        "path closes them; the imperative start_span/end_span pair is "
        "reserved for repro.obs internals"
    )

    def applies_to(self, path: str) -> bool:
        segments = re.split(r"[\\/]", path)
        return "obs" not in segments

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in ("start_span", "end_span"):
                yield self.finding(
                    ctx, node, f"imperative {func.attr}() outside repro.obs — "
                    "an exception between open and close leaks the span"
                )
            elif func.attr == "span":
                parent = ctx.parent(node)
                if (
                    isinstance(parent, ast.withitem)
                    and parent.context_expr is node
                ):
                    continue
                yield self.finding(
                    ctx, node, ".span(...) outside a with-statement — the "
                    "span is not guaranteed to close on every path"
                )


# --------------------------------------------------------------------- EXC001

def _catches_assertion_error(handler: ast.ExceptHandler) -> bool:
    kind = handler.type
    names: list[ast.expr] = []
    if isinstance(kind, ast.Tuple):
        names = list(kind.elts)
    elif kind is not None:
        names = [kind]
    return any(
        isinstance(name, ast.Name) and name.id == "AssertionError"
        for name in names
    )


@register
class ExceptionControlFlow(Rule):
    """EXC001: bare except / assert-driven control flow in library code."""

    code = "EXC001"
    title = "exception machinery used for control flow"
    suggestion = (
        "catch the narrowest concrete exception and handle it explicitly; "
        "raise a ReproError subclass instead of asserting"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node, "bare except: catches SystemExit and "
                    "KeyboardInterrupt along with everything else"
                )
                continue
            if _catches_assertion_error(node):
                yield self.finding(
                    ctx, node, "catching AssertionError turns asserts into "
                    "control flow — asserts vanish under python -O"
                )
                continue
            broad = (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            only_pass = len(node.body) == 1 and isinstance(node.body[0], ast.Pass)
            if broad and only_pass:
                yield self.finding(
                    ctx, node, "broad except with a bare pass silently "
                    "swallows every failure"
                )
