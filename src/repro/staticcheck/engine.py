"""Lint engine: path expansion, rule dispatch, suppression filtering.

The engine is file-type aware so our own Python source and user
``.exchange`` specs share one diagnostics pipeline (ISSUE: one reporter for
both).  ``.py`` files get the AST passes from :mod:`repro.staticcheck.rules`;
``.exchange`` files get the spec semantic checks plus the non-fatal warning
tier from :func:`repro.spec.analyzer.analyze_warnings`.

Only ``Severity.ERROR`` findings gate the exit code; spec warnings are
advisory by design.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import SpecError, StaticCheckError
from repro.staticcheck.context import FileContext
from repro.staticcheck.model import Finding, Severity
from repro.staticcheck.rules import Rule, default_rules
from repro.staticcheck.suppress import is_suppressed

#: Rule code attached to files the linter cannot parse at all.
PARSE_RULE = "PARSE001"
#: Rule code attached to spec files that fail semantic analysis outright.
SPEC_ERROR_RULE = "SPEC000"
#: Rule code warning about unknown rule codes inside a noqa marker.
NOQA_RULE = "NOQA001"


def expand_paths(paths: Iterable[str]) -> tuple[Path, ...]:
    """Resolve *paths* to the lintable files beneath them, deterministically.

    Directories are searched recursively for ``*.py`` and ``*.exchange``
    files (``__pycache__`` skipped); a missing path raises
    :class:`StaticCheckError` (a usage error — exit code 2 at the CLI).
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for pattern in ("*.py", "*.exchange"):
                files.extend(
                    candidate
                    for candidate in sorted(path.rglob(pattern))
                    if "__pycache__" not in candidate.parts
                )
        elif path.is_file():
            files.append(path)
        else:
            raise StaticCheckError(f"no such file or directory: {raw!r}")
    return tuple(dict.fromkeys(files))


def lint_python_source(
    path: str, source: str, rules: tuple[Rule, ...]
) -> list[Finding]:
    """Run the applicable AST rules over one Python source buffer."""
    try:
        ctx = FileContext.build(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                rule=PARSE_RULE,
                message=f"cannot parse: {exc.msg}",
            )
        ]
    findings = [
        finding
        for rule in rules
        if rule.applies_to(path)
        for finding in rule.visit(ctx)
    ]
    findings.extend(_unknown_noqa_codes(ctx))
    return [
        finding
        for finding in findings
        if not is_suppressed(ctx.suppressions, finding.line, finding.rule)
    ]


def _unknown_noqa_codes(ctx: FileContext) -> Iterator[Finding]:
    """WARNING findings for noqa markers naming codes nothing can emit.

    A typo'd waiver (``noqa[DET01]``) otherwise passes silently and the
    finding it meant to suppress fails the build somewhere else — or
    worse, the waiver outlives the rule it named.  Checked against the
    full registry (not the ``--select`` subset) plus the engine's own
    synthetic codes.
    """
    from repro.staticcheck.rules import REGISTRY

    known = set(REGISTRY) | {PARSE_RULE, SPEC_ERROR_RULE, NOQA_RULE}
    for line in sorted(ctx.noqa_lines):
        codes = ctx.noqa_lines[line]
        if codes is None:
            continue  # the bare form names nothing to validate
        for code in sorted(codes - known):
            yield Finding(
                path=ctx.path,
                line=line,
                column=1,
                rule=NOQA_RULE,
                message=(
                    f"noqa marker names unknown rule code {code!r} — "
                    "it suppresses nothing"
                ),
                suggestion="fix the code, or drop it from the marker",
                severity=Severity.WARNING,
            )


def lint_spec_source(path: str, source: str) -> list[Finding]:
    """Semantic errors + the non-fatal warning tier for one ``.exchange`` file."""
    # Imported lazily: the spec analyzer imports staticcheck.model for its
    # warning tier, so a module-level import here would be circular.
    from repro.spec.analyzer import analyze, analyze_warnings
    from repro.spec.parser import parse

    try:
        spec = parse(source)
        analyze(spec)
    except SpecError as exc:
        return [
            Finding(
                path=path,
                line=exc.line or 1,
                column=exc.column or 1,
                rule=SPEC_ERROR_RULE,
                message=str(exc),
            )
        ]
    return analyze_warnings(spec, path=path)


def _lint_file(path: Path, rules: tuple[Rule, ...]) -> Iterator[Finding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise StaticCheckError(f"cannot read {path}: {exc}") from exc
    if path.suffix == ".exchange":
        yield from lint_spec_source(str(path), source)
    else:
        yield from lint_python_source(str(path), source, rules)


def lint_paths(
    paths: Iterable[str], select: tuple[str, ...] | None = None
) -> list[Finding]:
    """Lint every file under *paths*; returns findings in report order."""
    try:
        rules = default_rules(select)
    except KeyError as exc:
        raise StaticCheckError(f"unknown rule(s): {exc.args[0]}") from exc
    findings: list[Finding] = []
    for path in expand_paths(paths):
        findings.extend(_lint_file(path, rules))
    return sorted(findings, key=lambda finding: finding.sort_key)


def error_count(findings: Iterable[Finding]) -> int:
    """How many findings gate the exit code (warnings are advisory)."""
    return sum(1 for finding in findings if finding.severity is Severity.ERROR)


def self_check() -> None:
    """Assert the rule registry is well-formed (used by the test suite)."""
    rules = default_rules()
    codes = [rule.code for rule in rules]
    if len(set(codes)) != len(codes):
        raise StaticCheckError("duplicate rule codes in registry")
    for rule in rules:
        if not rule.code or not rule.title:
            raise StaticCheckError(f"rule {type(rule).__name__} lacks metadata")
        # Every rule must at least parse an empty module without findings.
        ctx = FileContext.build("<self-check>", "")
        if list(rule.visit(ctx)):
            raise StaticCheckError(f"rule {rule.code} fires on an empty module")
    # ast module must expose everything the visitors rely on (guards against
    # running under an unexpectedly old interpreter).
    for name in ("walk", "iter_child_nodes", "JoinedStr"):
        if not hasattr(ast, name):  # pragma: no cover - interpreter guard
            raise StaticCheckError(f"ast.{name} unavailable")
