"""Finding baselines: accept the recorded debt, fail only on regressions.

``repro lint --write-baseline --baseline f.json`` records the current
findings; subsequent ``repro lint --baseline f.json`` runs subtract them
and gate only on what is *new*.  Identity is deliberately line-insensitive
— ``(path, rule, message)`` with multiplicity — so editing an unrelated
part of a file does not churn the baseline, while a genuinely new finding
(or a second copy of an old one) still fails the build.

The file format is versioned JSON with sorted keys, diffable in review
like every other artifact this repo emits.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable

from repro.errors import StaticCheckError
from repro.staticcheck.model import Finding

_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Line-insensitive identity: same file, same rule, same message."""
    path = finding.path.replace("\\", "/")
    return f"{path}::{finding.rule}::{finding.message}"


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Record *findings* (with multiplicity) at *path*; returns the count."""
    counts = Counter(finding_key(finding) for finding in findings)
    payload = {
        "version": _VERSION,
        "entries": dict(sorted(counts.items())),
    }
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        raise StaticCheckError(f"cannot write baseline {path}: {exc}") from exc
    return sum(counts.values())


def load_baseline(path: str) -> Counter[str]:
    """Parse a baseline file; usage errors raise :class:`StaticCheckError`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise StaticCheckError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StaticCheckError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise StaticCheckError(
            f"baseline {path} has unsupported format "
            f"(expected version {_VERSION})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise StaticCheckError(f"baseline {path} lacks an 'entries' object")
    counts: Counter[str] = Counter()
    for key, value in entries.items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 1:
            raise StaticCheckError(f"baseline {path} has a malformed entry: {key!r}")
        counts[key] = value
    return counts


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter[str]
) -> tuple[list[Finding], int]:
    """Split *findings* into (new, suppressed-count) against *baseline*.

    Each baseline entry absorbs up to its recorded multiplicity; findings
    beyond that count are regressions and pass through.
    """
    budget = Counter(baseline)
    fresh: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding_key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
