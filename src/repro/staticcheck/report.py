"""Human and JSON reporters for lint findings and spec warnings.

Both producers emit :class:`repro.staticcheck.model.Finding`, so one pair of
reporters covers ``repro lint`` on Python source and on ``.exchange`` specs.
Output is deterministic: findings arrive pre-sorted from the engine and the
JSON form uses sorted keys, so reports are directly diffable and digestable.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.staticcheck.model import Finding, Severity


def render_human(
    findings: Iterable[Finding], fix_suggestions: bool = False
) -> list[str]:
    """One line per finding (plus an optional ``fix:`` line), then a summary."""
    lines: list[str] = []
    errors = warnings = 0
    for finding in findings:
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
        tag = finding.severity.value
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column}: "
            f"{tag} {finding.rule} {finding.message}"
        )
        if fix_suggestions and finding.suggestion:
            lines.append(f"    fix: {finding.suggestion}")
    if errors or warnings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return lines


def render_json(findings: Iterable[Finding]) -> str:
    """A stable JSON document: counts plus the full finding list."""
    items = [finding.to_dict() for finding in findings]
    payload = {
        "errors": sum(1 for f in items if f["severity"] == Severity.ERROR.value),
        "warnings": sum(1 for f in items if f["severity"] == Severity.WARNING.value),
        "count": len(items),
        "findings": items,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(findings: Iterable[Finding]) -> str:
    """A minimal SARIF 2.1.0 log, deterministic like the JSON reporter.

    One run, one ``repro-lint`` driver; rule metadata (title/suggestion)
    comes from the registry for the codes that actually fired, so the log
    is self-describing without embedding the whole catalogue.  CI uploads
    this so findings can annotate pull requests.
    """
    # Imported here, not at module top: rules.py imports model.py, and the
    # registry is only needed when a SARIF log is actually rendered.
    from repro.staticcheck.rules import REGISTRY

    materialized = list(findings)
    fired = sorted({finding.rule for finding in materialized})
    rules_meta = []
    for code in fired:
        rule_class = REGISTRY.get(code)
        meta: dict[str, object] = {"id": code}
        if rule_class is not None:
            meta["shortDescription"] = {"text": rule_class.title}
            if rule_class.suggestion:
                meta["help"] = {"text": rule_class.suggestion}
        rules_meta.append(meta)
    results = [
        {
            "ruleId": finding.rule,
            "level": "error" if finding.severity is Severity.ERROR else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        for finding in materialized
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "DESIGN.md",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
