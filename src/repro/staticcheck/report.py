"""Human and JSON reporters for lint findings and spec warnings.

Both producers emit :class:`repro.staticcheck.model.Finding`, so one pair of
reporters covers ``repro lint`` on Python source and on ``.exchange`` specs.
Output is deterministic: findings arrive pre-sorted from the engine and the
JSON form uses sorted keys, so reports are directly diffable and digestable.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.staticcheck.model import Finding, Severity


def render_human(
    findings: Iterable[Finding], fix_suggestions: bool = False
) -> list[str]:
    """One line per finding (plus an optional ``fix:`` line), then a summary."""
    lines: list[str] = []
    errors = warnings = 0
    for finding in findings:
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
        tag = finding.severity.value
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column}: "
            f"{tag} {finding.rule} {finding.message}"
        )
        if fix_suggestions and finding.suggestion:
            lines.append(f"    fix: {finding.suggestion}")
    if errors or warnings:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return lines


def render_json(findings: Iterable[Finding]) -> str:
    """A stable JSON document: counts plus the full finding list."""
    items = [finding.to_dict() for finding in findings]
    payload = {
        "errors": sum(1 for f in items if f["severity"] == Severity.ERROR.value),
        "warnings": sum(1 for f in items if f["severity"] == Severity.WARNING.value),
        "count": len(items),
        "findings": items,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
