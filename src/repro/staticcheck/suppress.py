"""Per-line suppression of lint findings.

A finding is suppressed when its source line carries a marker comment::

    risky_call()  # repro: noqa[DET001]
    other_call()  # repro: noqa[DET001, MONEY001]
    anything()    # repro: noqa

The bracketed form silences only the named rules; the bare form silences
every rule on that line.  Suppressions are deliberately line-scoped — there
is no file- or block-level escape hatch, so every waived finding stays
visible next to the code it waives (the suppression policy is documented in
DESIGN.md §10).

One widening: a marker on any physical line of a *multi-line simple
statement* (a wrapped call, a parenthesized expression) covers the whole
statement — findings anchor at the statement's first line, which is often
not the line with room for the comment.  Compound statements (``if``,
``for``, ``try`` …) are NOT widened: a marker on their header must not
silence their entire body.

Unknown rule codes in a marker are *not* silently inert: the engine emits
a ``NOQA001`` warning for each (see :mod:`repro.staticcheck.engine`), so a
typo like ``noqa[DET01]`` is caught instead of shipping a dead waiver.
"""

from __future__ import annotations

import ast
import re

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def suppressed_rules(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to their suppressed rule codes.

    A value of ``None`` means *all* rules are suppressed on that line.
    Lines without a marker are absent from the map.
    """
    table: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            codes = frozenset(
                code.strip().upper() for code in rules.split(",") if code.strip()
            )
            table[lineno] = codes or None
    return table


def is_suppressed(
    table: dict[int, frozenset[str] | None], line: int, rule: str
) -> bool:
    """Whether *rule* is suppressed on *line* according to *table*."""
    if line not in table:
        return False
    codes = table[line]
    return codes is None or rule.upper() in codes


# ast.TryStar is 3.11+; resolved via getattr so type checking under older
# python_version settings stays clean.
_TRY_STAR = getattr(ast, "TryStar", None)
_COMPOUND_STMTS: tuple[type[ast.stmt], ...] = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
) + ((_TRY_STAR,) if _TRY_STAR is not None else ())


def expand_over_statements(
    table: dict[int, frozenset[str] | None], tree: ast.Module
) -> dict[int, frozenset[str] | None]:
    """Widen markers on continuation lines to their whole simple statement.

    For every *simple* statement spanning several physical lines, markers
    found on any of its lines apply to all of them (``None`` — the bare
    form — wins over any code set).  Compound statements are skipped so a
    header marker cannot blanket its body.  The input table is unchanged;
    the widened copy is returned.
    """
    widened: dict[int, frozenset[str] | None] = dict(table)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or isinstance(node, _COMPOUND_STMTS):
            continue
        end = node.end_lineno
        if end is None or end <= node.lineno:
            continue
        span = range(node.lineno, end + 1)
        merged: frozenset[str] | None = frozenset()
        found = False
        for line in span:
            if line not in table:
                continue
            found = True
            codes = table[line]
            if codes is None or merged is None:
                merged = None
            else:
                merged = merged | codes
        if not found:
            continue
        for line in span:
            existing = widened.get(line, frozenset())
            if merged is None or existing is None:
                widened[line] = None
            else:
                widened[line] = existing | merged
    return widened
