"""Per-line suppression of lint findings.

A finding is suppressed when its source line carries a marker comment::

    risky_call()  # repro: noqa[DET001]
    other_call()  # repro: noqa[DET001, MONEY001]
    anything()    # repro: noqa

The bracketed form silences only the named rules; the bare form silences
every rule on that line.  Suppressions are deliberately line-scoped — there
is no file- or block-level escape hatch, so every waived finding stays
visible next to the code it waives (the suppression policy is documented in
DESIGN.md §10).
"""

from __future__ import annotations

import re

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


def suppressed_rules(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to their suppressed rule codes.

    A value of ``None`` means *all* rules are suppressed on that line.
    Lines without a marker are absent from the map.
    """
    table: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = None
        else:
            codes = frozenset(
                code.strip().upper() for code in rules.split(",") if code.strip()
            )
            table[lineno] = codes or None
    return table


def is_suppressed(
    table: dict[int, frozenset[str] | None], line: int, rule: str
) -> bool:
    """Whether *rule* is suppressed on *line* according to *table*."""
    if line not in table:
        return False
    codes = table[line]
    return codes is None or rule.upper() in codes
