"""Intra-module call-graph summaries for obligation inheritance.

The flow rules are intraprocedural at heart, but two of them need one hop
of context: NET001 pushes an *undischarged send obligation* from a helper
up to its call sites (the helper's send is fine if every caller logged
first), and ASY001 pushes *async execution context* down from ``async
def``\\ s into the sync helpers they call (a sync ``open()`` blocks the
loop just as hard when it hides one frame below the coroutine).

Resolution is deliberately name-based and module-local:

* ``f(...)`` links to a function literally named ``f`` defined in this
  module — unless ``f`` is a parameter or local of the calling function
  (callbacks handed in as arguments are somebody else's code).
* ``anything.m(...)`` links to a function/method named ``m`` defined in
  this module.  No type inference — a same-named method on a foreign
  object creates a spurious edge, which is conservative for ASY001
  (extra context, never less) and is tolerated for NET001.
* Cross-module calls resolve to nothing; obligations stop at the module
  boundary by design (each module is analyzed against its own WAL
  discipline).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.context import FileContext
from repro.staticcheck.flow.cfg import FunctionNode, walk_body


def _local_bindings(func: FunctionNode) -> frozenset[str]:
    """Parameter and local-variable names of *func* (its own body only)."""
    args = func.args
    names = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    for node in walk_body(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    # Nested `def` names are deliberately NOT included: they are locals,
    # but they are also module-collected functions and the def should win.
    return frozenset(names)


@dataclass
class CallSite:
    """One call expression, attributed to its immediately enclosing function."""

    caller: FunctionNode | None  # None for module-level code
    call: ast.Call


@dataclass
class ModuleCallGraph:
    """Name-resolved call edges between the functions of one module."""

    functions: list[FunctionNode] = field(default_factory=list)
    by_name: dict[str, list[FunctionNode]] = field(default_factory=dict)
    #: callee name -> every call site using that name.
    call_sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: caller function -> (callee name, call node) pairs, in source order.
    calls_from: dict[FunctionNode, list[tuple[str, ast.Call]]] = field(
        default_factory=dict
    )

    @classmethod
    def build(cls, ctx: FileContext) -> "ModuleCallGraph":
        graph = cls()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                graph.functions.append(node)
                graph.by_name.setdefault(node.name, []).append(node)
        graph.functions.sort(key=lambda f: (f.lineno, f.col_offset))
        locals_of = {func: _local_bindings(func) for func in graph.functions}

        for func in graph.functions:
            graph.calls_from[func] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = cls._callee_name(node)
            if name is None:
                continue
            caller = ctx.enclosing_function(node)
            if (
                isinstance(node.func, ast.Name)
                and caller is not None
                and name in locals_of.get(caller, frozenset())
            ):
                # A param or local shadows any same-named module def: the
                # callable was handed in (a callback), not resolved here.
                continue
            site = CallSite(caller=caller, call=node)
            graph.call_sites.setdefault(name, []).append(site)
            if caller is not None:
                graph.calls_from[caller].append((name, node))
        return graph

    @staticmethod
    def _callee_name(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    # ------------------------------------------------------------- queries

    def sites_calling(self, name: str) -> list[CallSite]:
        """Call sites that resolve (by name) to a module-defined function."""
        if name not in self.by_name:
            return []
        return list(self.call_sites.get(name, []))

    def async_reachable(self) -> dict[FunctionNode, tuple[str, ...]]:
        """Sync functions transitively called from ``async def`` bodies.

        Maps each reached sync function to one example call chain (names
        from the originating coroutine down to it).  Async functions are
        not in the map — they are their own context.
        """
        reached: dict[FunctionNode, tuple[str, ...]] = {}
        frontier: list[tuple[FunctionNode, tuple[str, ...]]] = [
            (func, (func.name,))
            for func in self.functions
            if isinstance(func, ast.AsyncFunctionDef)
        ]
        while frontier:
            current, chain = frontier.pop(0)
            for name, _call in self.calls_from.get(current, []):
                for target in self.by_name.get(name, []):
                    if isinstance(target, ast.AsyncFunctionDef):
                        continue  # awaited coroutines schedule, not block
                    if target in reached:
                        continue
                    reached[target] = chain + (name,)
                    frontier.append((target, chain + (name,)))
        return reached
