"""Per-function control-flow graphs built from the AST.

Each function (sync or async, nested ones analyzed separately) compiles to
a graph of :class:`BasicBlock`\\ s: straight-line statement runs connected by
branch, loop, exception, and fall-through edges.  The builder is
deliberately conservative — where the dynamic semantics are subtle
(``finally`` on the unwind path, ``while True`` loops, exceptions raised
mid-block) it adds *extra* edges rather than fewer, so dominance queries
under-approximate ("X dominates Y" is only claimed when it holds on every
modelled path) and reachability queries over-approximate.

Statement granularity: every statement the function can execute occupies a
*site* ``(block index, position in block)``.  Compound statements (``if``,
``while``, ``for``, ``with``, ``match``) are placed at the point their
header expression evaluates; their bodies become separate blocks.  ``try``
bodies get an exception edge from every block in the region to every
handler entry, because an exception can split a block at any point.
Nested function and class definitions are single statements here — their
bodies execute on *call*, not in this frame, and are analyzed as their own
functions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Union, cast

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: (block index, statement position within block) — a statement's address.
Site = tuple[int, int]

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

# ast.TryStar is 3.11+; resolved via getattr so type checking under older
# python_version settings stays clean.  TryStar shares Try's field layout,
# so _try handles both.
_TRY_STAR = getattr(ast, "TryStar", None)
_TRY_STATEMENTS: tuple[type[ast.stmt], ...] = (
    (ast.Try, _TRY_STAR) if _TRY_STAR is not None else (ast.Try,)
)


@dataclass
class BasicBlock:
    """One straight-line run of statements."""

    index: int
    statements: list[ast.stmt] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


@dataclass
class ControlFlowGraph:
    """The CFG of one function, with statement-site and handler metadata."""

    func: FunctionNode
    blocks: list[BasicBlock]
    entry: int
    exit: int
    #: statement node -> its site; every executed statement is mapped.
    sites: dict[ast.stmt, Site]
    #: handler entry block -> the ExceptHandler whose body starts there.
    handler_entries: dict[int, ast.ExceptHandler]
    #: (source block, handler entry block) pairs — the exception edges.
    exception_edges: set[tuple[int, int]]

    def site_of(self, node: ast.AST, parents: dict[ast.AST, ast.AST]) -> Site | None:
        """The site of the innermost mapped statement containing *node*.

        Walks *parents* upward; returns None if *node* is outside this
        function (or in dead code the builder never placed).
        """
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, ast.stmt):
                site = self.sites.get(current)
                if site is not None:
                    return site
            if current is self.func:
                return None
            current = parents.get(current)
        return None

    def reachable_from(self, block: int) -> frozenset[int]:
        """Blocks reachable from *block* (inclusive) along successor edges."""
        return _closure(block, lambda b: self.blocks[b].successors)

    def reaching_to(self, block: int) -> frozenset[int]:
        """Blocks from which *block* is reachable (inclusive)."""
        return _closure(block, lambda b: self.blocks[b].predecessors)


def _closure(start: int, step: Callable[[int], set[int]]) -> frozenset[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        for nxt in step(frontier.pop()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def walk_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without descending into nested function/class scopes.

    The root itself is yielded (unless it is a scope barrier other than the
    starting node); children of nested ``def``/``lambda``/``class`` are not
    — their code runs in another frame, on call, and is analyzed there.
    """
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if current is not node and isinstance(current, _SCOPE_BARRIERS):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(current))))


def contains_await(node: ast.AST) -> bool:
    """Whether *node* suspends this coroutine frame (awaits in nested defs
    don't count — they suspend the nested frame, when it eventually runs)."""
    if isinstance(node, _SCOPE_BARRIERS):
        return False  # a def statement only *creates* the inner frame
    return any(isinstance(child, ast.Await) for child in walk_body(node))


def head_expressions(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a compound statement evaluates *at its own site*.

    Bodies are separate blocks; only the header runs here.  Returns ``[]``
    for simple statements (callers examine those whole).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []


def statement_awaits(stmt: ast.stmt) -> bool:
    """Whether executing *stmt's own site* can suspend the coroutine."""
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        return True  # implicit __anext__/__aenter__ awaits
    heads = head_expressions(stmt)
    if heads:
        return any(contains_await(expr) for expr in heads)
    return contains_await(stmt)


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []
        self.sites: dict[ast.stmt, Site] = {}
        self.handler_entries: dict[int, ast.ExceptHandler] = {}
        self.exception_edges: set[tuple[int, int]] = set()
        self.exit = self._new_block()
        self.entry = self._new_block()
        self.current: int | None = self.entry
        # (loop head, loop after) for continue/break targets, innermost last.
        self.loops: list[tuple[int, int]] = []

    # ------------------------------------------------------------- plumbing

    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def _exception_edge(self, src: int, handler_entry: int) -> None:
        self._edge(src, handler_entry)
        self.exception_edges.add((src, handler_entry))

    def _place(self, stmt: ast.stmt) -> int:
        """Append *stmt* to the current block (a fresh one for dead code)."""
        if self.current is None:
            self.current = self._new_block()  # unreachable continuation
        block = self.blocks[self.current]
        self.sites[stmt] = (self.current, len(block.statements))
        block.statements.append(stmt)
        return self.current

    # ----------------------------------------------------------- statements

    def build(self) -> ControlFlowGraph:
        self._body(self.func.body)
        if self.current is not None:
            self._edge(self.current, self.exit)  # implicit return
        return ControlFlowGraph(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            sites=self.sites,
            handler_entries=self.handler_entries,
            exception_edges=self.exception_edges,
        )

    def _body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt)
        elif isinstance(stmt, _TRY_STATEMENTS):
            self._try(cast(ast.Try, stmt))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._place(stmt)
            self._body(stmt.body)
        elif isinstance(stmt, ast.Match):
            self._match(stmt)
        elif isinstance(stmt, ast.Return):
            block = self._place(stmt)
            self._edge(block, self.exit)
            self.current = None
        elif isinstance(stmt, ast.Raise):
            block = self._place(stmt)
            # Region exception edges (added by _try for every block in a try
            # body) model the caught path; the uncaught path leaves the frame.
            self._edge(block, self.exit)
            self.current = None
        elif isinstance(stmt, ast.Break):
            block = self._place(stmt)
            if self.loops:
                self._edge(block, self.loops[-1][1])
            self.current = None
        elif isinstance(stmt, ast.Continue):
            block = self._place(stmt)
            if self.loops:
                self._edge(block, self.loops[-1][0])
            self.current = None
        else:
            self._place(stmt)

    def _if(self, stmt: ast.If) -> None:
        head = self._place(stmt)
        join = self._new_block()
        self.current = self._new_block()
        self._edge(head, self.current)
        self._body(stmt.body)
        if self.current is not None:
            self._edge(self.current, join)
        if stmt.orelse:
            self.current = self._new_block()
            self._edge(head, self.current)
            self._body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, join)
        else:
            self._edge(head, join)
        self.current = join

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        pre = self.current
        head = self._new_block()
        if pre is not None:
            self._edge(pre, head)
        self.current = head
        self._place(stmt)  # the test / iterator evaluates once per pass
        after = self._new_block()
        body = self._new_block()
        self._edge(head, body)
        self.loops.append((head, after))
        self.current = body
        self._body(stmt.body)
        self.loops.pop()
        if self.current is not None:
            self._edge(self.current, head)
        if stmt.orelse:
            orelse = self._new_block()
            self._edge(head, orelse)
            self.current = orelse
            self._body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            # Conservative: the exit edge exists even for `while True` — an
            # extra path never manufactures a dominance claim.
            self._edge(head, after)
        self.current = after

    def _try(self, stmt: ast.Try) -> None:
        pre = self.current
        region_start = len(self.blocks)
        body_entry = self._new_block()
        if pre is not None:
            self._edge(pre, body_entry)
        self.current = body_entry
        self._body(stmt.body)
        body_end = self.current
        region = range(region_start, len(self.blocks))

        # else runs only after an exception-free body; its own exceptions
        # are NOT caught by this try's handlers, so it sits outside region.
        if stmt.orelse:
            orelse_entry = self._new_block()
            if body_end is not None:
                self._edge(body_end, orelse_entry)
            self.current = orelse_entry
            self._body(stmt.orelse)
            normal_end = self.current
        else:
            normal_end = body_end

        handler_region_start = len(self.blocks)
        handler_ends: list[int | None] = []
        entries: list[int] = []
        for handler in stmt.handlers:
            entry = self._new_block()
            entries.append(entry)
            self.handler_entries[entry] = handler
            self.current = entry
            self._body(handler.body)
            handler_ends.append(self.current)
        handler_region = range(handler_region_start, len(self.blocks))

        # An exception can split any block in the protected region at any
        # statement, so every region block gets an edge to every handler.
        for src in region:
            for entry in entries:
                self._exception_edge(src, entry)

        if stmt.finalbody:
            final_entry = self._new_block()
            if normal_end is not None:
                self._edge(normal_end, final_entry)
            for end in handler_ends:
                if end is not None:
                    self._edge(end, final_entry)
            # Unwind path: uncaught exceptions from the body or the handlers
            # still execute finally, then leave the frame.
            for src in region:
                self._exception_edge(src, final_entry)
            for src in handler_region:
                self._exception_edge(src, final_entry)
            self.current = final_entry
            self._body(stmt.finalbody)
            final_end = self.current
            after = self._new_block()
            if final_end is not None:
                self._edge(final_end, after)
                self._edge(final_end, self.exit)  # unwind continues
            self.current = after
        else:
            after = self._new_block()
            if normal_end is not None:
                self._edge(normal_end, after)
            for end in handler_ends:
                if end is not None:
                    self._edge(end, after)
            self.current = after

    def _match(self, stmt: ast.Match) -> None:
        head = self._place(stmt)
        join = self._new_block()
        for case in stmt.cases:
            self.current = self._new_block()
            self._edge(head, self.current)
            self._body(case.body)
            if self.current is not None:
                self._edge(self.current, join)
        self._edge(head, join)  # no case matched
        self.current = join


def build_cfg(func: FunctionNode) -> ControlFlowGraph:
    """Compile one function's body into a :class:`ControlFlowGraph`."""
    return _Builder(func).build()
