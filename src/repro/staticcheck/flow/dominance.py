"""Dominator computation over a :class:`~repro.staticcheck.flow.cfg.ControlFlowGraph`.

Block *A* dominates block *B* when every path from the entry to *B* passes
through *A*.  The classic iterative data-flow formulation is used (the
graphs here are dozens of blocks, not thousands, so the simple quadratic
fixpoint beats the bookkeeping of Lengauer–Tarjan).

Statement granularity: site ``a`` dominates site ``b`` when their blocks
dominate *and* ``a`` precedes ``b`` if they share a block.  Two positions
inside the *same statement* never dominate each other — evaluation order
within one statement is out of scope for this engine.

Unreachable blocks keep the full dominator set (vacuously, every path to
them — there are none — passes through everything); dead code therefore
never produces "undominated" findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.staticcheck.flow.cfg import ControlFlowGraph, Site


def compute_dominators(cfg: ControlFlowGraph) -> tuple[frozenset[int], ...]:
    """Per-block dominator sets (``result[b]`` contains ``b`` itself)."""
    total = len(cfg.blocks)
    everything = set(range(total))
    reachable = cfg.reachable_from(cfg.entry)
    doms: list[set[int]] = [set(everything) for _ in range(total)]
    doms[cfg.entry] = {cfg.entry}
    order = sorted(reachable - {cfg.entry})
    changed = True
    while changed:
        changed = False
        for block in order:
            preds = [p for p in cfg.blocks[block].predecessors if p in reachable]
            if not preds:
                continue
            new = set.intersection(*(doms[p] for p in preds))
            new.add(block)
            if new != doms[block]:
                doms[block] = new
                changed = True
    return tuple(frozenset(d) for d in doms)


@dataclass(frozen=True)
class DominatorInfo:
    """Dominance queries for one function's CFG."""

    cfg: ControlFlowGraph
    doms: tuple[frozenset[int], ...]

    @classmethod
    def build(cls, cfg: ControlFlowGraph) -> "DominatorInfo":
        return cls(cfg=cfg, doms=compute_dominators(cfg))

    def block_dominates(self, a: int, b: int) -> bool:
        return a in self.doms[b]

    def site_dominates(self, a: Site, b: Site) -> bool:
        """Whether the statement at site *a* executes on every path to *b*."""
        block_a, index_a = a
        block_b, index_b = b
        if block_a == block_b:
            return index_a < index_b
        return block_a in self.doms[block_b]

    def node_dominated_by_any(
        self,
        node: ast.AST,
        dominators: list[Site],
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        """Whether any site in *dominators* dominates *node*'s statement."""
        target = self.cfg.site_of(node, parents)
        if target is None:
            return False
        return any(self.site_dominates(site, target) for site in dominators)
