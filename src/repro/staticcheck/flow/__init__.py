"""Intraprocedural dataflow engine behind the flow-sensitive lint rules.

Layering (each module depends only on the ones above it):

* :mod:`~repro.staticcheck.flow.cfg` — per-function basic-block CFGs from
  the AST, with statement sites, exception edges, and await helpers.
* :mod:`~repro.staticcheck.flow.dominance` — iterative dominator sets and
  statement-granularity dominance queries.
* :mod:`~repro.staticcheck.flow.dataflow` — the worklist solver: reaching
  definitions and the await-taint (torn-update) analysis.
* :mod:`~repro.staticcheck.flow.callgraph` — name-based intra-module call
  summaries so helpers inherit their callers' obligations.
* :mod:`~repro.staticcheck.flow.rules` — NET001/ASY001/ASY002/LEDG001,
  registered in the ordinary rule registry (DESIGN.md §14).
"""

from repro.staticcheck.flow.callgraph import CallSite, ModuleCallGraph
from repro.staticcheck.flow.cfg import (
    BasicBlock,
    ControlFlowGraph,
    FunctionNode,
    Site,
    build_cfg,
    contains_await,
    statement_awaits,
    walk_body,
)
from repro.staticcheck.flow.dataflow import (
    Definition,
    TornUpdate,
    find_torn_updates,
    reaching_definitions,
)
from repro.staticcheck.flow.dominance import DominatorInfo, compute_dominators

__all__ = [
    "BasicBlock",
    "CallSite",
    "ControlFlowGraph",
    "Definition",
    "DominatorInfo",
    "FunctionNode",
    "ModuleCallGraph",
    "Site",
    "TornUpdate",
    "build_cfg",
    "compute_dominators",
    "contains_await",
    "find_torn_updates",
    "reaching_definitions",
    "statement_awaits",
    "walk_body",
]
