"""Flow-sensitive protocol rules (see DESIGN.md §14 for the catalogue).

* **NET001** — log-then-act: in ``repro/net`` modules that keep a WAL, any
  frame whose payload literal says ``"type": "act"`` or ``"abandon"`` must
  be *dominated* by a ``wal.append``/``wal.flush`` call — on every path
  from function entry to the send, the record hits the log first.  Helpers
  inherit the obligation upward: a helper whose send is not self-covered
  is fine if every call site is dominated by an append; the finding lands
  where the discipline terminally breaks.
* **ASY001** — blocking call on the event loop: ``time.sleep``, ``open``,
  ``subprocess.run``-family, ``os.system`` … inside an ``async def``, or
  inside a sync helper reachable from one through this module's call
  graph.
* **ASY002** — cooperative race: a read-modify-write of ``self.*`` state
  torn across an ``await`` (the stale read is written back after the
  suspension — a lost update under task interleaving).
* **LEDG001** — custody skew: a ``.debit(...)`` whose paired
  ``.credit(...)`` can be skipped by an exception handler that neither
  credits, re-raises, nor rejoins the credit path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.staticcheck.context import FileContext
from repro.staticcheck.flow.callgraph import ModuleCallGraph
from repro.staticcheck.flow.cfg import (
    ControlFlowGraph,
    FunctionNode,
    Site,
    build_cfg,
    walk_body,
)
from repro.staticcheck.flow.dataflow import find_torn_updates
from repro.staticcheck.flow.dominance import DominatorInfo
from repro.staticcheck.model import Finding
from repro.staticcheck.rules import Rule, register


def _module_functions(tree: ast.Module) -> list[FunctionNode]:
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    functions.sort(key=lambda f: (f.lineno, f.col_offset))
    return functions


def _body_calls(func: FunctionNode) -> list[ast.Call]:
    """Call expressions executed in *func*'s own frame, in source order."""
    calls = [node for node in walk_body(func) if isinstance(node, ast.Call)]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


# --------------------------------------------------------------------- NET001


def _names_wal(identifier: str) -> bool:
    """Whether an identifier names a WAL: a ``wal`` token, not a substring
    (``epoch_wall`` is a wall clock, not a log)."""
    return "wal" in identifier.lower().split("_")


def _module_keeps_wal(tree: ast.Module) -> bool:
    """Whether this module handles a write-ahead log at all.

    Pure transports (the fault proxy) have no log to write — the discipline
    is meaningless there, so the rule gates on a WAL being in scope:
    an attribute named like ``wal`` or an import of a ``wal`` module.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and _names_wal(node.attr):
            return True
        if isinstance(node, ast.Import):
            if any(_names_wal(alias.name.split(".")[-1]) for alias in node.names):
                return True
        if isinstance(node, ast.ImportFrom):
            if any(_names_wal(alias.name) for alias in node.names):
                return True
    return False


def _effect_kind(call: ast.Call) -> str | None:
    """``"act"``/``"abandon"`` when *call* ships such a frame literal."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if not isinstance(arg, ast.Dict):
            continue
        for key, value in zip(arg.keys, arg.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and value.value in ("act", "abandon")
            ):
                return str(value.value)
    return None


def _is_wal_append(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in ("append", "flush"):
        return False
    receiver = func.value
    while isinstance(receiver, ast.Attribute):
        if _names_wal(receiver.attr):
            return True
        receiver = receiver.value
    return isinstance(receiver, ast.Name) and _names_wal(receiver.id)


@dataclass
class _NetFuncInfo:
    func: FunctionNode
    doms: DominatorInfo
    append_sites: list[Site] = field(default_factory=list)
    #: effect calls in this frame NOT dominated by any append, with kind.
    undominated: list[tuple[ast.Call, str]] = field(default_factory=list)

    def covers(self, node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
        return self.doms.node_dominated_by_any(node, self.append_sites, parents)


@register
class LogThenAct(Rule):
    """NET001: every act/abandon frame is preceded by its WAL record."""

    code = "NET001"
    title = "socket effect not dominated by a WAL append"
    suggestion = (
        "append the covering WAL record before the frame reaches the wire "
        "(log-then-act, DESIGN.md §13); if the record provably predates "
        "this process (e.g. crash-replay re-offers), waive with "
        "# repro: noqa[NET001] and say why"
    )
    restrict_to = ("net",)

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        if not _module_keeps_wal(ctx.tree):
            return
        graph = ModuleCallGraph.build(ctx)
        infos: dict[FunctionNode, _NetFuncInfo] = {}
        for func in graph.functions:
            cfg = build_cfg(func)
            doms = DominatorInfo.build(cfg)
            info = _NetFuncInfo(func=func, doms=doms)
            for call in _body_calls(func):
                if _is_wal_append(call):
                    site = cfg.site_of(call, ctx.parents)
                    if site is not None:
                        info.append_sites.append(site)
            for call in _body_calls(func):
                kind = _effect_kind(call)
                if kind is not None and not info.covers(call, ctx.parents):
                    info.undominated.append((call, kind))
            infos[func] = info

        # Obligation worklist: (function, anchor node, kind, chain of names).
        reported: set[int] = set()
        worklist: list[tuple[FunctionNode, ast.Call, str, tuple[str, ...]]] = [
            (func, call, kind, ())
            for func, info in infos.items()
            for call, kind in info.undominated
        ]
        seen: set[tuple[int, str]] = set()
        while worklist:
            func, anchor, kind, chain = worklist.pop(0)
            callers = [
                site
                for site in graph.sites_calling(func.name)
                if site.caller is not None and site.caller in infos
            ]
            if not callers or func.name in chain:
                if id(anchor) not in reported:
                    reported.add(id(anchor))
                    yield self._finding(ctx, anchor, kind, chain)
                continue
            for site in callers:
                caller = site.caller
                assert caller is not None
                if infos[caller].covers(site.call, ctx.parents):
                    continue  # discharged: the caller logged first
                key = (id(site.call), kind)
                if key in seen:
                    continue
                seen.add(key)
                worklist.append(
                    (caller, site.call, kind, (func.name,) + chain)
                )

    def _finding(
        self, ctx: FileContext, node: ast.Call, kind: str, chain: tuple[str, ...]
    ) -> Finding:
        if chain:
            route = " -> ".join(chain)
            message = (
                f"call can emit an {kind!r} frame (via {route}) on a path "
                "with no preceding WAL append — log-then-act violated"
            )
        else:
            message = (
                f"{kind!r} frame reaches the socket on a path with no "
                "preceding WAL append — log-then-act violated"
            )
        return self.finding(ctx, node, message)


# --------------------------------------------------------------------- ASY001

_BLOCKING_CALLS: frozenset[tuple[str, ...]] = frozenset(
    {
        ("time", "sleep"),
        ("os", "system"),
        ("os", "popen"),
        ("socket", "create_connection"),
        ("urllib", "request", "urlopen"),
        ("open",),
        ("input",),
    }
)

_BLOCKING_SUBPROCESS = frozenset(
    {"run", "call", "check_call", "check_output", "getoutput", "getstatusoutput"}
)


def _blocking_name(dotted: tuple[str, ...]) -> str | None:
    if dotted in _BLOCKING_CALLS:
        return ".".join(dotted)
    if len(dotted) == 2 and dotted[0] == "subprocess" and (
        dotted[1] in _BLOCKING_SUBPROCESS
    ):
        return ".".join(dotted)
    return None


@register
class BlockingCallInAsync(Rule):
    """ASY001: synchronous I/O and sleeps on the event loop."""

    code = "ASY001"
    title = "blocking call on the event loop"
    suggestion = (
        "use the awaitable equivalent (asyncio.sleep, asyncio.to_thread, "
        "loop.run_in_executor) or move the work off the async path; "
        "waive a deliberate micro-block with # repro: noqa[ASY001]"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        graph = ModuleCallGraph.build(ctx)
        if not any(
            isinstance(func, ast.AsyncFunctionDef) for func in graph.functions
        ):
            return
        inherited = graph.async_reachable()
        for func in graph.functions:
            chain: tuple[str, ...] | None
            if isinstance(func, ast.AsyncFunctionDef):
                chain = ()
            else:
                chain = inherited.get(func)
                if chain is None:
                    continue
            for call in _body_calls(func):
                dotted = ctx.resolve_call(call)
                if dotted is None:
                    continue
                blocking = _blocking_name(dotted)
                if blocking is None:
                    continue
                if chain:
                    route = " -> ".join(chain)
                    message = (
                        f"blocking {blocking}() in sync helper "
                        f"{func.name!r}, reached from the event loop via "
                        f"{route}"
                    )
                else:
                    message = (
                        f"blocking {blocking}() inside async def "
                        f"{func.name!r} stalls every task on the loop"
                    )
                yield self.finding(ctx, call, message)


# --------------------------------------------------------------------- ASY002


@register
class AwaitTornUpdate(Rule):
    """ASY002: read-modify-write of instance state split across an await."""

    code = "ASY002"
    title = "read-modify-write of instance state torn across an await"
    suggestion = (
        "re-read the attribute after the await (or serialize the section "
        "with an asyncio.Lock): between the stale read and this write, "
        "another task may have advanced the state, and the write loses "
        "that update"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _module_functions(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(func)
            for torn in find_torn_updates(cfg):
                yield self.finding(
                    ctx,
                    torn.store,
                    f"self.{torn.attr} is read at line {torn.read_line}, an "
                    "await intervenes, and the stale value is written back "
                    "— a concurrent task's update to it would be lost",
                )


# -------------------------------------------------------------------- LEDG001


def _ledger_calls(func: FunctionNode, attr: str) -> list[ast.Call]:
    calls = [
        node
        for node in walk_body(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == attr
    ]
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def _handler_has(handler: ast.ExceptHandler, predicate: "type[ast.AST]") -> bool:
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, predicate):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _handler_credits(handler: ast.ExceptHandler) -> bool:
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "credit"
        ):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class LedgerExceptionSkew(Rule):
    """LEDG001: an exception path that keeps the debit but skips the credit."""

    code = "LEDG001"
    title = "exception path can skip one side of a debit/credit pair"
    suggestion = (
        "credit the counter-account in the handler, re-raise, or move the "
        "debit inside the guarded region so both sides share a fate — "
        "custody must be conserved on every path"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _module_functions(ctx.tree):
            debits = _ledger_calls(func, "debit")
            credits = _ledger_calls(func, "credit")
            if not debits or not credits:
                continue
            yield from self._check_function(ctx, func, debits, credits)

    def _check_function(
        self,
        ctx: FileContext,
        func: FunctionNode,
        debits: list[ast.Call],
        credits: list[ast.Call],
    ) -> Iterator[Finding]:
        cfg = build_cfg(func)
        flagged: set[int] = set()
        for debit in debits:
            debit_site = cfg.site_of(debit, ctx.parents)
            if debit_site is None:
                continue
            forward = cfg.reachable_from(debit_site[0])
            for credit in credits:
                credit_site = cfg.site_of(credit, ctx.parents)
                if credit_site is None or credit_site[0] not in forward:
                    continue
                backward = cfg.reaching_to(credit_site[0])
                on_path = forward & backward
                for src, entry in sorted(cfg.exception_edges):
                    if src not in on_path:
                        continue
                    handler = cfg.handler_entries.get(entry)
                    if handler is None:
                        continue  # finally-entry unwind edge, not a catch
                    if id(handler) in flagged:
                        continue
                    if _handler_credits(handler):
                        continue
                    if _handler_has(handler, ast.Raise):
                        continue
                    if credit_site[0] in cfg.reachable_from(entry):
                        continue  # the handler rejoins the credit path
                    flagged.add(id(handler))
                    yield self.finding(
                        ctx,
                        handler,
                        f"handler can swallow an exception raised between "
                        f"the debit at line {debit.lineno} and the credit "
                        f"at line {credit.lineno}: the debit stands, the "
                        "credit is skipped, and custody leaks",
                    )
