"""Forward dataflow analyses over the flow CFG.

Two analyses live here:

* **Reaching definitions** — the textbook gen/kill analysis over local
  name assignments, exposed for engine consumers and exercised by the
  flow test suite.
* **Torn-update (await-interleaving) analysis** — the engine behind
  ASY002.  It tracks *stale-read taints*: a local that holds the value of
  ``self.attr`` carries the taint ``(attr, crossed)``, where ``crossed``
  flips to True the moment the coroutine suspends at an ``await``.  A
  store to ``self.attr`` fed by a crossed taint is a lost-update race:
  another task may have advanced the attribute while this frame slept,
  and the write clobbers that update with a value derived from the stale
  read.

Both run the same worklist-to-fixpoint loop: block in-states join by
union, transfer folds the block's statements in order, iteration stops
when nothing changes.  The taint lattice is finite (attrs × {False,True}
× read lines) and all transfers are monotone, so termination is
structural, not a fuel counter.

Approximations (deliberate, documented):

* Evaluation order *within* one statement is modelled coarsely: any
  ``await`` in a statement marks every value read by that statement as
  crossed, even reads that textually follow the await.
* Method calls do not kill taints — ``self.recompute()`` between the read
  and the write does not launder the staleness (the stale local is still
  what gets written).
* Only first-level attributes of the literal name ``self`` are tracked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.staticcheck.flow.cfg import (
    ControlFlowGraph,
    contains_await,
    head_expressions,
    statement_awaits,
    walk_body,
)

# ------------------------------------------------------------ reaching defs


@dataclass(frozen=True)
class Definition:
    """One assignment to a local name, addressed by its site."""

    name: str
    block: int
    index: int
    line: int


def _assigned_names(stmt: ast.stmt) -> list[str]:
    names: list[str] = []
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in stmt.items if item.optional_vars]
    for target in targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.append(node.id)
    return names


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> dict[int, frozenset[Definition]]:
    """Definitions reaching each block's *entry* (classic may-analysis)."""
    gen: dict[int, dict[str, Definition]] = {}
    kills: dict[int, frozenset[str]] = {}
    for block in cfg.blocks:
        last: dict[str, Definition] = {}
        killed: set[str] = set()
        for index, stmt in enumerate(block.statements):
            for name in _assigned_names(stmt):
                last[name] = Definition(name, block.index, index, stmt.lineno)
                killed.add(name)
        gen[block.index] = last
        kills[block.index] = frozenset(killed)

    in_states: dict[int, frozenset[Definition]] = {
        block.index: frozenset() for block in cfg.blocks
    }
    worklist = [block.index for block in cfg.blocks]
    while worklist:
        current = worklist.pop(0)
        incoming = in_states[current]
        survived = frozenset(
            d for d in incoming if d.name not in kills[current]
        ) | frozenset(gen[current].values())
        for succ in sorted(cfg.blocks[current].successors):
            merged = in_states[succ] | survived
            if merged != in_states[succ]:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    return in_states


# ------------------------------------------------------- torn-update (ASY002)

#: (attribute name, crossed an await, line of the stale read)
Taint = tuple[str, bool, int]
TaintState = dict[str, frozenset[Taint]]


@dataclass(frozen=True)
class TornUpdate:
    """One detected lost-update race: the store, its attr, the stale read."""

    store: ast.stmt
    attr: str
    read_line: int


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attr_reads(expr: ast.expr) -> list[tuple[str, int]]:
    reads: list[tuple[str, int]] = []
    for node in walk_body(expr):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and _is_self_attr(node)
        ):
            reads.append((node.attr, node.lineno))
    return reads


def _names_read(expr: ast.expr) -> list[str]:
    return [
        node.id
        for node in walk_body(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    ]


def _cross_all(state: TaintState) -> TaintState:
    return {
        name: frozenset((attr, True, line) for attr, _, line in taints)
        for name, taints in state.items()
    }


def _kill_attr(state: TaintState, attr: str) -> TaintState:
    out: TaintState = {}
    for name, taints in state.items():
        kept = frozenset(t for t in taints if t[0] != attr)
        if kept:
            out[name] = kept
    return out


def _value_taint(expr: ast.expr, state: TaintState, crossed: bool) -> frozenset[Taint]:
    """The taints a value computed from *expr* carries.

    Direct ``self.attr`` reads seed fresh taints; names propagate the
    taints of the locals they read.  *crossed* is True when the statement
    itself awaits — everything it read is stale by the time it lands.
    """
    taints: set[Taint] = {
        (attr, crossed, line) for attr, line in _self_attr_reads(expr)
    }
    for name in _names_read(expr):
        for attr, was_crossed, line in state.get(name, frozenset()):
            taints.add((attr, was_crossed or crossed, line))
    return frozenset(taints)


class _TornUpdateAnalysis:
    def __init__(self, cfg: ControlFlowGraph) -> None:
        self.cfg = cfg
        self.flags: dict[int, TornUpdate] = {}  # keyed by id(store stmt)

    # ------------------------------------------------------------- transfer

    def _flag(self, store: ast.stmt, attr: str, read_line: int) -> None:
        self.flags.setdefault(id(store), TornUpdate(store, attr, read_line))

    def _check_store(
        self, store: ast.stmt, attr: str, value: ast.expr, state: TaintState
    ) -> None:
        """*state* is post-crossing: taints already reflect any await in
        this statement (the store lands after the suspension either way)."""
        for name in _names_read(value):
            for taint_attr, crossed, line in state.get(name, frozenset()):
                if taint_attr == attr and crossed:
                    self._flag(store, attr, line)
                    return
        if contains_await(value):
            for read_attr, line in _self_attr_reads(value):
                if read_attr == attr:
                    self._flag(store, attr, line)
                    return

    def _bind(
        self,
        target: ast.expr,
        taint: frozenset[Taint],
        value: ast.expr,
        state: TaintState,
        stmt: ast.stmt,
    ) -> TaintState:
        if isinstance(target, ast.Name):
            state = dict(state)
            if taint:
                state[target.id] = taint
            else:
                state.pop(target.id, None)
            return state
        if _is_self_attr(target):
            assert isinstance(target, ast.Attribute)
            self._check_store(stmt, target.attr, value, state)
            return _kill_attr(state, target.attr)
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                state = self._bind(element, taint, value, state, stmt)
            return state
        return state  # subscripts and other targets: out of scope

    def transfer(
        self, stmt: ast.stmt, state: TaintState, record: bool
    ) -> TaintState:
        if record:
            return self._transfer(stmt, state)
        saved = dict(self.flags)
        try:
            return self._transfer(stmt, state)
        finally:
            self.flags = saved

    def _transfer(self, stmt: ast.stmt, state: TaintState) -> TaintState:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            crossed = contains_await(value)
            if crossed:
                state = _cross_all(state)
            taint = _value_taint(value, state, crossed)
            for target in stmt.targets:
                state = self._bind(target, taint, value, state, stmt)
            return state
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            crossed = contains_await(value)
            if crossed:
                state = _cross_all(state)
            taint = _value_taint(value, state, crossed)
            return self._bind(stmt.target, taint, value, state, stmt)
        if isinstance(stmt, ast.AugAssign):
            value = stmt.value
            crossed = contains_await(value)
            if crossed:
                state = _cross_all(state)
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                extra = _value_taint(value, state, crossed)
                merged = state.get(name, frozenset()) | extra
                state = dict(state)
                if merged:
                    state[name] = merged
                return state
            if _is_self_attr(stmt.target):
                assert isinstance(stmt.target, ast.Attribute)
                attr = stmt.target.attr
                if crossed:
                    # x += await f(): the old value loads before the await
                    # and applies after it — torn within one statement.
                    self._flag(stmt, attr, stmt.lineno)
                else:
                    self._check_store(stmt, attr, value, state)
                return _kill_attr(state, attr)
            return state
        if statement_awaits(stmt):
            return _cross_all(state)
        return state

    # -------------------------------------------------------------- solving

    def solve(self) -> list[TornUpdate]:
        in_states: dict[int, TaintState] = {self.cfg.entry: {}}
        worklist = [self.cfg.entry]
        while worklist:
            current = worklist.pop(0)
            state = dict(in_states.get(current, {}))
            for stmt in self.cfg.blocks[current].statements:
                state = self.transfer(stmt, state, record=False)
            for succ in sorted(self.cfg.blocks[current].successors):
                merged = _join(in_states.get(succ), state)
                if merged != in_states.get(succ):
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        # Final recording pass from the fixpoint in-states.
        self.flags = {}
        for block in self.cfg.blocks:
            state = dict(in_states.get(block.index, {}))
            for stmt in block.statements:
                state = self.transfer(stmt, state, record=True)
        return sorted(
            self.flags.values(), key=lambda t: (t.store.lineno, t.attr)
        )


def _join(left: TaintState | None, right: TaintState) -> TaintState:
    if left is None:
        return dict(right)
    merged = dict(left)
    for name, taints in right.items():
        merged[name] = merged.get(name, frozenset()) | taints
    return merged


def find_torn_updates(cfg: ControlFlowGraph) -> list[TornUpdate]:
    """ASY002 engine: stores of ``self.*`` fed by a read from before an
    ``await`` in the same coroutine frame."""
    return _TornUpdateAnalysis(cfg).solve()


__all__ = [
    "Definition",
    "Taint",
    "TaintState",
    "TornUpdate",
    "contains_await",
    "find_torn_updates",
    "head_expressions",
    "reaching_definitions",
]
