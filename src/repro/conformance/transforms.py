"""Problem rebuilders: the shared machinery of metamorphic transforms.

Every metamorphic relation (and the shrinker) needs to produce a *variant*
of an exchange problem — same semantics under some mapping, or a strict
sub-problem.  :class:`InteractionGraph` is built incrementally and its edge
insertion order is load-bearing (deterministic reduction strategies walk it),
so variants are produced by decomposing a problem into per-exchange
:class:`ExchangeRecord` rows and re-assembling a fresh graph from a
transformed row list.

Only pairwise exchanges are supported — the §9 multi-party extension has no
formatter/translation coverage yet, and every workload the fuzzer generates
is pairwise.  :func:`exchange_records` raises :class:`ConformanceError` on
multi-party input so callers can skip rather than mis-transform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.interaction import InteractionGraph
from repro.core.items import Document, Item, Money, cents
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.trust import TrustRelation
from repro.errors import ReproError


class ConformanceError(ReproError):
    """A conformance transform was asked for something it cannot express."""


@dataclass(frozen=True)
class ExchangeRecord:
    """One mediated pairwise exchange, flattened for re-assembly.

    ``members`` lists ``(principal, provides, tag)`` in edge insertion
    order; ``priority`` holds member indices whose edges are red-marked.
    """

    trusted: Party
    members: tuple[tuple[Party, Item, str], ...]
    priority: tuple[int, ...]
    deadline: float | None = None


def exchange_records(problem: ExchangeProblem) -> list[ExchangeRecord]:
    """Decompose *problem* into per-exchange records (insertion order)."""
    graph = problem.interaction
    records: list[ExchangeRecord] = []
    for trusted in graph.trusted_components:
        edges = graph.edges_at(trusted)
        if len(edges) != 2:
            raise ConformanceError(
                f"{trusted.name!r} mediates {len(edges)} parties; conformance "
                "transforms cover pairwise exchanges only"
            )
        members = tuple((e.principal, e.provides, e.tag) for e in edges)
        priority = tuple(
            i for i, e in enumerate(edges) if e in graph.priority_edges
        )
        records.append(
            ExchangeRecord(
                trusted=trusted,
                members=members,
                priority=priority,
                deadline=graph.deadline_of(trusted),
            )
        )
    return records


def assemble(
    name: str,
    records: list[ExchangeRecord],
    trust_pairs: tuple[tuple[Party, Party], ...] = (),
) -> ExchangeProblem:
    """Build a fresh, validated problem from exchange records.

    Principals register in first-appearance order over *records*; trust
    pairs naming parties absent from the records are silently dropped (the
    shrinker relies on this when it removes a party's last exchange).
    """
    graph = InteractionGraph()
    seen: set[str] = set()
    for record in records:
        for principal, _, _ in record.members:
            if principal.name not in seen:
                seen.add(principal.name)
                graph.add_principal(principal)
    for record in records:
        graph.add_trusted(record.trusted)
        edges = [
            graph.add_edge(principal, record.trusted, provides, tag=tag)
            for principal, provides, tag in record.members
        ]
        for index in record.priority:
            graph.mark_priority(edges[index])
        if record.deadline is not None:
            graph.set_deadline(record.trusted, record.deadline)
    present = {p.name for p in graph.parties}
    trust = TrustRelation.of(
        (a, b)
        for a, b in trust_pairs
        if a.name in present and b.name in present
    )
    return ExchangeProblem(name, graph, trust).validate()


def _relabel_item(item: Item) -> Item:
    """A consistent, collision-free renaming of an item's label.

    Documents get a ``rl`` prefix on the base label (and tag); money keeps
    its amount (amounts are semantics, labels are not) but gets its tag
    renamed.  Prefixing cannot collide: all originals share the transform.
    """
    if isinstance(item, Money):
        if "#" in item.label:
            _, tag = item.label.split("#", 1)
            return cents(item.cents, tag=f"rl{tag}")
        return cents(item.cents)
    if "#" in item.label:
        base, tag = item.label.split("#", 1)
        return Document(f"rl{base}#rl{tag}")
    return Document(f"rl{item.label}")


def relabel_problem(problem: ExchangeProblem) -> ExchangeProblem:
    """A bijective renaming of every party and document label.

    Feasibility, step counts, and the residual-edge count are all invariant
    under relabeling — the reduction rules only look at graph structure.
    """
    mapped: dict[str, Party] = {}

    def party(p: Party) -> Party:
        if p.name not in mapped:
            mapped[p.name] = Party(f"RL{p.name}", p.role)
        return mapped[p.name]

    records = [
        ExchangeRecord(
            trusted=party(r.trusted),
            members=tuple(
                (party(p), _relabel_item(item), tag) for p, item, tag in r.members
            ),
            priority=r.priority,
            deadline=r.deadline,
        )
        for r in exchange_records(problem)
    ]
    trust_pairs = tuple((party(a), party(b)) for a, b in problem.trust)
    return assemble(f"{problem.name}+relabel", records, trust_pairs)


def permute_exchanges(
    problem: ExchangeProblem, rng: random.Random
) -> ExchangeProblem:
    """Shuffle exchange insertion order and swap member order per exchange.

    The sequencing graph this builds is structurally identical — only the
    deterministic strategies' tie-breaking order changes — so by §4.2
    confluence the verdict and the residual-edge count must not move.
    """
    records = exchange_records(problem)
    rng.shuffle(records)
    permuted: list[ExchangeRecord] = []
    for record in records:
        if rng.random() < 0.5:
            order = tuple(reversed(range(len(record.members))))
            members = tuple(record.members[i] for i in order)
            priority = tuple(sorted(order.index(i) for i in record.priority))
            record = ExchangeRecord(
                trusted=record.trusted,
                members=members,
                priority=priority,
                deadline=record.deadline,
            )
        permuted.append(record)
    trust_pairs = tuple(problem.trust)
    return assemble(f"{problem.name}+permuted", permuted, trust_pairs)


def problems_equivalent(a: ExchangeProblem, b: ExchangeProblem) -> bool:
    """Structural equality up to declaration order (round-trip check)."""

    def signature(p: ExchangeProblem) -> tuple[object, ...]:
        graph = p.interaction
        return (
            frozenset((q.name, q.role) for q in graph.principals),
            frozenset(t.name for t in graph.trusted_components),
            frozenset(
                (e.principal.name, e.trusted.name, e.provides.label,
                 getattr(e.provides, "cents", None), e.tag)
                for e in graph.edges
            ),
            frozenset(
                (e.principal.name, e.trusted.name, e.tag)
                for e in graph.priority_edges
            ),
            frozenset(
                (t.name, graph.deadline_of(t))
                for t in graph.trusted_components
                if graph.deadline_of(t) is not None
            ),
            frozenset((x.name, y.name) for x, y in p.trust),
        )

    return signature(a) == signature(b)
