"""Metamorphic relations over exchange problems.

Each relation takes a problem whose verdict is known and asserts what a
*transformed* variant must (or must not) do:

* **relabel invariance** — a bijective renaming of parties and document
  labels changes nothing observable about the reduction;
* **permutation invariance** — exchange/member insertion order only changes
  tie-breaking; by §4.2 confluence the verdict and residual-edge count are
  invariant;
* **trust monotonicity** — direct-trust edges only waive blockers (§4.2.3):
  growing the trust relation can never flip feasible → infeasible;
* **indemnity monotonicity** — indemnities only split conjunctions (§6):
  once a prefix of the greedy plan is feasible, every longer prefix is too,
  and a feasible plan's Petri net must be coverable;
* **persona toggling** — the persona clause only *adds* legal reduction
  steps: feasible with the clause ablated implies feasible with it on, and
  with no direct trust the toggle is a strict no-op.
"""

from __future__ import annotations

import random

from repro.conformance.oracles import Discrepancy, oversold_documents, trace_key
from repro.conformance.transforms import (
    ConformanceError,
    permute_exchanges,
    relabel_problem,
)
from repro.core.indemnity import (
    greedy_order,
    plan_indemnities,
    splittable_conjunctions,
)
from repro.errors import IndemnityError
from repro.core.problem import ExchangeProblem
from repro.petri.translate import exchange_completable


def check_relabel_invariance(problem: ExchangeProblem) -> list[Discrepancy]:
    """Renaming parties/documents must not move any reduction observable."""
    base = problem.feasibility()
    variant = relabel_problem(problem).feasibility()
    if (
        variant.feasible != base.feasible
        or len(variant.trace.steps) != len(base.trace.steps)
        or len(variant.trace.remaining) != len(base.trace.remaining)
    ):
        return [
            Discrepancy(
                "relabel-variance",
                f"relabeled variant gave feasible={variant.feasible} "
                f"steps={len(variant.trace.steps)} "
                f"remaining={len(variant.trace.remaining)}; original gave "
                f"feasible={base.feasible} steps={len(base.trace.steps)} "
                f"remaining={len(base.trace.remaining)}",
            )
        ]
    return []


def check_permutation_invariance(
    problem: ExchangeProblem, rng: random.Random
) -> list[Discrepancy]:
    """Exchange insertion order must not change the verdict (§4.2)."""
    base = problem.feasibility()
    variant = permute_exchanges(problem, rng).feasibility()
    if (
        variant.feasible != base.feasible
        or len(variant.trace.remaining) != len(base.trace.remaining)
    ):
        return [
            Discrepancy(
                "permutation-variance",
                f"permuted variant gave feasible={variant.feasible} "
                f"remaining={len(variant.trace.remaining)}; original gave "
                f"feasible={base.feasible} "
                f"remaining={len(base.trace.remaining)}",
            )
        ]
    return []


def check_trust_monotonicity(
    problem: ExchangeProblem, rng: random.Random, additions: int = 3
) -> list[Discrepancy]:
    """Cumulatively adding trust edges: feasibility never regresses."""
    principals = list(problem.interaction.principals)
    if len(principals) < 2:
        return []
    current = problem.copy()
    feasible = current.feasibility().feasible
    for step in range(additions):
        truster, trustee = rng.sample(principals, 2)
        if current.trust.trusts(truster, trustee):
            continue
        current.trust.add(truster, trustee)
        now_feasible = current.feasibility().feasible
        if feasible and not now_feasible:
            return [
                Discrepancy(
                    "trust-regression",
                    f"adding trust {truster.name}->{trustee.name} (step "
                    f"{step + 1}) flipped a feasible problem infeasible",
                )
            ]
        feasible = now_feasible
    return []


def check_indemnity_monotonicity(problem: ExchangeProblem) -> list[Discrepancy]:
    """Greedy-plan prefixes: once feasible, always feasible; and a feasible
    plan's Petri net must be coverable (the §6 ↔ §7.4 bridge)."""
    discrepancies: list[Discrepancy] = []
    agents = splittable_conjunctions(problem)
    if not agents:
        return []
    agent = agents[0]
    order = greedy_order(problem, agent)
    was_feasible = problem.feasibility().feasible
    last_plan = None
    for k in range(1, len(order) + 1):
        plan = plan_indemnities(
            problem, order[:k], agent=agent, stop_when_feasible=False
        )
        if was_feasible and not plan.feasible:
            discrepancies.append(
                Discrepancy(
                    "indemnity-regression",
                    f"splitting {k} commitment(s) of {agent.name}'s bundle "
                    "flipped a feasible problem infeasible",
                )
            )
            break
        was_feasible = was_feasible or plan.feasible
        last_plan = plan
    if (
        last_plan is not None
        and last_plan.feasible
        and not oversold_documents(problem)
    ):
        petri = exchange_completable(problem, last_plan)
        if not petri.coverable:
            discrepancies.append(
                Discrepancy(
                    "indemnity-petri",
                    f"plan over {agent.name}'s bundle is reduction-feasible "
                    "but its Petri completion marking is not coverable",
                )
            )
    return discrepancies


def check_persona_toggle(problem: ExchangeProblem) -> list[Discrepancy]:
    """Ablating the §4.2.3 clause only removes legal steps."""
    on = problem.feasibility(enable_persona_clause=True)
    off = problem.feasibility(enable_persona_clause=False)
    if off.feasible and not on.feasible:
        return [
            Discrepancy(
                "persona-regression",
                "feasible with the persona clause ablated but infeasible "
                "with it enabled — the clause removed a legal reduction",
            )
        ]
    if len(problem.trust) == 0 and trace_key(on.trace) != trace_key(off.trace):
        return [
            Discrepancy(
                "persona-noop",
                "no direct trust exists yet toggling the persona clause "
                "changed the reduction trace",
            )
        ]
    return []


def metamorphic_suite(
    problem: ExchangeProblem, seed: int = 0
) -> list[Discrepancy]:
    """Run every metamorphic relation; returns all broken ones.

    Multi-party problems (which the rebuilders cannot express) skip the
    structural transforms but still run the trust/indemnity/persona
    relations, which need no re-assembly.
    """
    rng = random.Random(seed)
    discrepancies: list[Discrepancy] = []
    try:
        discrepancies.extend(check_relabel_invariance(problem))
        discrepancies.extend(check_permutation_invariance(problem, rng))
    except ConformanceError:
        pass
    discrepancies.extend(check_trust_monotonicity(problem, rng))
    try:
        discrepancies.extend(check_indemnity_monotonicity(problem))
    except IndemnityError:
        pass  # non-pairwise bundles (§9 extension) have no offeror rule yet
    discrepancies.extend(check_persona_toggle(problem))
    return discrepancies
