"""The differential oracle stack: one problem, every semantics, no excuses.

Four independent realizations of the paper's semantics are run against the
same problem and any disagreement outside the *documented* relations is a
:class:`Discrepancy`:

* **incremental reduction** (:func:`repro.core.reduction.reduce_graph`) vs
  the **naive reference engine**
  (:mod:`repro.core.reduction_reference`) — must be step-for-step identical
  across every strategy and with the §4.2.3 persona clause on and off;
* the **compiled flat core** (:mod:`repro.core.flatcore`) — a third
  differential arm: the parity engine must match the incremental trace
  step for step under the same settings, and the free-order verdict loop
  must land on the same feasibility/steps/remaining/blockage counts (the
  unique-normal-form claim of DESIGN.md §11, checked on every fuzz case);
* **confluence** (§4.2) — the verdict and the residual-edge count must not
  depend on the strategy;
* **Petri coverability** (§7.4) — reduction-feasible must imply coverable
  (the reverse is the paper's documented incompleteness gap, recorded as
  ``petri_gap`` but *not* flagged);
* **execution + simulation** (§5, §2.3) — a feasible problem's recovered
  sequence must violate no possession constraint, and replaying it through
  the discrete-event simulator must complete every exchange with every
  party's safety verdict OK and the trusted conduits neutral.

One more *documented* divergence is tolerated: an **over-sale** (the same
principal providing the same document through several intermediaries, see
:func:`repro.workloads.chains.oversale`).  The sequencing-graph test is
possession-blind and calls it feasible while the token-linear Petri net and
the §5 scheduler both catch the physical impossibility; such problems are
recorded with ``oversold=True`` and the feasible-implies-executable checks
are inverted rather than flagged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core import flatcore
from repro.core.execution import recover_execution
from repro.core.problem import ExchangeProblem
from repro.core.reduction import ReductionTrace, reduce_graph
from repro.core.reduction_reference import reference_reduce
from repro.errors import ReproError
from repro.petri.translate import exchange_completable
from repro.sim.runtime import simulate
from repro.sim.safety import evaluate_safety

STRATEGIES = ("fifo", "lifo", "random")


@dataclass(frozen=True)
class Discrepancy:
    """One cross-oracle disagreement (or broken metamorphic relation).

    ``trace_a``/``trace_b`` carry the rendered divergent trace pair when the
    disagreement is between two reduction runs (engine-divergence,
    flat-divergence, confluence): the full step-by-step record of each side,
    so a fuzz hit is debuggable from the report alone.  Empty for
    discrepancy kinds that have no two traces to show.
    """

    kind: str
    detail: str
    trace_a: str = ""
    trace_b: str = ""

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass(frozen=True)
class OracleVerdicts:
    """The flattened per-oracle verdicts for one problem."""

    reduction_feasible: bool
    reference_feasible: bool
    petri_coverable: bool
    petri_gap: bool  # coverable but not shown feasible — documented §4.2.4
    simulated: bool
    simulation_safe: bool | None
    oversold: bool = False  # possession-blind verdict — documented limitation
    flat_feasible: bool | None = None  # None when the flat arm was disabled

    def to_dict(self) -> dict[str, object]:
        return {
            "reduction": self.reduction_feasible,
            "reference": self.reference_feasible,
            "flat": self.flat_feasible,
            "petri": self.petri_coverable,
            "petri_gap": self.petri_gap,
            "simulated": self.simulated,
            "simulation_safe": self.simulation_safe,
            "oversold": self.oversold,
        }


@dataclass(frozen=True)
class CrossCheckResult:
    """Everything one differential pass observed."""

    verdicts: OracleVerdicts
    discrepancies: tuple[Discrepancy, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.discrepancies


def trace_key(trace: ReductionTrace) -> tuple[object, ...]:
    """Everything observable about a reduction, flattened for comparison."""
    return (
        trace.feasible,
        [
            (
                step.index,
                step.rule,
                step.edge,
                step.via_persona,
                step.commitment_disconnected,
                step.conjunction_disconnected,
            )
            for step in trace.steps
        ],
        trace.remaining,
        trace.commitment_order,
        trace.conjunction_order,
        [(b.edge, b.blocking_red) for b in trace.blockages],
    )


def oversold_documents(problem: ExchangeProblem) -> tuple[str, ...]:
    """Documents the same principal promised through more than one edge.

    An over-sale (:func:`repro.workloads.chains.oversale`) is the documented
    blind spot of the sequencing-graph test: one copy of a document cannot
    satisfy several buyers, but §4.2 reduction never counts copies.  Resale
    chains are *not* flagged — a reseller provides each document on exactly
    one edge and re-acquires it on another.
    """
    counts: dict[tuple[str, str], int] = {}
    for edge in problem.interaction.edges:
        if edge.provides.is_money:
            continue
        key = (edge.principal.name, edge.provides.label)
        counts[key] = counts.get(key, 0) + 1
    return tuple(
        sorted(label for (_, label), n in counts.items() if n > 1)
    )


def cross_check(
    problem: ExchangeProblem,
    seed: int = 0,
    run_simulation: bool = True,
    flat_arm: bool = True,
) -> CrossCheckResult:
    """Run *problem* through every oracle; flag any disagreement.

    ``seed`` drives the ``random`` reduction strategy (both engines see an
    identically seeded stream).  ``run_simulation=False`` skips the §5
    replay — the shrinker uses this to keep its inner loop fast when the
    discrepancy under reduction is not a simulation one.  ``flat_arm=False``
    skips the compiled-core differential arm (it is on by default; every
    fuzz case then certifies the flat engine against the other two).
    """
    discrepancies: list[Discrepancy] = []
    reference_feasible = False
    base: ReductionTrace | None = None
    # Compile once per problem: SGEdge/node values are equal across fresh
    # sequencing_graph() builds, so flat traces compare cleanly against
    # traces over per-iteration graphs.
    compiled = flatcore.compile_graph(problem.sequencing_graph()) if flat_arm else None

    for persona in (True, False):
        for strategy in STRATEGIES:
            incremental = reduce_graph(
                problem.sequencing_graph(),
                strategy=strategy,
                rng=random.Random(seed),
                enable_persona_clause=persona,
            )
            reference = reference_reduce(
                problem.sequencing_graph(),
                strategy=strategy,
                rng=random.Random(seed),
                enable_persona_clause=persona,
            )
            if trace_key(incremental) != trace_key(reference):
                discrepancies.append(
                    Discrepancy(
                        "engine-divergence",
                        f"strategy={strategy} persona={persona}: incremental "
                        f"(feasible={incremental.feasible}, "
                        f"steps={len(incremental.steps)}, "
                        f"remaining={len(incremental.remaining)}) != reference "
                        f"(feasible={reference.feasible}, "
                        f"steps={len(reference.steps)}, "
                        f"remaining={len(reference.remaining)})",
                        trace_a=str(incremental),
                        trace_b=str(reference),
                    )
                )
            if compiled is not None:
                flat = flatcore.reduce_graph_compiled(
                    compiled,
                    strategy=strategy,
                    rng=random.Random(seed),
                    enable_persona_clause=persona,
                )
                if trace_key(flat) != trace_key(incremental):
                    discrepancies.append(
                        Discrepancy(
                            "flat-divergence",
                            f"strategy={strategy} persona={persona}: flat "
                            f"(feasible={flat.feasible}, "
                            f"steps={len(flat.steps)}, "
                            f"remaining={len(flat.remaining)}) != incremental "
                            f"(feasible={incremental.feasible}, "
                            f"steps={len(incremental.steps)}, "
                            f"remaining={len(incremental.remaining)})",
                            trace_a=str(flat),
                            trace_b=str(incremental),
                        )
                    )
            if persona and strategy == "fifo":
                base = incremental
                reference_feasible = reference.feasible
            elif persona and base is not None:
                if (
                    incremental.feasible != base.feasible
                    or len(incremental.remaining) != len(base.remaining)
                ):
                    discrepancies.append(
                        Discrepancy(
                            "confluence",
                            f"strategy={strategy}: feasible="
                            f"{incremental.feasible} remaining="
                            f"{len(incremental.remaining)} but fifo gave "
                            f"feasible={base.feasible} remaining="
                            f"{len(base.remaining)}",
                            trace_a=str(incremental),
                            trace_b=str(base),
                        )
                    )
    assert base is not None

    flat_feasible: bool | None = None
    if compiled is not None:
        # The free-order verdict loop against the fifo base: same normal
        # form, so same counts — not just the same boolean.
        flat_verdict = flatcore.check_feasibility_flat(compiled)
        flat_feasible = flat_verdict.feasible
        base_counts = (
            base.feasible,
            len(base.steps),
            len(base.remaining),
            len(base.blockages),
        )
        flat_counts = (
            flat_verdict.feasible,
            flat_verdict.steps,
            flat_verdict.remaining,
            flat_verdict.blockages,
        )
        if flat_counts != base_counts:
            discrepancies.append(
                Discrepancy(
                    "flat-divergence",
                    "free-order verdict loop disagrees with the indexed "
                    f"engine: flat (feasible, steps, remaining, blockages)="
                    f"{flat_counts} != indexed {base_counts}",
                    trace_a=repr(flat_verdict),
                    trace_b=str(base),
                )
            )

    oversold = bool(oversold_documents(problem))
    petri = exchange_completable(problem)
    if base.feasible and not petri.coverable and not oversold:
        discrepancies.append(
            Discrepancy(
                "petri-unsound",
                "reduction certified feasibility but the Petri completion "
                "marking is not coverable",
            )
        )
    petri_gap = petri.coverable and not base.feasible

    simulated = False
    simulation_safe: bool | None = None
    if base.feasible and run_simulation and not oversold:
        simulated = True
        simulation_safe = False
        try:
            sequence = recover_execution(base)
        except ReproError as exc:
            discrepancies.append(
                Discrepancy(
                    "execution-recovery",
                    f"feasible trace admitted no execution sequence: {exc}",
                )
            )
        else:
            violated = sequence.violated_constraints()
            if violated:
                discrepancies.append(
                    Discrepancy(
                        "execution-order",
                        "recovered sequence violates possession constraints: "
                        + "; ".join(str(c) for c in violated),
                    )
                )
            try:
                result = simulate(problem)
            except ReproError as exc:
                discrepancies.append(
                    Discrepancy(
                        "simulation-crash",
                        f"simulator failed on a feasible problem: {exc}",
                    )
                )
            else:
                report = evaluate_safety(problem, result)
                simulation_safe = report.honest_parties_safe()
                if not simulation_safe:
                    bad = [
                        f"{v.party.name}: {'; '.join(v.reasons)}"
                        for v in report.verdicts
                        if not v.ok
                    ]
                    discrepancies.append(
                        Discrepancy(
                            "simulation-safety",
                            "honest party ended unacceptably: " + " | ".join(bad),
                        )
                    )
                completed = set(result.completed_agents)
                expected = set(problem.interaction.trusted_components)
                if completed != expected:
                    missing = sorted(t.name for t in expected - completed)
                    discrepancies.append(
                        Discrepancy(
                            "simulation-incomplete",
                            f"exchanges never completed at: {missing}",
                        )
                    )
                if not result.quiescent:
                    discrepancies.append(
                        Discrepancy(
                            "simulation-stranded",
                            f"{result.stranded_messages} message(s) stranded "
                            "on a fault-free wire",
                        )
                    )

    verdicts = OracleVerdicts(
        reduction_feasible=base.feasible,
        reference_feasible=reference_feasible,
        petri_coverable=petri.coverable,
        petri_gap=petri_gap,
        simulated=simulated,
        simulation_safe=simulation_safe,
        oversold=oversold,
        flat_feasible=flat_feasible,
    )
    return CrossCheckResult(verdicts=verdicts, discrepancies=tuple(discrepancies))
