"""The fuzz driver behind ``repro fuzz``.

Each case is a pure function of one derived seed: the worker generates a
random exchange problem (topology, priority density, hub skew, and a sprinkle
of direct-trust edges all drawn from the case's own rng), pushes it through
the spec-language front end (format → parse → compile, so the text pipeline
is *in the loop*, not just observed), runs the differential oracle stack
(:mod:`repro.conformance.oracles`), and then the metamorphic relations
(:mod:`repro.conformance.metamorphic`).  Cases fan out over
:func:`repro.analysis.batch.parallel_map`; because every case re-derives its
world from its seed, serial and pooled runs produce identical verdicts —
:meth:`FuzzReport.digest` makes that checkable with one string compare.

Any discrepancy is shrunk to a minimal counterexample
(:mod:`repro.conformance.shrink`) and serialized to a replayable corpus file
(:mod:`repro.conformance.corpus`).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.batch import effective_cpu_count, instrumented_map
from repro.conformance.corpus import load_corpus_file, write_corpus_file
from repro.conformance.metamorphic import metamorphic_suite
from repro.conformance.oracles import (
    CrossCheckResult,
    Discrepancy,
    OracleVerdicts,
    cross_check,
)
from repro.conformance.shrink import shrink_problem
from repro.conformance.transforms import problems_equivalent
from repro.core.problem import ExchangeProblem
from repro.errors import ReproError
from repro.obs.metrics import MetricsSnapshot, snapshot_digest
from repro.spec.compiler import load
from repro.spec.formatter import format_problem
from repro.workloads.random_graphs import RandomProblemConfig, random_problem


@dataclass(frozen=True)
class FuzzConfig:
    """Shape of one fuzz run."""

    cases: int = 200
    seed: int = 0
    simulate: bool = True
    max_principals: int = 10
    max_exchanges: int = 7
    flat_arm: bool = True
    #: run the flow-sensitive lint rules over repro/net before fuzzing.
    preflight: bool = True


#: The flow rules (DESIGN.md §14) the fuzz preflight enforces statically.
FLOW_RULE_CODES = ("ASY001", "ASY002", "LEDG001", "NET001")


def flow_preflight(paths: tuple[str, ...] | None = None) -> None:
    """Statically verify the runtime's ordering disciplines before fuzzing.

    The fuzz sweep exercises the socket runtime dynamically; the flow
    rules prove the same disciplines (log-then-act, await interleaving,
    custody conservation) statically.  Running them first means a sweep
    never spends minutes hammering a runtime whose invariants are already
    visibly broken — the failure surfaces in seconds, with a line number.

    Raises :class:`~repro.errors.StaticCheckError` on any finding.
    """
    # Imported lazily: staticcheck is otherwise not a conformance dependency.
    from repro.errors import StaticCheckError
    from repro.staticcheck import error_count, lint_paths, render_human

    if paths is None:
        import repro.net as net_pkg

        paths = (os.path.dirname(os.path.abspath(net_pkg.__file__)),)
    findings = lint_paths(list(paths), select=FLOW_RULE_CODES)
    if error_count(findings):
        details = "\n".join(render_human(findings))
        raise StaticCheckError(
            "flow preflight failed — the runtime violates its ordering "
            f"disciplines; fix these before fuzzing:\n{details}"
        )


@dataclass(frozen=True)
class CaseSpec:
    """One picklable cell of the sweep (workers rebuild everything from it)."""

    index: int
    seed: int
    simulate: bool = True
    max_principals: int = 10
    max_exchanges: int = 7
    flat_arm: bool = True


@dataclass(frozen=True)
class CaseResult:
    """One case's outcome, flattened for transport off a worker.

    ``spec_text`` is populated only for discrepant cases — it is what the
    parent-side shrinker and the corpus writer reconstruct the problem from.
    """

    index: int
    seed: int
    problem_name: str
    verdicts: OracleVerdicts
    discrepancies: tuple[Discrepancy, ...]
    spec_text: str = ""

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def summary(self) -> dict[str, object]:
        return {
            "index": self.index,
            "verdicts": self.verdicts.to_dict(),
            "kinds": sorted({d.kind for d in self.discrepancies}),
        }


def generate_case_problem(spec: CaseSpec) -> ExchangeProblem:
    """Deterministically build the exchange problem for one case."""
    rng = random.Random(spec.seed)
    n_principals = rng.randint(4, spec.max_principals)
    n_exchanges = rng.randint(2, min(spec.max_exchanges, n_principals - 1))
    config = RandomProblemConfig(
        n_principals=n_principals,
        n_exchanges=n_exchanges,
        priority_probability=rng.choice([0.0, 0.25, 0.5, 0.75, 1.0]),
        hub_probability=rng.choice([0.0, 0.0, 0.0, 0.5, 0.9]),
        max_price=rng.choice([10, 50, 200]),
    )
    problem = random_problem(config, seed=rng.randrange(2**31))
    # Sprinkle direct trust so personas (§4.2.3) are exercised end to end.
    if rng.random() < 0.5:
        principals = list(problem.interaction.principals)
        for _ in range(rng.randint(1, 2)):
            truster, trustee = rng.sample(principals, 2)
            if not problem.trust.trusts(truster, trustee):
                problem.trust.add(truster, trustee)
    return problem


def check_problem(
    problem: ExchangeProblem,
    seed: int = 0,
    run_simulation: bool = True,
    flat_arm: bool = True,
) -> CrossCheckResult:
    """The full per-problem conformance suite (front end + oracles + MRs)."""
    discrepancies: list[Discrepancy] = []

    # Spec-language round trip: format → parse → compile → compare.  On
    # success the *recompiled* problem feeds the oracles, so a formatter or
    # parser defect surfaces either here or as an oracle disagreement.
    subject = problem
    try:
        text = format_problem(problem)
        reloaded = load(text)
    except ReproError as exc:
        discrepancies.append(
            Discrepancy("spec-roundtrip", f"format/parse/compile failed: {exc}")
        )
    else:
        if not problems_equivalent(problem, reloaded):
            discrepancies.append(
                Discrepancy(
                    "spec-roundtrip",
                    "recompiled problem is not structurally equivalent "
                    "to the original",
                )
            )
        elif format_problem(reloaded) != text:
            discrepancies.append(
                Discrepancy(
                    "spec-fixed-point",
                    "formatting the recompiled problem did not reproduce "
                    "the original text byte for byte",
                )
            )
        else:
            subject = reloaded

    result = cross_check(
        subject, seed=seed, run_simulation=run_simulation, flat_arm=flat_arm
    )
    discrepancies.extend(result.discrepancies)
    discrepancies.extend(metamorphic_suite(subject, seed=seed))
    return CrossCheckResult(
        verdicts=result.verdicts, discrepancies=tuple(discrepancies)
    )


def run_case(spec: CaseSpec) -> CaseResult:
    """Worker: one fully self-contained fuzz case."""
    problem = generate_case_problem(spec)
    result = check_problem(
        problem,
        seed=spec.seed,
        run_simulation=spec.simulate,
        flat_arm=spec.flat_arm,
    )
    return CaseResult(
        index=spec.index,
        seed=spec.seed,
        problem_name=problem.name,
        verdicts=result.verdicts,
        discrepancies=result.discrepancies,
        spec_text="" if result.ok else format_problem(problem),
    )


def case_specs(config: FuzzConfig) -> list[CaseSpec]:
    """The derived per-case seeds for one run (stable across pool sizes)."""
    rng = random.Random(config.seed)
    return [
        CaseSpec(
            index=i,
            seed=rng.randrange(2**63),
            simulate=config.simulate,
            max_principals=config.max_principals,
            max_exchanges=config.max_exchanges,
            flat_arm=config.flat_arm,
        )
        for i in range(config.cases)
    ]


@dataclass(frozen=True)
class FuzzReport:
    """Aggregated outcome of one fuzz run.

    ``metrics`` is the deterministically merged observability snapshot over
    every case (rule firings, worklist depths, net counters); its digest is
    identical between serial and pooled execution, same as the verdict
    digest.
    """

    config: FuzzConfig
    results: tuple[CaseResult, ...] = field(default_factory=tuple)
    metrics: MetricsSnapshot = ()

    @property
    def discrepant(self) -> tuple[CaseResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    @property
    def feasible_count(self) -> int:
        return sum(1 for r in self.results if r.verdicts.reduction_feasible)

    @property
    def gap_count(self) -> int:
        return sum(1 for r in self.results if r.verdicts.petri_gap)

    @property
    def simulated_count(self) -> int:
        return sum(1 for r in self.results if r.verdicts.simulated)

    def digest(self) -> str:
        """Order-sensitive hash of every per-case verdict (serial == pooled)."""
        payload = json.dumps(
            [r.summary() for r in self.results], sort_keys=True
        ).encode()
        return hashlib.sha256(payload).hexdigest()

    def metrics_digest(self) -> str:
        """Hash of the merged observability metrics (serial == pooled)."""
        return snapshot_digest(self.metrics)

    def describe(self) -> list[str]:
        lines = [
            f"conformance fuzz: {len(self.results)} case(s), seed "
            f"{self.config.seed}",
            f"  feasible: {self.feasible_count}  "
            f"petri-gap (documented §4.2.4 one-sidedness): {self.gap_count}  "
            f"simulated: {self.simulated_count}",
            f"  discrepancies: {len(self.discrepant)}",
        ]
        for result in self.discrepant:
            for discrepancy in result.discrepancies:
                lines.append(
                    f"    case {result.index} ({result.problem_name}): "
                    f"{discrepancy}"
                )
        lines.append(f"  verdict digest: {self.digest()}")
        lines.append(f"  metrics digest: {self.metrics_digest()}")
        return lines

    def to_dict(self) -> dict[str, object]:
        return {
            "cases": len(self.results),
            "seed": self.config.seed,
            "flat_arm": self.config.flat_arm,
            "process_cpus": effective_cpu_count(),
            "feasible": self.feasible_count,
            "petri_gap": self.gap_count,
            "simulated": self.simulated_count,
            "discrepancies": [
                {
                    "index": r.index,
                    "problem": r.problem_name,
                    "seed": r.seed,
                    "kinds": [d.kind for d in r.discrepancies],
                    "details": [d.detail for d in r.discrepancies],
                }
                for r in self.discrepant
            ],
            "digest": self.digest(),
            "metrics_digest": self.metrics_digest(),
        }


def run_fuzz(config: FuzzConfig, processes: int | None = None) -> FuzzReport:
    """Run one fuzz sweep, optionally over a process pool.

    Every case runs inside a metrics-only observability scope (worker-side
    when pooled), and the merged snapshot rides back on the report — see
    :func:`repro.analysis.batch.instrumented_map` for the determinism
    argument.
    """
    if config.preflight:
        flow_preflight()
    results, metrics = instrumented_map(
        run_case, case_specs(config), processes=processes
    )
    return FuzzReport(config=config, results=tuple(results), metrics=metrics)


def _still_failing(
    seed: int, kinds: frozenset[str]
) -> Callable[[ExchangeProblem], bool]:
    """A shrink predicate: the same discrepancy kind(s) still present?

    Simulation is kept in the loop only when the original failure involved
    it — reduction-level discrepancies shrink much faster without replays.
    """
    needs_simulation = any(
        k.startswith(("simulation", "execution")) for k in kinds
    )

    def predicate(candidate: ExchangeProblem) -> bool:
        result = check_problem(
            candidate, seed=seed, run_simulation=needs_simulation
        )
        return any(d.kind in kinds for d in result.discrepancies)

    return predicate


def shrink_counterexamples(
    report: FuzzReport, corpus_dir: str
) -> list[str]:
    """Shrink every discrepant case and write it to *corpus_dir*.

    Returns the written file paths.  Shrinking re-runs the exact check kinds
    that originally failed; if a case cannot be reconstructed from its spec
    text (the front end itself broke), it is written un-shrunk.
    """
    paths: list[str] = []
    for result in report.discrepant:
        kinds = frozenset(d.kind for d in result.discrepancies)
        try:
            problem = load(result.spec_text)
            minimal = shrink_problem(problem, _still_failing(result.seed, kinds))
        except ReproError:
            minimal = None
        filename = os.path.join(
            corpus_dir, f"case-{result.index}-seed-{result.seed}.json"
        )
        if minimal is not None:
            final = check_problem(minimal, seed=result.seed)
            paths.append(
                write_corpus_file(
                    filename,
                    minimal,
                    seed=result.seed,
                    case_index=result.index,
                    kinds=tuple(sorted(kinds)),
                    details=tuple(d.detail for d in final.discrepancies),
                    verdicts=final.verdicts.to_dict(),
                    note=f"shrunk from {result.problem_name}",
                )
            )
        else:
            path = os.path.join(
                corpus_dir, f"case-{result.index}-seed-{result.seed}.spec"
            )
            os.makedirs(corpus_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(result.spec_text)
            paths.append(path)
    return paths


def replay_corpus_file(path: str, run_simulation: bool = True) -> CrossCheckResult:
    """Recompile a corpus entry and run the full suite on it."""
    case = load_corpus_file(path)
    return check_problem(
        case.problem, seed=case.seed, run_simulation=run_simulation
    )
