"""Replayable counterexample corpus files.

A counterexample is serialized as JSON carrying the problem *as spec-language
text* (the one serialization every layer can reconstruct from), the fuzz
seed and case index that produced it, the per-oracle verdicts observed, and
the discrepancy kinds.  ``tests/corpus/`` keeps shrunk (or hand-crafted)
cases as regression fixtures; ``repro fuzz`` writes fresh ones into its
``--corpus`` directory whenever a run disagrees.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.core.problem import ExchangeProblem
from repro.errors import ReproError
from repro.spec.compiler import load
from repro.spec.formatter import format_problem

CORPUS_FORMAT = 1


@dataclass(frozen=True)
class CorpusCase:
    """One deserialized corpus entry."""

    problem: ExchangeProblem
    spec_text: str
    seed: int = 0
    case_index: int | None = None
    kinds: tuple[str, ...] = ()
    details: tuple[str, ...] = ()
    verdicts: dict[str, object] = field(default_factory=dict)
    expected_feasible: bool | None = None
    note: str = ""


def write_corpus_file(
    path: str,
    problem: ExchangeProblem,
    *,
    seed: int = 0,
    case_index: int | None = None,
    kinds: tuple[str, ...] = (),
    details: tuple[str, ...] = (),
    verdicts: dict[str, object] | None = None,
    expected_feasible: bool | None = None,
    note: str = "",
) -> str:
    """Serialize one counterexample (or fixture) to *path*; returns *path*."""
    payload = {
        "format": CORPUS_FORMAT,
        "name": problem.name,
        "spec": format_problem(problem),
        "seed": seed,
        "case_index": case_index,
        "kinds": list(kinds),
        "details": list(details),
        "verdicts": verdicts or {},
        "expected_feasible": expected_feasible,
        "note": note,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus_file(path: str) -> CorpusCase:
    """Deserialize and recompile one corpus entry."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read corpus file {path!r}: {exc}") from exc
    if payload.get("format") != CORPUS_FORMAT:
        raise ReproError(
            f"corpus file {path!r} has format {payload.get('format')!r}; "
            f"this reader understands {CORPUS_FORMAT}"
        )
    spec_text = payload["spec"]
    problem = load(spec_text)
    return CorpusCase(
        problem=problem,
        spec_text=spec_text,
        seed=int(payload.get("seed", 0)),
        case_index=payload.get("case_index"),
        kinds=tuple(payload.get("kinds", ())),
        details=tuple(payload.get("details", ())),
        verdicts=dict(payload.get("verdicts", {})),
        expected_feasible=payload.get("expected_feasible"),
        note=payload.get("note", ""),
    )
