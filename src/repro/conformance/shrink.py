"""Greedy counterexample shrinking (QuickCheck-style delta debugging).

Given a problem on which some conformance check fails and a predicate that
re-runs that check, repeatedly try the cheapest structural simplifications —
drop a whole exchange, unmark a priority edge, drop a trust edge — keeping
any variant on which the failure persists.  The result is a local minimum:
no single simplification preserves the failure, which in practice reduces a
multi-exchange discrepancy to the two- or three-party core that triggers it.

The predicate sees fully validated problems only; candidates that fail
structural validation (e.g. dropping a principal's last exchange) are
skipped, not counted as successes.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.conformance.transforms import (
    ConformanceError,
    ExchangeRecord,
    assemble,
    exchange_records,
)
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.errors import ReproError


def _candidates(problem: ExchangeProblem) -> list[ExchangeProblem]:
    """Single-step simplifications of *problem*, cheapest-win order.

    Variants that fail structural validation are silently dropped.
    """
    records = exchange_records(problem)
    trust_pairs = tuple(problem.trust)
    variants: list[ExchangeProblem] = []

    def offer(
        records_: list[ExchangeRecord],
        trust_: tuple[tuple[Party, Party], ...],
    ) -> None:
        try:
            variants.append(assemble(problem.name, records_, trust_))
        except ReproError:
            pass

    if len(records) > 1:
        for skip in range(len(records)):
            offer([r for i, r in enumerate(records) if i != skip], trust_pairs)
    for i, record in enumerate(records):
        if not record.priority:
            continue
        without = ExchangeRecord(
            trusted=record.trusted,
            members=record.members,
            priority=(),
            deadline=record.deadline,
        )
        offer(records[:i] + [without] + records[i + 1 :], trust_pairs)
    for skip in range(len(trust_pairs)):
        kept_trust = tuple(p for i, p in enumerate(trust_pairs) if i != skip)
        offer(records, kept_trust)
    return variants


def shrink_problem(
    problem: ExchangeProblem,
    still_failing: Callable[[ExchangeProblem], bool],
    max_rounds: int = 200,
) -> ExchangeProblem:
    """Shrink *problem* while ``still_failing`` holds; returns the minimum.

    ``still_failing`` must return True on *problem* itself for the result to
    be meaningful (the shrinker does not re-check the starting point).  Any
    :class:`~repro.errors.ReproError` raised while generating or checking a
    candidate disqualifies that candidate only.
    """
    current = problem
    for _ in range(max_rounds):
        for candidate in _shrink_step(current, still_failing):
            current = candidate
            break
        else:
            return current
    return current


def _shrink_step(
    problem: ExchangeProblem,
    still_failing: Callable[[ExchangeProblem], bool],
) -> Iterator[ExchangeProblem]:
    try:
        candidates = _candidates(problem)
    except ConformanceError:
        return  # multi-party problems cannot be re-assembled
    for candidate in candidates:
        try:
            if still_failing(candidate):
                yield candidate
        except ReproError:
            continue
