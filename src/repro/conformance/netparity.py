"""Socket-parity differential arm: simulator vs. networked runtime.

The §5 safety theorem is transport-independent: whether messages die in a
discrete-event queue or on a real TCP socket, every honest party that is
not permanently silent must end the exchange safe.  This module checks
that claim *differentially* — one seeded problem and one seeded
:class:`~repro.sim.faults.FaultPlan` run through both runtimes:

* the in-process simulator (:class:`repro.sim.runtime.Simulation`), where
  fault rolls draw from ``random.Random(plan.seed)`` in event order; and
* the socket runtime (:func:`repro.net.supervisor.run_networked_exchange`),
  where each roll hashes ``(seed, envelope, attempt)`` and party crashes
  are real process kills.

The two arms do **not** drop the same individual messages — wall-clock
scheduling makes event order nondeterministic, so the rolls cannot line
up.  What must agree, and what this arm asserts, is everything the
theorem actually guarantees:

* the per-party safety verdict (``ok``) for every party that is not
  permanently silent, in both arms;
* the identically-derived initial ledger (digest equality);
* money conservation across the networked run (initial total == final
  total — every transfer double-entry, nothing minted by the wire).

Seed derivation mirrors :func:`repro.analysis.chaos_study.chaos_scenarios`
(``rng.random()`` problem seeds, ``rng.randrange(2**31)`` fault seeds from
one master generator), so a master seed pins the whole sweep.  Infeasible
problems are recorded but not run — the theorem says nothing about them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.batch import ProblemSpec
from repro.net.supervisor import NetRunConfig, run_networked_exchange
from repro.sim.faults import FaultConfig, random_fault_plan
from repro.sim.runtime import Simulation
from repro.sim.safety import evaluate_safety
from repro.workloads.random_graphs import RandomProblemConfig


@dataclass(frozen=True)
class ParityCase:
    """One problem-seed × fault-seed cell of the parity sweep."""

    index: int
    problem_seed: float
    fault_seed: int


@dataclass(frozen=True)
class ParityConfig:
    """Knobs shared by both arms of every case."""

    problems: RandomProblemConfig = field(
        default_factory=lambda: RandomProblemConfig(priority_probability=0.1)
    )
    faults: FaultConfig = field(default_factory=FaultConfig)
    deadline: float = 60.0
    latency: float = 1.0
    max_sim_time: float = 400.0
    working_capital_cents: int = 0
    time_scale: float = 0.01  # wall seconds per sim unit in the net arm
    quiet_period: float = 4.0
    spawn: str = "task"  # parity sweeps favor the fast in-process nodes


@dataclass(frozen=True)
class ParityVerdict:
    """Both arms' outcomes for one case, flattened for reporting."""

    index: int
    problem_seed: float
    fault_seed: int
    fault_digest: str
    feasible: bool
    simulated: bool
    sim_safe: bool = True
    net_safe: bool = True
    verdicts_match: bool = True
    initial_match: bool = True
    conserved: bool = True
    mismatches: tuple[str, ...] = ()
    silent_parties: tuple[str, ...] = ()
    crashed_parties: tuple[str, ...] = ()
    kills: int = 0
    restarts: int = 0
    net_outcome: str = "not-run"

    @property
    def ok(self) -> bool:
        return self.verdicts_match and self.initial_match and self.conserved

    def describe(self) -> str:
        if not self.simulated:
            return f"case {self.index}: infeasible (skipped)"
        status = "ok" if self.ok else "MISMATCH " + ", ".join(self.mismatches)
        return (
            f"case {self.index}: {status} "
            f"(sim_safe={self.sim_safe}, net_safe={self.net_safe}, "
            f"kills={self.kills}, restarts={self.restarts}, "
            f"outcome={self.net_outcome})"
        )


def parity_cases(count: int, master_seed: int = 0) -> list[ParityCase]:
    """Derive *count* cases from one master seed (chaos-study discipline)."""
    rng = random.Random(master_seed)
    return [
        ParityCase(
            index=i,
            problem_seed=rng.random(),
            fault_seed=rng.randrange(2**31),
        )
        for i in range(count)
    ]


def run_parity_case(
    case: ParityCase,
    run_dir: str,
    config: ParityConfig = ParityConfig(),
) -> ParityVerdict:
    """Run one case through both runtimes and compare what must agree."""
    problem = ProblemSpec(config=config.problems, seed=case.problem_seed).build()
    plan = random_fault_plan(
        principals=[p.name for p in problem.interaction.principals],
        trusted=[t.name for t in problem.interaction.trusted_components],
        seed=case.fault_seed,
        config=config.faults,
    )
    silent = tuple(sorted(plan.permanently_silent()))
    crashed = tuple(sorted(plan.faulted_parties() - set(silent)))
    if not problem.feasibility().feasible:
        return ParityVerdict(
            index=case.index,
            problem_seed=case.problem_seed,
            fault_seed=case.fault_seed,
            fault_digest=plan.digest(),
            feasible=False,
            simulated=False,
            silent_parties=silent,
            crashed_parties=crashed,
        )

    sim = Simulation.from_problem(
        problem,
        latency=config.latency,
        deadline=config.deadline,
        working_capital_cents=config.working_capital_cents,
        fault_plan=plan,
        seed=case.problem_seed,
    )
    sim_result = sim.run(max_time=config.max_sim_time)
    sim_report = evaluate_safety(problem, sim_result)

    net_run = run_networked_exchange(
        problem,
        run_dir,
        NetRunConfig(
            latency=config.latency,
            time_scale=config.time_scale,
            deadline=config.deadline,
            working_capital_cents=config.working_capital_cents,
            max_sim_time=config.max_sim_time,
            quiet_period=config.quiet_period,
            spawn=config.spawn,
        ),
        fault_plan=plan,
    )
    net_result, net_report = net_run.result, net_run.report

    excluded = frozenset(silent)
    sim_ok = {
        v.party.name: v.ok for v in sim_report.verdicts if v.party.name not in excluded
    }
    net_ok = {
        v.party.name: v.ok for v in net_report.verdicts if v.party.name not in excluded
    }
    verdict_mismatches: list[str] = []
    if set(sim_ok) != set(net_ok):
        verdict_mismatches.append(
            f"party sets differ: sim={sorted(sim_ok)} net={sorted(net_ok)}"
        )
    else:
        for name in sorted(sim_ok):
            if sim_ok[name] != net_ok[name]:
                verdict_mismatches.append(
                    f"{name}: sim ok={sim_ok[name]} net ok={net_ok[name]}"
                )

    mismatches = list(verdict_mismatches)
    initial_match = sim_result.initial.digest() == net_result.initial.digest()
    if not initial_match:
        mismatches.append("initial ledgers differ")
    conserved = sum(net_result.initial.balances.values()) == sum(
        net_result.final.balances.values()
    )
    if not conserved:
        mismatches.append("money not conserved in net arm")

    return ParityVerdict(
        index=case.index,
        problem_seed=case.problem_seed,
        fault_seed=case.fault_seed,
        fault_digest=plan.digest(),
        feasible=True,
        simulated=True,
        sim_safe=all(sim_ok.values()),
        net_safe=all(net_ok.values()),
        verdicts_match=not verdict_mismatches,
        initial_match=initial_match,
        conserved=conserved,
        mismatches=tuple(mismatches),
        silent_parties=silent,
        crashed_parties=crashed,
        kills=net_run.kills,
        restarts=net_run.restarts,
        net_outcome=net_run.outcome,
    )
