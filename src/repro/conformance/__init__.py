"""Cross-layer conformance engine: differential + metamorphic fuzzing.

The paper's central claims are *equivalences*: the §4.2 reduction is
confluent, the §4.2.4 feasibility test agrees with the safe-execution
semantics of §5, and §6 indemnities only ever enlarge the feasible set.
The repository holds four independent realizations of those semantics —
the incremental indexed reduction engine, the naive reference oracle, the
Petri-net coverability translation, and the discrete-event simulator with
its safety monitor.  This package systematically cross-checks them:

* :mod:`repro.conformance.oracles` — the differential oracle stack: one
  problem, every oracle, any disagreement flagged;
* :mod:`repro.conformance.metamorphic` — metamorphic relations (relabeling,
  commitment-order permutation, trust monotonicity, indemnity monotonicity,
  persona-clause toggling) asserted on problem variants;
* :mod:`repro.conformance.transforms` — the problem rebuilders both of the
  above (and the shrinker) are made of;
* :mod:`repro.conformance.shrink` — greedy delta-debugging of a discrepant
  problem down to a minimal counterexample;
* :mod:`repro.conformance.corpus` — replayable counterexample files
  (spec text + seed + oracle verdicts);
* :mod:`repro.conformance.netparity` — the socket-parity differential
  arm: one seeded fault plan through the in-process simulator *and* the
  real-socket runtime, asserting matching safety verdicts;
* :mod:`repro.conformance.engine` — the fuzz driver behind ``repro fuzz``,
  fanning cases over :func:`repro.analysis.batch.parallel_map`.
"""

from repro.conformance.corpus import (
    CorpusCase,
    load_corpus_file,
    write_corpus_file,
)
from repro.conformance.engine import (
    CaseResult,
    CaseSpec,
    FuzzConfig,
    FuzzReport,
    check_problem,
    replay_corpus_file,
    run_case,
    run_fuzz,
    shrink_counterexamples,
)
from repro.conformance.metamorphic import metamorphic_suite
from repro.conformance.netparity import (
    ParityCase,
    ParityConfig,
    ParityVerdict,
    parity_cases,
    run_parity_case,
)
from repro.conformance.oracles import (
    CrossCheckResult,
    Discrepancy,
    OracleVerdicts,
    cross_check,
    oversold_documents,
)
from repro.conformance.shrink import shrink_problem
from repro.conformance.transforms import (
    ExchangeRecord,
    assemble,
    exchange_records,
    permute_exchanges,
    problems_equivalent,
    relabel_problem,
)

__all__ = [
    "CaseResult",
    "CaseSpec",
    "CorpusCase",
    "CrossCheckResult",
    "Discrepancy",
    "ExchangeRecord",
    "FuzzConfig",
    "FuzzReport",
    "OracleVerdicts",
    "ParityCase",
    "ParityConfig",
    "ParityVerdict",
    "assemble",
    "check_problem",
    "cross_check",
    "exchange_records",
    "load_corpus_file",
    "metamorphic_suite",
    "oversold_documents",
    "parity_cases",
    "permute_exchanges",
    "problems_equivalent",
    "relabel_problem",
    "replay_corpus_file",
    "run_case",
    "run_parity_case",
    "run_fuzz",
    "shrink_counterexamples",
    "shrink_problem",
    "write_corpus_file",
]
