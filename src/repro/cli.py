"""Command-line interface: ``repro-trust`` (also ``python -m repro.cli``).

Subcommands cover the full pipeline on a spec file or a built-in example:

* ``check``      — build the sequencing graph, reduce, report feasibility;
* ``sequence``   — print the §5 execution listing;
* ``protocol``   — print the synthesized per-party roles;
* ``indemnify``  — compute the minimal §6 escrow plan;
* ``simulate``   — run the protocol (optionally with adversaries) and print
  the safety report;
* ``render``     — DOT or text renderings of the graphs;
* ``cost``       — the §8 message-cost comparison;
* ``distributed``— the §9 distributed reduction (local decisions);
* ``petri``      — the §7.4 translation and its coverability verdict;
* ``sweep``      — random-topology studies (priority / trust / gap); takes
  ``--engine {indexed,flat}`` to route verdicts through the compiled
  flat-array core;
* ``chaos``      — seeded fault-injection sweep of the safety guarantee
  (also takes ``--engine``);
* ``fuzz``       — differential + metamorphic conformance fuzzing of the
  whole oracle stack (reduction / reference / flat core / Petri /
  simulator / spec);
* ``lint``       — determinism/safety static analysis: AST rule passes over
  Python source plus the non-fatal warning tier over ``.exchange`` specs
  (exit 0 clean, 1 findings, 2 usage error);
* ``trace``      — run the reduce/verdict/simulate pipeline under the
  deterministic tracer and print the span tree (or ``--flame`` cumulative
  view, or ``--json`` JSONL records); the printed span digest is
  byte-identical across replays of the same input;
* ``profile``    — engine-vs-engine hot-rule table (indexed vs compiled
  flat core) over a seeded random workload, wall time via the sanctioned
  timer API;
* ``examples``   — list the built-in fixtures.

``sweep``, ``chaos``, and ``fuzz`` additionally take ``--trace-out PATH``
to write the run's merged observability metrics as JSONL.

Examples::

    repro-trust check --example example2
    repro-trust sequence --example example1
    repro-trust simulate --example example1 --adversary Broker:0
    repro-trust indemnify --example figure7
    repro-trust render --example example1 --what sequencing --dot
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.analysis.batch import effective_cpu_count
from repro.analysis.cost import chain_cost_sweep, format_chain_table, static_cost
from repro.core.flatcore import ENGINES
from repro.core.indemnity import minimal_indemnity_plan, splittable_conjunctions
from repro.core.problem import ExchangeProblem
from repro.core.protocol import synthesize_protocol
from repro.errors import ReproError
from repro.sim.agents import AdversaryStrategy
from repro.sim.runtime import Simulation, simulate
from repro.sim.safety import evaluate_safety
from repro.spec.compiler import load_file
from repro.viz.ascii_art import interaction_text, sequencing_text, trace_text
from repro.viz.dot import interaction_to_dot, sequencing_to_dot
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
    poor_broker,
    simple_purchase,
)

EXAMPLES: dict[str, Callable[[], ExchangeProblem]] = {
    "simple-purchase": simple_purchase,
    "example1": example1,
    "example2": example2,
    "example2-source-trusts-broker": example2_source_trusts_broker,
    "example2-broker-trusts-source": example2_broker_trusts_source,
    "poor-broker": poor_broker,
    "figure7": figure7,
}


def _load_problem(args: argparse.Namespace) -> ExchangeProblem:
    if args.example is not None:
        try:
            return EXAMPLES[args.example]()
        except KeyError:
            raise ReproError(
                f"unknown example {args.example!r}; run 'repro-trust examples'"
            )
    if args.spec is not None:
        return load_file(args.spec)
    raise ReproError("pass a spec file or --example NAME")


def _add_problem_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", nargs="?", help="path to a .exchange spec file")
    parser.add_argument(
        "--example", help="use a built-in example instead of a spec file"
    )


def _add_trace_out_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the run's merged observability metrics as JSONL",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    # argparse's ``choices`` rejects unknown engine names with exit code 2
    # and a usage message — the same contract the library layer enforces
    # with ReproError for programmatic callers.
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="indexed",
        help="reduction engine: the indexed incremental engine, or the "
        "compiled flat-array core (default: indexed)",
    )


def _cmd_check(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    verdict = problem.feasibility(enable_persona_clause=not args.no_persona)
    print("\n".join(trace_text(verdict.trace)))
    print(verdict.explain())
    return 0 if verdict.feasible else 1


def _cmd_sequence(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    for line in problem.execution_sequence().describe():
        print(line)
    return 0


def _cmd_protocol(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    sequence = problem.execution_sequence()
    protocol = synthesize_protocol(problem.interaction, sequence, problem.name)
    for line in protocol.describe():
        print(line)
    return 0


def _cmd_indemnify(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    if not splittable_conjunctions(problem):
        print(f"{problem.name}: no splittable (all-or-nothing) conjunction")
        return 1
    plan = minimal_indemnity_plan(problem)
    for line in plan.describe():
        print(line)
    return 0 if plan.feasible else 1


def _parse_adversaries(specs: list[str]) -> dict[str, AdversaryStrategy]:
    adversaries: dict[str, AdversaryStrategy] = {}
    for spec in specs:
        name, _, count = spec.partition(":")
        perform = int(count) if count else 0
        adversaries[name] = AdversaryStrategy(perform=perform)
    return adversaries


def _cmd_simulate(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    adversaries = _parse_adversaries(args.adversary)
    if not problem.feasibility().feasible:
        plan = minimal_indemnity_plan(problem)
        print(f"(infeasible as specified; applying minimal indemnity plan "
              f"of ${plan.total_dollars:.2f})")
        sim = Simulation.from_plan(
            problem, plan, adversaries=adversaries, deadline=args.deadline
        )
        result = sim.run()
    else:
        result = simulate(problem, adversaries=adversaries, deadline=args.deadline)
    report = evaluate_safety(problem, result)
    print(f"duration: {result.duration:.1f}  messages: {result.stats.messages_delivered}"
          f"  completed exchanges: {len(result.completed_agents)}")
    for line in report.describe():
        print(line)
    honest = frozenset(adversaries)
    return 0 if report.honest_parties_safe(honest) else 1


def _cmd_render(args: argparse.Namespace) -> int:
    problem = _load_problem(args)
    if args.what == "interaction":
        if args.dot:
            print(interaction_to_dot(problem.interaction, problem.name))
        else:
            print("\n".join(interaction_text(problem.interaction)))
    else:
        graph = problem.sequencing_graph()
        trace = problem.reduce() if args.reduced else None
        if args.dot:
            print(sequencing_to_dot(graph, problem.name, trace))
        else:
            print("\n".join(sequencing_text(graph)))
            if trace is not None:
                print("\n".join(trace_text(trace)))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    if args.example or args.spec:
        problem = _load_problem(args)
        cost = static_cost(problem)
        print(
            f"{cost.problem_name}: {cost.n_exchanges} exchange(s); direct "
            f"{cost.direct}, mediated {cost.mediated_static} "
            f"(+notifies {cost.mediated_with_notifies}), universal {cost.universal}; "
            f"mistrust overhead {cost.mistrust_ratio:.1f}x"
        )
    else:
        print("\n".join(format_chain_table(chain_cost_sweep(args.max_brokers))))
    return 0


def _cmd_distributed(args: argparse.Namespace) -> int:
    from repro.distributed import distributed_reduce

    problem = _load_problem(args)
    graph = problem.sequencing_graph()
    trace = distributed_reduce(graph)
    central = problem.feasibility().feasible
    print(
        f"{problem.name}: distributed={'feasible' if trace.feasible else 'infeasible'} "
        f"(centralized agrees: {trace.feasible == central}); "
        f"rounds={trace.rounds}, messages={trace.messages}"
    )
    for party, removed in trace.removed_by.items():
        if removed:
            print(f"  {party.name} removed: {', '.join(str(e.commitment.label) for e in removed)}")
    return 0 if trace.feasible else 1


def _cmd_petri(args: argparse.Namespace) -> int:
    from repro.petri import exchange_completable, translate
    from repro.viz import petri_to_dot

    problem = _load_problem(args)
    net, target = translate(problem)
    result = exchange_completable(problem)
    if args.dot:
        print(petri_to_dot(net, problem.name, highlight=result.witness))
        return 0 if result.coverable else 1
    print(
        f"{problem.name}: net has {len(net.places)} places, "
        f"{len(net.transitions)} transitions"
    )
    print(f"completion coverable: {result.coverable}")
    if result.coverable and args.witness:
        print("witness firing sequence:")
        for name in result.witness:
            print(f"  {name}")
    return 0 if result.coverable else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    jobs = args.jobs if args.jobs > 0 else None  # 0 = all cores
    args.jobs = jobs
    if args.trace_out:
        from repro.obs import metric_records, metrics_scope, write_jsonl

        # The scope captures in-process work; pooled workers keep their own
        # tracers, so run with --jobs 1 for a complete capture.
        with metrics_scope() as tracer:
            code = _run_sweep(args)
        write_jsonl(args.trace_out, metric_records(tracer))
        print(f"wrote {args.trace_out}")
        return code
    return _run_sweep(args)


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.feasibility_study import (
        incompleteness_gap,
        priority_sweep,
        trust_sweep,
    )

    if args.study == "priority":
        for row in priority_sweep(
            samples=args.samples, processes=args.jobs, engine=args.engine
        ):
            print(
                f"priority={row.priority_probability:4.2f}  feasible "
                f"{row.feasible}/{row.samples} ({row.feasible_fraction:.0%})"
            )
    elif args.study == "trust":
        for row in trust_sweep(
            samples=args.samples, processes=args.jobs, engine=args.engine
        ):
            print(
                f"+{row.trust_edges_added} trust edges  unlocked "
                f"{row.unlocked}/{row.samples} ({row.unlocked_fraction:.0%})"
            )
    else:
        row = incompleteness_gap(
            samples=args.samples, processes=args.jobs, engine=args.engine
        )
        print(
            f"samples={row.samples}  reduction-feasible={row.reduction_feasible}  "
            f"petri-coverable={row.petri_coverable}  gap={row.gap} "
            f"({row.gap_fraction:.1%})  unsound={row.unsound}"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.chaos_study import ChaosConfig, chaos_study
    from repro.sim.faults import FaultConfig

    faults = FaultConfig(
        drop=args.drop,
        duplicate=args.duplicate,
        max_delay=args.max_delay,
        crash_probability=args.crash,
        permanent_silence_probability=args.silence,
        heal_at=args.heal,
    )
    config = ChaosConfig(
        scenarios=args.scenarios,
        seed=args.seed,
        faults=faults,
        deadline=args.deadline,
        engine=args.engine,
    )
    jobs = args.jobs if args.jobs > 0 else None  # 0 = all cores
    report = chaos_study(config, processes=jobs)
    for line in report.describe():
        print(line)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.report}")
    if args.trace_out:
        from repro.obs import snapshot_records, write_jsonl

        write_jsonl(args.trace_out, snapshot_records(report.metrics))
        print(f"wrote {args.trace_out}")
    if not report.differential_ok:
        print(
            "warning: direct baseline showed no harm — "
            "the detector may not be exercising faults",
            file=sys.stderr,
        )
    return 0 if report.violation_count == 0 and report.differential_ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.conformance.engine import (
        FuzzConfig,
        run_fuzz,
        shrink_counterexamples,
    )

    config = FuzzConfig(
        cases=args.cases,
        seed=args.seed,
        simulate=not args.no_sim,
        flat_arm=not args.no_flat_arm,
    )
    jobs = args.jobs if args.jobs > 0 else None  # 0 = all cores
    report = run_fuzz(config, processes=jobs)
    for line in report.describe():
        print(line)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.report}")
    if args.trace_out:
        from repro.obs import snapshot_records, write_jsonl

        write_jsonl(args.trace_out, snapshot_records(report.metrics))
        print(f"wrote {args.trace_out}")
    if report.discrepant:
        for path in shrink_counterexamples(report, args.corpus):
            print(f"wrote counterexample {path}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import StaticCheckError
    from repro.staticcheck import (
        apply_baseline,
        error_count,
        lint_paths,
        load_baseline,
        render_human,
        render_json,
        render_sarif,
        write_baseline,
    )

    select = (
        tuple(code.strip().upper() for code in args.select.split(",") if code.strip())
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select)
    if args.write_baseline:
        if args.baseline is None:
            raise StaticCheckError("--write-baseline requires --baseline PATH")
        count = write_baseline(args.baseline, findings)
        print(f"recorded {count} finding(s) in {args.baseline}")
        return 0
    suppressed = 0
    if args.baseline is not None:
        findings, suppressed = apply_baseline(findings, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        for line in render_human(findings, fix_suggestions=args.fix_suggestions):
            print(line)
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    return 1 if error_count(findings) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core import flatcore
    from repro.core.reduction import reduce_graph
    from repro.obs import (
        metric_records,
        render_flame,
        render_tree,
        span_digest,
        span_records,
        to_jsonl,
        tracing,
        write_jsonl,
    )

    if args.corpus_file is not None:
        from repro.conformance.corpus import load_corpus_file

        problem = load_corpus_file(args.corpus_file).problem
    else:
        problem = _load_problem(args)

    with tracing() as tracer:
        trace = reduce_graph(problem.sequencing_graph())
        compiled = flatcore.compile_graph(problem.sequencing_graph())
        flatcore.check_feasibility_flat(compiled)
        if trace.feasible and not args.no_sim:
            simulate(problem)

    records = span_records(tracer) + metric_records(tracer)
    digest = span_digest(tracer)
    if args.out:
        write_jsonl(args.out, records)
    if args.json:
        sys.stdout.write(to_jsonl(records))
        print(f"span digest: {digest}", file=sys.stderr)
    else:
        print(render_flame(tracer) if args.flame else render_tree(tracer))
        print(f"span digest: {digest}")
    if args.out:
        print(f"wrote {args.out}", file=sys.stderr if args.json else sys.stdout)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import random

    from repro.core import flatcore
    from repro.core.reduction import reduce_graph
    from repro.obs import WallTimer, metrics_scope

    rng = random.Random(args.seed)
    problems = [
        _random_profile_problem(rng.randrange(2**31)) for _ in range(args.samples)
    ]

    tables: dict[str, dict[str, object]] = {}
    for engine in ("indexed", "flat"):
        timer = WallTimer()
        with metrics_scope() as tracer, timer:
            for problem in problems:
                graph = problem.sequencing_graph()
                if engine == "indexed":
                    reduce_graph(graph)
                else:
                    flatcore.reduce_graph_compiled(flatcore.compile_graph(graph))
        stats = tracer.metrics.to_dict()
        stats["wall_seconds"] = timer.seconds
        tables[engine] = stats

    # The flat core's free-order verdict loop has no indexed twin; time it
    # on its own line rather than folding it into the comparison table.
    verdict_timer = WallTimer()
    with metrics_scope() as tracer, verdict_timer:
        for problem in problems:
            flatcore.check_feasibility_flat(flatcore.compile_graph(problem.sequencing_graph()))
    free_order_steps = tracer.metrics.to_dict().get("reduction.free_order_steps", 0)

    print(
        f"profile: {args.samples} problem(s), seed {args.seed} "
        f"(cpus: {effective_cpu_count()})"
    )
    rows = [
        ("wall seconds", lambda s: f"{s['wall_seconds']:.3f}"),
        ("firings rule1", lambda s: f"{s.get('reduction.firings.rule1', 0)}"),
        ("firings rule2", lambda s: f"{s.get('reduction.firings.rule2', 0)}"),
        ("persona waivers", lambda s: f"{s.get('reduction.persona_waivers', 0)}"),
        (
            "verdict pass/fail",
            lambda s: f"{s.get('verdict.pass', 0)}/{s.get('verdict.fail', 0)}",
        ),
    ]
    print(f"{'metric':<20} {'indexed':>12} {'flat':>12}")
    for label, fmt in rows:
        print(f"{label:<20} {fmt(tables['indexed']):>12} {fmt(tables['flat']):>12}")
    print(
        f"flat free-order verdict loop: {verdict_timer.seconds:.3f}s, "
        f"{free_order_steps} step(s)"
    )
    return 0


def _random_profile_problem(seed: int) -> ExchangeProblem:
    from repro.workloads.random_graphs import RandomProblemConfig, random_problem

    return random_problem(
        RandomProblemConfig(n_principals=8, n_exchanges=5), seed=seed
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Drive an exchange end-to-end as real processes over real sockets."""
    from repro.net.supervisor import NetRunConfig, run_networked_exchange, trusted_parties
    from repro.obs import metric_records, span_records, tracing, write_jsonl
    from repro.sim.faults import FaultConfig, random_fault_plan

    problem = _load_problem(args)
    if not problem.feasibility().feasible:
        raise ReproError(
            f"{problem.name} is infeasible as specified; the socket runtime "
            "needs a feasible problem (see 'repro-trust indemnify')"
        )
    fault_plan = None
    if args.fault_seed is not None:
        principals = [p.name for p in problem.interaction.principals]
        trusted = [p.name for p in trusted_parties(problem, args.deadline)]
        fault_plan = random_fault_plan(
            principals,
            trusted,
            seed=args.fault_seed,
            config=FaultConfig(
                drop=args.drop,
                duplicate=args.duplicate,
                max_delay=args.max_delay,
                crash_probability=args.crash,
                permanent_silence_probability=args.silence,
                heal_at=args.heal,
            ),
        )
    adversaries = {
        name: strategy.perform
        for name, strategy in _parse_adversaries(args.adversary).items()
    }
    config = NetRunConfig(
        latency=args.latency,
        time_scale=args.time_scale,
        deadline=args.deadline,
        working_capital_cents=args.working_capital,
        max_sim_time=args.max_time,
        port=args.port,
        spawn=args.spawn,
    )
    with tracing() as tracer:
        run = run_networked_exchange(
            problem,
            args.run_dir,
            config,
            fault_plan=fault_plan,
            adversaries=adversaries or None,
        )
        if args.trace_out:
            write_jsonl(args.trace_out, span_records(tracer) + metric_records(tracer))
            print(f"wrote {args.trace_out}")
    result = run.result
    print(
        f"served {problem.name} on port {run.port}: duration {result.duration:.1f} "
        f"(sim units), delivered {result.stats.messages_delivered}, "
        f"kills {run.kills}, restarts {run.restarts}, "
        f"stranded {result.stranded_messages}"
    )
    print(f"artifacts: {run.run_dir}")
    for line in run.report.describe():
        print(line)
    silent = fault_plan.permanently_silent() if fault_plan is not None else frozenset()
    excluded = frozenset(adversaries) | silent
    return 0 if run.report.honest_parties_safe(excluded) else 1


def _cmd_client(args: argparse.Namespace) -> int:
    """Run one party's node process against a running fault proxy."""
    import asyncio

    from repro.net.node import NodeConfig, run_node

    cfg = NodeConfig(
        spec_path=args.spec,
        party=args.party,
        host=args.host,
        port=args.port,
        wal_path=args.wal if args.wal is not None else f"{args.party}.wal",
        deadline=args.deadline,
        working_capital_cents=args.working_capital,
        withhold=args.withhold,
    )
    return asyncio.run(run_node(cfg))


def _cmd_examples(_args: argparse.Namespace) -> int:
    for name, factory in EXAMPLES.items():
        problem = factory()
        verdict = "feasible" if problem.feasibility().feasible else "infeasible"
        print(f"{name:<32} {verdict:>10}  ({len(problem.interaction.edges)} edges)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trust",
        description="Trust-explicit distributed commerce transactions "
        "(Ketchpel & Garcia-Molina, ICDCS 1996).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in [
        ("check", _cmd_check, "reduce the sequencing graph and test feasibility"),
        ("sequence", _cmd_sequence, "print the recovered execution sequence"),
        ("protocol", _cmd_protocol, "print the synthesized per-party protocol"),
        ("indemnify", _cmd_indemnify, "compute the minimal indemnity plan"),
    ]:
        p = sub.add_parser(name, help=help_text)
        _add_problem_args(p)
        if name == "check":
            p.add_argument(
                "--no-persona",
                action="store_true",
                help="ablate Rule #1 clause 2 (the §4.2.3 direct-trust waiver)",
            )
        p.set_defaults(handler=handler)

    p = sub.add_parser("simulate", help="run the protocol in the simulator")
    _add_problem_args(p)
    p.add_argument(
        "--adversary",
        action="append",
        default=[],
        metavar="NAME[:K]",
        help="party NAME withholds after K honest instructions (default 0)",
    )
    p.add_argument("--deadline", type=float, default=100.0)
    p.set_defaults(handler=_cmd_simulate)

    p = sub.add_parser("render", help="render graphs as text or DOT")
    _add_problem_args(p)
    p.add_argument("--what", choices=["interaction", "sequencing"], default="interaction")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.add_argument("--reduced", action="store_true", help="annotate the reduction")
    p.set_defaults(handler=_cmd_render)

    p = sub.add_parser("cost", help="§8 message-cost comparison")
    _add_problem_args(p)
    p.add_argument("--max-brokers", type=int, default=6)
    p.set_defaults(handler=_cmd_cost)

    p = sub.add_parser("distributed", help="run the §9 distributed reduction")
    _add_problem_args(p)
    p.set_defaults(handler=_cmd_distributed)

    p = sub.add_parser("petri", help="§7.4 Petri translation + coverability")
    _add_problem_args(p)
    p.add_argument("--witness", action="store_true", help="print the firing sequence")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT of the net")
    p.set_defaults(handler=_cmd_petri)

    p = sub.add_parser("sweep", help="random-topology studies")
    p.add_argument(
        "study", choices=["priority", "trust", "gap"], help="which sweep to run"
    )
    p.add_argument("--samples", type=int, default=40)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="fan the study over N worker processes (0 = all cores)",
    )
    _add_engine_arg(p)
    _add_trace_out_arg(p)
    p.set_defaults(handler=_cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="fault-injection sweep: random problems x seeded fault plans",
    )
    p.add_argument("--scenarios", "-n", type=int, default=500)
    p.add_argument("--seed", type=int, default=0, help="master seed for the sweep")
    p.add_argument("--drop", type=float, default=0.15, help="per-link drop probability")
    p.add_argument("--duplicate", type=float, default=0.10)
    p.add_argument("--max-delay", type=float, default=3.0)
    p.add_argument("--crash", type=float, default=0.35, help="per-scenario crash probability")
    p.add_argument(
        "--silence",
        type=float,
        default=0.4,
        help="probability a crashed principal never restarts",
    )
    p.add_argument("--heal", type=float, default=30.0, help="link faults end at this time")
    p.add_argument("--deadline", type=float, default=200.0)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="fan scenarios over N worker processes (0 = all cores)",
    )
    p.add_argument("--report", metavar="PATH", help="write the full JSON report here")
    _add_engine_arg(p)
    _add_trace_out_arg(p)
    p.set_defaults(handler=_cmd_chaos)

    p = sub.add_parser(
        "fuzz",
        help="differential + metamorphic conformance fuzzing of the "
        "feasibility/execution stack",
    )
    p.add_argument("--cases", "-n", type=int, default=200)
    p.add_argument("--seed", type=int, default=0, help="master seed for the run")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="fan cases over N worker processes (0 = all cores)",
    )
    p.add_argument(
        "--no-sim",
        action="store_true",
        help="skip the §5 simulator replay oracle (reduction/Petri/spec only)",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        default="fuzz_corpus",
        help="where shrunk counterexamples are written (on failure only)",
    )
    p.add_argument(
        "--no-flat-arm",
        action="store_true",
        help="skip the compiled flat-core differential arm",
    )
    p.add_argument("--report", metavar="PATH", help="write the JSON report here")
    _add_trace_out_arg(p)
    p.set_defaults(handler=_cmd_fuzz)

    p = sub.add_parser(
        "lint",
        help="determinism/safety static analysis over Python source and "
        ".exchange specs (0 clean / 1 findings / 2 usage error)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    p.add_argument("--format", choices=["human", "json", "sarif"], default="human")
    p.add_argument(
        "--fix-suggestions",
        action="store_true",
        help="print a suggested fix under each finding",
    )
    p.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule codes to run (default: every rule)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in FILE; only regressions fail",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings to --baseline FILE and exit 0",
    )
    p.set_defaults(handler=_cmd_lint)

    p = sub.add_parser(
        "trace",
        help="run reduce/verdict/simulate under the deterministic tracer "
        "and print the span tree (replay-stable span digest)",
    )
    _add_problem_args(p)
    p.add_argument(
        "--corpus",
        dest="corpus_file",
        metavar="PATH",
        help="trace a conformance corpus fixture instead of a spec",
    )
    p.add_argument("--json", action="store_true", help="emit JSONL records on stdout")
    p.add_argument(
        "--flame",
        action="store_true",
        help="cumulative per-span-name table instead of the tree",
    )
    p.add_argument("--out", metavar="PATH", help="also write the JSONL records here")
    p.add_argument(
        "--no-sim", action="store_true", help="skip the simulator leg of the pipeline"
    )
    p.set_defaults(handler=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="engine-vs-engine hot-rule table over a seeded random workload",
    )
    p.add_argument("--samples", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(handler=_cmd_profile)

    p = sub.add_parser(
        "serve",
        help="run the exchange as real processes over real sockets",
    )
    _add_problem_args(p)
    p.add_argument(
        "--run-dir",
        default="net_run",
        help="directory for the run's spec, WALs, logs and artifacts",
    )
    p.add_argument("--port", type=int, default=0, help="proxy port (0 = ephemeral)")
    p.add_argument("--deadline", type=float, default=60.0)
    p.add_argument("--latency", type=float, default=1.0, help="wire latency, sim units")
    p.add_argument(
        "--time-scale",
        type=float,
        default=0.02,
        help="wall seconds per sim unit (default 0.02)",
    )
    p.add_argument("--working-capital", type=int, default=0, metavar="CENTS")
    p.add_argument(
        "--max-time", type=float, default=400.0, help="hard sim-time cap on the run"
    )
    p.add_argument(
        "--adversary",
        action="append",
        default=[],
        metavar="NAME[:K]",
        help="party NAME withholds after K honest instructions (default 0)",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="grow a seeded FaultPlan (drops, dups, partitions, real kills)",
    )
    p.add_argument("--drop", type=float, default=0.15)
    p.add_argument("--duplicate", type=float, default=0.10)
    p.add_argument("--max-delay", type=float, default=3.0)
    p.add_argument("--crash", type=float, default=0.35)
    p.add_argument("--silence", type=float, default=0.4)
    p.add_argument("--heal", type=float, default=30.0)
    p.add_argument(
        "--spawn",
        choices=("process", "task"),
        default="process",
        help="node isolation: real subprocesses (default) or in-process tasks",
    )
    _add_trace_out_arg(p)
    p.set_defaults(handler=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="run one party's node against a running exchange proxy",
    )
    p.add_argument("spec", help="path to the run's spec file")
    p.add_argument("--party", required=True, help="which party this node plays")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--wal", default=None, help="write-ahead log path (default PARTY.wal)")
    p.add_argument("--deadline", type=float, default=None)
    p.add_argument("--working-capital", type=int, default=0, metavar="CENTS")
    p.add_argument(
        "--withhold",
        type=int,
        default=None,
        metavar="K",
        help="adversary: perform only the first K instructions",
    )
    p.set_defaults(handler=_cmd_client)

    p = sub.add_parser("examples", help="list built-in examples")
    p.set_defaults(handler=_cmd_examples)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
