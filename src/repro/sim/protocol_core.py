"""Transport-agnostic protocol cores shared by every runtime.

The discrete-event simulator (:mod:`repro.sim.runtime`) and the socket
runtime (:mod:`repro.net`) execute the *same* synthesized protocol; what
differs is the transport underneath.  This module holds the pure decision
logic — which actions a party emits in response to which observations —
with no knowledge of envelopes, retries, event queues, sockets or clocks:

* :class:`PrincipalCore` walks a :class:`~repro.core.protocol.PrincipalRole`
  instruction list, firing each instruction once its preconditions are
  observed, the adversary hooks permit it, and the caller-supplied ``holds``
  predicate confirms custody of the asset.
* :class:`TrustedCore` mechanizes the §2.5 escrow: accept expected deposits,
  bounce everything else, notify the last outstanding principal, release
  goods-before-money on completion, and reverse (settling §6 indemnities)
  on deadline expiry.

Cores never *send* — they return ordered :data:`Effect` values (or call an
``emit`` callback) which the surrounding runtime interprets: the simulator
maps them onto :class:`~repro.sim.network.Envelope` dispatch with retry
timers, the socket runtime onto write-ahead-logged TCP frames.  Because
both runtimes interpret one core, a safety verdict proven in-process is a
statement about the very logic that runs over real sockets.

Determinism contract: given the same observation sequence, a core emits the
same effect sequence — cores draw no randomness and read no clock.  This is
what makes write-ahead-log *replay* (re-feeding the logged observations)
reconstruct a crashed node's exact state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Union

from repro.core.actions import Action, notify, transfer
from repro.core.items import Money
from repro.core.parties import Party
from repro.core.protocol import PrincipalRole, TrustedExchangeSpec

# --------------------------------------------------------------------- effects


@dataclass(frozen=True)
class SendEffect:
    """Dispatch *action* on the transport (with whatever retry discipline)."""

    action: Action


@dataclass(frozen=True)
class NotifyEffect:
    """Notify *principal* that its deposit is the last outstanding one.

    The interpreter stamps the notice with the expiry of the armed deadline
    timer (§2.5: the notification carries "the earliest expiration of the
    other pieces held for the exchange") — the core cannot, because only the
    runtime knows what absolute time its timer will fire at.
    """

    principal: Party


@dataclass(frozen=True)
class ArmDeadline:
    """Start the exchange deadline timer (idempotent; relative duration)."""

    duration: float


@dataclass(frozen=True)
class DisarmDeadline:
    """Cancel the deadline timer: the exchange completed."""


Effect = Union[SendEffect, NotifyEffect, ArmDeadline, DisarmDeadline]


def _always_permits(position: int, action: Action) -> bool:
    return True


def _identity(action: Action) -> Action | None:
    return action


# ------------------------------------------------------------- principal core


class PrincipalCore:
    """Pure instruction-walking logic for one principal.

    ``permits`` / ``transform`` are the adversary extension points (see
    :class:`repro.sim.agents.AdversarialPrincipal`): ``permits`` gates
    whether instruction *position* is performed at all, ``transform``
    rewrites the outgoing action (``None`` = silently skip this
    instruction).  Honest principals use the defaults.
    """

    def __init__(
        self,
        role: PrincipalRole,
        permits: Callable[[int, Action], bool] | None = None,
        transform: Callable[[Action], Action | None] | None = None,
    ) -> None:
        self.role = role
        self.observed: set[Action] = set()
        self.next_instruction = 0
        self._permits = permits if permits is not None else _always_permits
        self._transform = transform if transform is not None else _identity

    def observe(self, action: Action) -> None:
        """Record a delivered action, normalized (deadline stripped).

        Synthesized preconditions are deadline-free, while live notifies
        carry their §2.5 expiry stamp — normalizing here keeps guard
        matching transport-independent.
        """
        self.observed.add(replace(action, deadline=None))

    def drain(
        self,
        holds: Callable[[Action], bool],
        emit: Callable[[Action], None],
    ) -> None:
        """Fire instructions in order while their guards are satisfied.

        ``holds`` is consulted immediately before each send (custody check
        against the caller's asset view) and ``emit`` immediately after it
        passes — the *interleaving* is part of the semantics: an emitted
        transfer relinquishes custody before the next instruction's
        ``holds`` check runs, so a role that spends the same asset twice
        blocks rather than double-spends.
        """
        while self.next_instruction < len(self.role.instructions):
            instruction = self.role.instructions[self.next_instruction]
            if not instruction.ready(self.observed):
                return
            if not self._permits(self.next_instruction, instruction.action):
                return
            action = self._transform(instruction.action)
            if action is not None:
                if not holds(action):
                    return  # wait until the asset arrives
                emit(action)
            self.next_instruction += 1

    @property
    def exhausted(self) -> bool:
        """Whether every instruction has fired (the role is complete)."""
        return self.next_instruction >= len(self.role.instructions)


# --------------------------------------------------------------- trusted core


@dataclass
class TrustedCore:
    """Pure §2.5 escrow logic for one trusted component.

    State mirrors :class:`repro.sim.trusted_agent.TrustedAgent` exactly
    (the agent now delegates here); effects preserve the agent's historic
    dispatch order: arm-before-progress on receive, disarm → releases
    (goods before money) → escrow refunds on completion, indemnity
    settlement before reversals on expiry.
    """

    spec: TrustedExchangeSpec
    received: dict[Party, Action] = field(default_factory=dict)
    escrows: dict[Party, Action] = field(default_factory=dict)  # offeror -> deposit
    completed: bool = False
    reversed: bool = False
    notified: set[Party] = field(default_factory=set)
    rejected: list[Action] = field(default_factory=list)

    # ----------------------------------------------------------------- events

    def on_receive(self, action: Action) -> list[Effect]:
        """React to one delivered action; returns ordered effects."""
        if not action.is_transfer or action.inverted:
            return []  # notifies / stray reversals carry no escrow duty
        assert action.item is not None
        sender = action.effective_sender
        if self._is_escrow(sender, action):
            self.escrows[sender] = action
            return []
        expected = dict(self.spec.deposits).get(sender)
        if (
            expected is None
            or action.item != expected
            or self.completed
            or self.reversed
            or sender in self.received
        ):
            # Unknown depositor, wrong item, duplicate, or too late: send it
            # straight back (§2.5: a trusted component may reverse actions
            # in which it was the recipient).
            self.rejected.append(action)
            return [SendEffect(action.inverse())]
        self.received[sender] = action
        effects: list[Effect] = []
        if self.spec.deadline is not None:
            effects.append(ArmDeadline(self.spec.deadline))
        effects.extend(self._progress())
        return effects

    def on_deadline(self) -> list[Effect]:
        """Deadline expired: settle indemnities, then reverse every deposit."""
        if self.completed or self.reversed:
            return []
        self.reversed = True
        effects = self._settle_indemnities()
        for deposit in self.received.values():
            effects.append(SendEffect(deposit.inverse()))
        self.received.clear()
        return effects

    # ----------------------------------------------------------------- detail

    def _is_escrow(self, sender: Party, action: Action) -> bool:
        for offer in self.spec.indemnities:
            if (
                sender == offer.offeror
                and isinstance(action.item, Money)
                and action.item.cents == offer.amount_cents
                and "indemnity" in action.item.label
            ):
                return True
        return False

    def _progress(self) -> list[Effect]:
        pending = [p for p, _ in self.spec.deposits if p not in self.received]
        if not pending:
            return self._complete()
        if len(pending) == 1 and pending[0] not in self.notified:
            self.notified.add(pending[0])
            return [NotifyEffect(pending[0])]
        return []

    def _complete(self) -> list[Effect]:
        self.completed = True
        releases = [
            transfer(self.spec.agent, principal, item)
            for principal, item in self.spec.entitlements
        ]
        releases.sort(key=lambda a: (isinstance(a.item, Money), a.recipient.name))
        effects: list[Effect] = [DisarmDeadline()]
        effects.extend(SendEffect(release) for release in releases)
        effects.extend(SendEffect(escrow.inverse()) for escrow in self.escrows.values())
        self.escrows.clear()
        return effects

    def _settle_indemnities(self) -> list[Effect]:
        effects: list[Effect] = []
        for offer in self.spec.indemnities:
            escrow = self.escrows.pop(offer.offeror, None)
            if escrow is None:
                continue
            beneficiary_performed = offer.beneficiary in self.received
            offeror_performed = offer.offeror in self.received
            if beneficiary_performed and not offeror_performed:
                # Forfeit: hand the escrowed sum to the beneficiary.
                assert escrow.item is not None
                effects.append(
                    SendEffect(transfer(self.spec.agent, offer.beneficiary, escrow.item))
                )
            else:
                effects.append(SendEffect(escrow.inverse()))
        return effects

    def expiry_notice(self, principal: Party, expiry: float | None) -> Action:
        """The concrete notify action for a :class:`NotifyEffect`."""
        notice = notify(self.spec.agent, principal)
        if expiry is not None:
            notice = replace(notice, deadline=expiry)
        return notice
