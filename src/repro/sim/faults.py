"""Deterministic fault injection for the simulator.

The paper's failure model is "parties renege, wires do not": misbehaviour
lives in the agents, the transport is perfect.  This module supplies the
other half — a seeded, replayable description of *transport* and *process*
faults that the :class:`~repro.sim.network.Network` interprets:

* :class:`LinkFault` — per-link message faults: drop and duplication
  probabilities, bounded delay jitter, and partition windows during which
  nothing crosses the link.  ``"*"`` wildcards match any endpoint.
* :class:`PartyFault` — process faults: a party crashes at ``crash_at`` and
  either restarts at ``restart_at`` (its mailbox is replayed and its timers
  resume) or never does (``restart_at=None`` — permanent silence).  A crash
  stops the *process*, not the *host*: assets delivered to a crashed party
  still land on its ledger account; only its logic is suspended.
* :class:`FaultPlan` — the picklable bundle of both, plus a ``heal_at``
  horizon after which the links behave perfectly again.  A plan is a pure
  value: the same plan and event schedule replays the same faults, because
  every probabilistic roll draws from ``random.Random(plan.seed)`` in event
  order.

:func:`random_fault_plan` grows a plan from a seed and a
:class:`FaultConfig`, which is how the chaos study
(:mod:`repro.analysis.chaos_study`) crosses fault schedules with random
problems.  :class:`RetryPolicy` parameterizes the agents' send-timeout /
capped-exponential-backoff machinery.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import FaultInjectionError


def _check_probability(value: float, label: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(f"{label} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFault:
    """Message faults on one (possibly wildcarded) directed link."""

    sender: str = "*"
    recipient: str = "*"
    drop: float = 0.0
    duplicate: float = 0.0
    max_delay: float = 0.0
    partitions: tuple[tuple[float, float], ...] = ()

    def matches(self, sender: str, recipient: str) -> bool:
        return self.sender in ("*", sender) and self.recipient in ("*", recipient)

    def partitioned(self, now: float) -> bool:
        return any(start <= now < end for start, end in self.partitions)

    def validate(self, heal_at: float | None) -> None:
        _check_probability(self.drop, "drop")
        _check_probability(self.duplicate, "duplicate")
        if self.max_delay < 0:
            raise FaultInjectionError(f"max_delay must be non-negative, got {self.max_delay}")
        for start, end in self.partitions:
            if not 0 <= start < end:
                raise FaultInjectionError(
                    f"partition window ({start}, {end}) must satisfy 0 <= start < end"
                )
            if heal_at is not None and end > heal_at:
                raise FaultInjectionError(
                    f"partition window ({start}, {end}) extends past heal_at={heal_at}"
                )


@dataclass(frozen=True)
class PartyFault:
    """One crash (and optional restart) of a party's process."""

    party: str
    crash_at: float
    restart_at: float | None = None  # None = permanently silent

    @property
    def permanent(self) -> bool:
        return self.restart_at is None

    def crashed(self, now: float) -> bool:
        if now < self.crash_at:
            return False
        return self.restart_at is None or now < self.restart_at

    def validate(self) -> None:
        if self.crash_at < 0:
            raise FaultInjectionError(f"crash_at must be non-negative, got {self.crash_at}")
        if self.restart_at is not None and self.restart_at <= self.crash_at:
            raise FaultInjectionError(
                f"restart_at={self.restart_at} must come after crash_at={self.crash_at}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of transport and process faults.

    Link faults apply only while ``now < heal_at`` (``heal_at=None`` means
    they never heal); party faults are wall-clock windows independent of the
    horizon.  Plans are plain frozen dataclasses: picklable across the
    analysis process pool and hashable into a :meth:`digest` that makes any
    chaos run replayable from its result row alone.
    """

    seed: int = 0
    links: tuple[LinkFault, ...] = ()
    parties: tuple[PartyFault, ...] = ()
    heal_at: float | None = None

    def validate(self) -> "FaultPlan":
        """Check structural sanity; returns self, raises on malformation."""
        if self.heal_at is not None and self.heal_at < 0:
            raise FaultInjectionError(f"heal_at must be non-negative, got {self.heal_at}")
        for link in self.links:
            link.validate(self.heal_at)
        seen: set[str] = set()
        for fault in self.parties:
            fault.validate()
            if fault.party in seen:
                raise FaultInjectionError(f"duplicate party fault for {fault.party!r}")
            seen.add(fault.party)
        return self

    # ------------------------------------------------------------------ query

    def rng(self) -> random.Random:
        """A fresh deterministic stream for this plan's probabilistic rolls."""
        return random.Random(self.seed)

    def active(self, now: float) -> bool:
        """Whether link faults still apply at *now*."""
        return self.heal_at is None or now < self.heal_at

    def link_for(self, sender: str, recipient: str) -> LinkFault | None:
        """The first link fault matching the directed pair, if any."""
        for link in self.links:
            if link.matches(sender, recipient):
                return link
        return None

    def fault_of(self, name: str) -> PartyFault | None:
        for fault in self.parties:
            if fault.party == name:
                return fault
        return None

    def is_crashed(self, name: str, now: float) -> bool:
        fault = self.fault_of(name)
        return fault is not None and fault.crashed(now)

    def restart_time(self, name: str) -> float | None:
        """When the party's process resumes (None: no fault, or never)."""
        fault = self.fault_of(name)
        return None if fault is None else fault.restart_at

    def permanently_silent(self) -> frozenset[str]:
        """Names of parties whose process never comes back."""
        return frozenset(f.party for f in self.parties if f.permanent)

    def faulted_parties(self) -> frozenset[str]:
        """Names of every party with a process fault (crashed at all)."""
        return frozenset(f.party for f in self.parties)

    def worst_drop(self) -> float:
        """The highest drop probability across links (0 if fault-free)."""
        return max((link.drop for link in self.links), default=0.0)

    def digest(self) -> str:
        """A short stable fingerprint, identical across processes and runs."""
        canonical = repr(
            (
                self.seed,
                tuple(
                    (l.sender, l.recipient, l.drop, l.duplicate, l.max_delay, l.partitions)
                    for l in self.links
                ),
                tuple((p.party, p.crash_at, p.restart_at) for p in self.parties),
                self.heal_at,
            )
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RetryPolicy:
    """Send-timeout schedule: capped exponential backoff with a retry cap.

    The first timeout fires ``base_timeout`` after the send; each subsequent
    one multiplies by ``backoff`` up to ``max_timeout``.  After
    ``max_retries`` unacknowledged attempts the sender abandons the message
    and the wire returns custody of the asset (the simulator's stand-in for
    a bounced letter).
    """

    base_timeout: float = 4.0
    backoff: float = 2.0
    max_timeout: float = 16.0
    max_retries: int = 12

    def timeout_for(self, attempt: int) -> float:
        """Delay before retry number *attempt* (1-based)."""
        return min(self.base_timeout * self.backoff ** (attempt - 1), self.max_timeout)


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for :func:`random_fault_plan`.

    Defaults describe a hostile-but-healing world: every link loses ~15% of
    messages, duplicates ~10%, jitters delivery by up to ``max_delay``, may
    suffer one global partition window, and one party may crash (possibly
    forever, if it is a principal) — with all *link* faults healed by
    ``heal_at`` so that retries can eventually push every message through.
    """

    drop: float = 0.15
    duplicate: float = 0.10
    max_delay: float = 3.0
    partition_probability: float = 0.3
    partition_max_length: float = 6.0
    crash_probability: float = 0.35
    permanent_silence_probability: float = 0.4
    crash_window: tuple[float, float] = (0.0, 15.0)
    restart_delay: tuple[float, float] = (1.0, 10.0)
    heal_at: float = 30.0


def random_fault_plan(
    principals: "list[str] | tuple[str, ...]",
    trusted: "list[str] | tuple[str, ...]" = (),
    seed: int = 0,
    config: FaultConfig = FaultConfig(),
) -> FaultPlan:
    """Grow a validated :class:`FaultPlan` from a seed.

    Link faults are global (wildcard); the optional crash fault picks any
    party, but permanent silence is only ever assigned to a *principal* —
    a trusted component that vanishes forever would take deposits with it,
    which the model forbids (trusted components are reliable infrastructure,
    though they may crash and restart).
    """
    rng = random.Random(seed)
    partitions: tuple[tuple[float, float], ...] = ()
    if config.partition_probability > 0 and rng.random() < config.partition_probability:
        start = rng.uniform(0.0, config.heal_at * 0.6)
        length = rng.uniform(1.0, max(1.0, config.partition_max_length))
        partitions = ((start, min(start + length, config.heal_at)),)
    link = LinkFault(
        drop=config.drop,
        duplicate=config.duplicate,
        max_delay=config.max_delay,
        partitions=partitions,
    )

    party_faults: tuple[PartyFault, ...] = ()
    candidates = list(principals) + list(trusted)
    if candidates and rng.random() < config.crash_probability:
        victim = rng.choice(candidates)
        crash_at = rng.uniform(*config.crash_window)
        permanent = (
            victim in principals
            and rng.random() < config.permanent_silence_probability
        )
        restart_at = None if permanent else crash_at + rng.uniform(*config.restart_delay)
        party_faults = (PartyFault(victim, crash_at, restart_at),)

    return FaultPlan(
        seed=seed, links=(link,), parties=party_faults, heal_at=config.heal_at
    ).validate()
