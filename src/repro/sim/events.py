"""Event queue for the discrete-event simulator.

A deterministic min-heap of timed events.  Ties on time break on a
monotonically increasing sequence number, so two events scheduled for the
same instant fire in scheduling order — determinism is what lets every
simulation test assert exact outcomes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled callback.  Ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* to run *delay* time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule *callback* at an absolute time (not before now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now={self.now}")
        event = Event(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Advance the clock to, and return, the next live event (or None)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            return event
        return None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def empty(self) -> bool:
        return len(self) == 0
