"""Simulation runtime: wire a synthesized protocol to agents and run it.

:class:`Simulation` builds the whole apparatus for one exchange problem —
event queue, network, ledger with endowments, one agent per party — runs to
quiescence, and returns a :class:`SimulationResult` with the delivery log,
ledger snapshots, and network statistics.  Asset movements are applied to the
ledger at *send* time (an asset is never in two places), and conservation is
checked after every movement.

Adversaries are injected per party name; their bogus substitute documents are
endowed automatically so a cheat physically *can* ship the wrong item.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.execution import recover_execution
from repro.core.indemnity import IndemnityPlan, apply_plan
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.protocol import Protocol, synthesize_protocol
from repro.core.states import ExchangeState
from repro.errors import SimulationError
from repro.sim.agents import (
    AdversarialPrincipal,
    AdversaryStrategy,
    HonestPrincipal,
    PrincipalAgent,
)
from repro.sim.events import EventQueue
from repro.sim.ledger import Ledger, LedgerSnapshot, endow_from_interaction
from repro.sim.network import Network, NetworkStats
from repro.sim.trusted_agent import TrustedAgent


@dataclass
class SimulationResult:
    """Everything observable after one run."""

    problem_name: str
    duration: float
    initial: LedgerSnapshot
    final: LedgerSnapshot
    stats: NetworkStats
    delivered: list[Action] = field(default_factory=list)
    completed_agents: frozenset[Party] = frozenset()
    reversed_agents: frozenset[Party] = frozenset()

    @property
    def global_state(self) -> ExchangeState:
        """The run's final state as a §2.3 action set."""
        return ExchangeState.of(self.delivered)

    def money_delta(self, party: Party) -> int:
        """Final minus initial balance of *party*, in cents."""
        return self.final.balance(party) - self.initial.balance(party)

    def documents_gained(self, party: Party) -> frozenset[str]:
        return self.final.documents_of(party) - self.initial.documents_of(party)

    def documents_lost(self, party: Party) -> frozenset[str]:
        return self.initial.documents_of(party) - self.final.documents_of(party)


class Simulation:
    """One runnable instance of an exchange protocol."""

    def __init__(
        self,
        problem: ExchangeProblem,
        protocol: Protocol,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        working_capital_cents: int = 0,
    ) -> None:
        self.problem = problem
        self.protocol = protocol
        self.queue = EventQueue()
        self.network = Network(self.queue, latency=latency)
        self.ledger = Ledger()
        adversaries = adversaries or {}

        escrow_needs: dict[Party, int] = {}
        for spec in protocol.trusted_specs.values():
            for offer in spec.indemnities:
                escrow_needs[offer.offeror] = (
                    escrow_needs.get(offer.offeror, 0) + offer.amount_cents
                )
        endow_from_interaction(
            self.ledger,
            problem.interaction,
            working_capital_cents=working_capital_cents,
            extra_money=escrow_needs,
        )

        self.principals: dict[Party, PrincipalAgent] = {}
        for party in problem.interaction.principals:
            role = protocol.role_of(party)
            strategy = adversaries.get(party.name)
            if strategy is None:
                agent: PrincipalAgent = HonestPrincipal(party, role, self)
            else:
                agent = AdversarialPrincipal(party, role, self, strategy)
                for bogus in (strategy.substitute or {}).values():
                    if not bogus.is_money and self.ledger.holder(bogus.label) is None:
                        self.ledger.endow_document(party, bogus.label)
            self.principals[party] = agent
            self.network.register(party, agent.receive)

        self.trusted: dict[Party, TrustedAgent] = {}
        for agent_party, spec in protocol.trusted_specs.items():
            node = TrustedAgent(spec, self)
            self.trusted[agent_party] = node
            self.network.register(agent_party, node.receive)

        self.initial = self.ledger.seal()
        self._delivered: list[Action] = []
        self.network.log = _LoggingList(self._delivered)  # type: ignore[assignment]

    # ----------------------------------------------------------- construction

    @classmethod
    def from_problem(
        cls,
        problem: ExchangeProblem,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        deadline: float | None = None,
        working_capital_cents: int = 0,
    ) -> "Simulation":
        """Synthesize the protocol for a feasible problem and wire it up."""
        sequence = problem.execution_sequence()
        protocol = synthesize_protocol(
            problem.interaction, sequence, problem.name, deadline=deadline
        )
        return cls(problem, protocol, adversaries, latency, working_capital_cents)

    @classmethod
    def from_plan(
        cls,
        problem: ExchangeProblem,
        plan: IndemnityPlan,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        deadline: float | None = None,
        working_capital_cents: int = 0,
    ) -> "Simulation":
        """Wire up an indemnity-unlocked exchange (§6)."""
        base = recover_execution(plan.verdict.trace)
        sequence = apply_plan(plan, base)
        protocol = synthesize_protocol(
            problem.interaction,
            sequence,
            problem.name,
            deadline=deadline,
            indemnities=plan.offers,
        )
        return cls(problem, protocol, adversaries, latency, working_capital_cents)

    # ------------------------------------------------------------------- run

    def transmit(self, action: Action) -> None:
        """Move the asset on the ledger and put the message on the wire."""
        self.ledger.apply(action)
        self.ledger.check()
        self.network.send(action)

    def run(self, max_time: float = math.inf) -> SimulationResult:
        """Run to quiescence (or *max_time*) and summarize."""
        for agent in self.principals.values():
            agent.start()
        for node in self.trusted.values():
            node.start()
        while True:
            if self.queue.now > max_time:
                raise SimulationError(f"simulation exceeded max_time={max_time}")
            event = self.queue.pop()
            if event is None:
                break
            event.callback()
        return SimulationResult(
            problem_name=self.problem.name,
            duration=self.queue.now,
            initial=self.initial,
            final=self.ledger.snapshot(),
            stats=self.network.stats,
            delivered=list(self._delivered),
            completed_agents=frozenset(
                p for p, node in self.trusted.items() if node.completed
            ),
            reversed_agents=frozenset(
                p for p, node in self.trusted.items() if node.reversed
            ),
        )


class _LoggingList(list):
    """Adapter: the network appends Delivery records; we keep bare actions."""

    def __init__(self, sink: list[Action]) -> None:
        super().__init__()
        self._sink = sink

    def append(self, delivery) -> None:  # type: ignore[override]
        super().append(delivery)
        self._sink.append(delivery.action)


def simulate(
    problem: ExchangeProblem,
    adversaries: dict[str, AdversaryStrategy] | None = None,
    latency: float = 1.0,
    deadline: float | None = 100.0,
    working_capital_cents: int = 0,
) -> SimulationResult:
    """One-call convenience: synthesize, simulate, summarize."""
    sim = Simulation.from_problem(
        problem, adversaries, latency, deadline, working_capital_cents
    )
    return sim.run()
