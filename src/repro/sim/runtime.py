"""Simulation runtime: wire a synthesized protocol to agents and run it.

:class:`Simulation` builds the whole apparatus for one exchange problem —
event queue, network, ledger with endowments, one agent per party — runs to
quiescence, and returns a :class:`SimulationResult` with the delivery log,
ledger snapshots, and network statistics.

Asset semantics depend on the transport.  On the reliable wire (no fault
plan) movements are applied to the ledger at *send* time — an asset is never
in two places and delivery is certain, so this is exact.  Under fault
injection a send only moves the asset into the wire's custody account
(:data:`repro.sim.ledger.WIRE`); the first delivery releases it to the
recipient, and an abandoned message returns it to the sender.  Conservation
is checked after every movement in both regimes.

Quiescence is more than an empty event queue: a run can drain its timers
while messages are still undelivered (a permanently silent sender's retry
timers die with it).  :meth:`Simulation.run` therefore resolves stranded
envelopes after the loop and reports ``quiescent=False`` with a count when
any existed — an in-flight message can never masquerade as completion.

Adversaries are injected per party name; their bogus substitute documents are
endowed automatically so a cheat physically *can* ship the wrong item.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.actions import Action
from repro.core.execution import recover_execution
from repro.core.indemnity import IndemnityPlan, apply_plan
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.protocol import Protocol, synthesize_protocol
from repro.core.states import ExchangeState
from repro.errors import FaultInjectionError, SimulationError
from repro.obs.runtime import active as _active_tracer
from repro.sim.agents import (
    AdversarialPrincipal,
    AdversaryStrategy,
    HonestPrincipal,
    PrincipalAgent,
)
from repro.sim.events import EventQueue
from repro.sim.faults import FaultPlan
from repro.sim.ledger import Ledger, LedgerSnapshot, endow_from_interaction
from repro.sim.network import Delivery, Envelope, Network, NetworkStats, TimerHandle
from repro.sim.trusted_agent import TrustedAgent


@dataclass(frozen=True)
class RunProvenance:
    """Everything needed to replay a run bit-for-bit from its result."""

    problem_name: str
    seed: "int | float | None" = None  # the problem/scenario seed, if any
    fault_seed: int | None = None
    fault_digest: str | None = None
    latency: float = 1.0
    deadline: float | None = None
    working_capital_cents: int = 0


@dataclass
class SimulationResult:
    """Everything observable after one run."""

    problem_name: str
    duration: float
    initial: LedgerSnapshot
    final: LedgerSnapshot
    stats: NetworkStats
    delivered: list[Action] = field(default_factory=list)
    completed_agents: frozenset[Party] = frozenset()
    reversed_agents: frozenset[Party] = frozenset()
    provenance: RunProvenance | None = None
    stranded_messages: int = 0
    quiescent: bool = True

    @property
    def global_state(self) -> ExchangeState:
        """The run's final state as a §2.3 action set."""
        return ExchangeState.of(self.delivered)

    def money_delta(self, party: Party) -> int:
        """Final minus initial balance of *party*, in cents."""
        return self.final.balance(party) - self.initial.balance(party)

    def documents_gained(self, party: Party) -> frozenset[str]:
        return self.final.documents_of(party) - self.initial.documents_of(party)

    def documents_lost(self, party: Party) -> frozenset[str]:
        return self.initial.documents_of(party) - self.final.documents_of(party)


class Simulation:
    """One runnable instance of an exchange protocol."""

    def __init__(
        self,
        problem: ExchangeProblem,
        protocol: Protocol,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        working_capital_cents: int = 0,
        fault_plan: FaultPlan | None = None,
        seed: int | None = None,
    ) -> None:
        self.problem = problem
        self.protocol = protocol
        self.queue = EventQueue()
        self.fault_plan = fault_plan
        self.seed = seed
        if fault_plan is not None:
            self._check_plan_targets(fault_plan)
        self.network = Network(self.queue, latency=latency, fault_plan=fault_plan)
        self.ledger = Ledger()
        adversaries = adversaries or {}

        escrow_needs: dict[Party, int] = {}
        for spec in protocol.trusted_specs.values():
            for offer in spec.indemnities:
                escrow_needs[offer.offeror] = (
                    escrow_needs.get(offer.offeror, 0) + offer.amount_cents
                )
        endow_from_interaction(
            self.ledger,
            problem.interaction,
            working_capital_cents=working_capital_cents,
            extra_money=escrow_needs,
        )

        self.principals: dict[Party, PrincipalAgent] = {}
        for party in problem.interaction.principals:
            role = protocol.role_of(party)
            strategy = adversaries.get(party.name)
            if strategy is None:
                agent: PrincipalAgent = HonestPrincipal(party, role, self)
            else:
                agent = AdversarialPrincipal(party, role, self, strategy)
                for bogus in (strategy.substitute or {}).values():
                    if not bogus.is_money and self.ledger.holder(bogus.label) is None:
                        self.ledger.endow_document(party, bogus.label)
            self.principals[party] = agent
            self.network.register(party, agent.receive)

        self.trusted: dict[Party, TrustedAgent] = {}
        for agent_party, spec in protocol.trusted_specs.items():
            node = TrustedAgent(spec, self)
            self.trusted[agent_party] = node
            self.network.register(agent_party, node.receive)

        if fault_plan is not None:
            self.network.custody_release_hook = self._release_custody
            self.network.custody_return_hook = self._return_custody

        self.initial = self.ledger.seal()
        self._delivered: list[Action] = []
        self.network.log = _LoggingList(self._delivered)  # type: ignore[assignment]
        self.provenance = RunProvenance(
            problem_name=problem.name,
            seed=seed,
            fault_seed=fault_plan.seed if fault_plan is not None else None,
            fault_digest=fault_plan.digest() if fault_plan is not None else None,
            latency=latency,
            deadline=max(
                (s.deadline for s in protocol.trusted_specs.values() if s.deadline),
                default=None,
            ),
            working_capital_cents=working_capital_cents,
        )

    def _check_plan_targets(self, plan: FaultPlan) -> None:
        """A plan may only fault parties that exist, and may never silence
        a trusted component forever — trusted infrastructure can crash and
        restart, but a vanished escrow holder would take deposits with it."""
        principals = {p.name for p in self.problem.interaction.principals}
        trusted = {p.name for p in self.protocol.trusted_specs}
        for fault in plan.parties:
            if fault.party not in principals | trusted:
                raise FaultInjectionError(
                    f"fault plan targets unknown party {fault.party!r}"
                )
            if fault.permanent and fault.party in trusted:
                raise FaultInjectionError(
                    f"trusted component {fault.party!r} cannot be permanently "
                    "silenced (it may crash and restart, never vanish)"
                )

    # ----------------------------------------------------------- construction

    @classmethod
    def from_problem(
        cls,
        problem: ExchangeProblem,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        deadline: float | None = None,
        working_capital_cents: int = 0,
        fault_plan: FaultPlan | None = None,
        seed: int | None = None,
    ) -> "Simulation":
        """Synthesize the protocol for a feasible problem and wire it up."""
        sequence = problem.execution_sequence()
        protocol = synthesize_protocol(
            problem.interaction, sequence, problem.name, deadline=deadline
        )
        return cls(
            problem,
            protocol,
            adversaries,
            latency,
            working_capital_cents,
            fault_plan=fault_plan,
            seed=seed,
        )

    @classmethod
    def from_plan(
        cls,
        problem: ExchangeProblem,
        plan: IndemnityPlan,
        adversaries: dict[str, AdversaryStrategy] | None = None,
        latency: float = 1.0,
        deadline: float | None = None,
        working_capital_cents: int = 0,
        fault_plan: FaultPlan | None = None,
        seed: int | None = None,
    ) -> "Simulation":
        """Wire up an indemnity-unlocked exchange (§6)."""
        base = recover_execution(plan.verdict.trace)
        sequence = apply_plan(plan, base)
        protocol = synthesize_protocol(
            problem.interaction,
            sequence,
            problem.name,
            deadline=deadline,
            indemnities=plan.offers,
        )
        return cls(
            problem,
            protocol,
            adversaries,
            latency,
            working_capital_cents,
            fault_plan=fault_plan,
            seed=seed,
        )

    # ------------------------------------------------------------------- run

    def transmit(self, action: Action) -> Envelope:
        """Move the asset (to the recipient, or into wire custody under
        fault injection) and put the message on the wire."""
        if self.fault_plan is not None:
            self.ledger.hold_in_transit(action)
        else:
            self.ledger.apply(action)
        self.ledger.check()
        return self.network.send(action)

    def schedule_for(
        self,
        party: Party,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> TimerHandle:
        """A crash-aware timer owned by *party* (see Network.schedule_for)."""
        return self.network.schedule_for(party, delay, callback, label)

    def _release_custody(self, envelope: Envelope) -> None:
        self.ledger.release_from_transit(envelope.action)
        self.ledger.check()

    def _return_custody(self, envelope: Envelope) -> None:
        self.ledger.return_from_transit(envelope.action)
        self.ledger.check()

    def run(self, max_time: float = math.inf) -> SimulationResult:
        """Run to quiescence (or *max_time*) and summarize."""
        obs = _active_tracer()
        if obs is None:
            return self._run(max_time)
        with obs.span("sim.run", {"problem": self.problem.name}) as span_id:
            result = self._run(max_time)
            obs.set_attr(span_id, "duration", result.duration)
            obs.set_attr(span_id, "quiescent", result.quiescent)
        # Message counters are rolled up once from NetworkStats (rather than
        # incrementally by MessageObs) so they cannot double-count and they
        # exist even in metrics-only scopes.
        stats = result.stats
        metrics = obs.metrics
        metrics.inc("net.sent", stats.messages_sent)
        metrics.inc("net.delivered", stats.messages_delivered)
        metrics.inc("net.attempts", stats.attempts)
        metrics.inc("net.dropped", stats.dropped)
        metrics.inc("net.duplicates", stats.duplicates)
        metrics.inc("net.retransmits", stats.retransmits)
        metrics.inc("net.deferred", stats.deferred)
        metrics.inc("net.abandoned", stats.abandoned)
        metrics.inc("net.stranded", result.stranded_messages)
        metrics.histogram("sim.duration").observe(result.duration)
        return result

    def _run(self, max_time: float) -> SimulationResult:
        for agent in self.principals.values():
            agent.start()
        for node in self.trusted.values():
            node.start()
        while True:
            if self.queue.now > max_time:
                raise SimulationError(f"simulation exceeded max_time={max_time}")
            event = self.queue.pop()
            if event is None:
                break
            event.callback()
        stranded = self.network.resolve_stranded() if self.fault_plan else []
        if self.network.message_obs is not None:
            self.network.message_obs.finish(self.queue.now)
        return SimulationResult(
            problem_name=self.problem.name,
            duration=self.queue.now,
            initial=self.initial,
            final=self.ledger.snapshot(),
            stats=self.network.stats,
            delivered=list(self._delivered),
            completed_agents=frozenset(
                p for p, node in self.trusted.items() if node.completed
            ),
            reversed_agents=frozenset(
                p for p, node in self.trusted.items() if node.reversed
            ),
            provenance=self.provenance,
            stranded_messages=len(stranded),
            quiescent=not stranded,
        )


class _LoggingList(list["Delivery"]):
    """Adapter: the network appends Delivery records; we keep bare actions."""

    def __init__(self, sink: list[Action]) -> None:
        super().__init__()
        self._sink = sink

    def append(self, delivery: Delivery) -> None:
        super().append(delivery)
        self._sink.append(delivery.action)


def simulate(
    problem: ExchangeProblem,
    adversaries: dict[str, AdversaryStrategy] | None = None,
    latency: float = 1.0,
    deadline: float | None = 100.0,
    working_capital_cents: int = 0,
    fault_plan: FaultPlan | None = None,
    seed: int | None = None,
) -> SimulationResult:
    """One-call convenience: synthesize, simulate, summarize."""
    sim = Simulation.from_problem(
        problem,
        adversaries,
        latency,
        deadline,
        working_capital_cents,
        fault_plan=fault_plan,
        seed=seed,
    )
    return sim.run()
