"""Deterministic discrete-event simulator for synthesized exchange protocols.

The substrate the paper never needed to build (its evaluation is formal) but
this reproduction uses to *check the claims mechanically*: honest principals
follow their synthesized roles, trusted components implement the §2.5 escrow
semantics with deadlines and reversal, adversaries renege or ship bogus
goods, and the safety monitor verifies that every honest party ends in an
acceptable state.
"""

from repro.sim.agents import (
    AdversarialPrincipal,
    AdversaryStrategy,
    HonestPrincipal,
    PrincipalAgent,
    slow_party,
    withholder,
    wrong_item_sender,
)
from repro.sim.events import Event, EventQueue
from repro.sim.faults import (
    FaultConfig,
    FaultPlan,
    LinkFault,
    PartyFault,
    RetryPolicy,
    random_fault_plan,
)
from repro.sim.ledger import WIRE, Ledger, LedgerSnapshot, endow_from_interaction
from repro.sim.network import Delivery, Envelope, Network, NetworkStats, TimerHandle
from repro.sim.runtime import RunProvenance, Simulation, SimulationResult, simulate
from repro.sim.safety import (
    EdgeOutcome,
    PartyVerdict,
    SafetyReport,
    evaluate_safety,
)
from repro.sim.trusted_agent import TrustedAgent

__all__ = [
    "AdversarialPrincipal",
    "AdversaryStrategy",
    "HonestPrincipal",
    "PrincipalAgent",
    "slow_party",
    "withholder",
    "wrong_item_sender",
    "Event",
    "EventQueue",
    "FaultConfig",
    "FaultPlan",
    "LinkFault",
    "PartyFault",
    "RetryPolicy",
    "random_fault_plan",
    "WIRE",
    "Ledger",
    "LedgerSnapshot",
    "endow_from_interaction",
    "Delivery",
    "Envelope",
    "Network",
    "NetworkStats",
    "TimerHandle",
    "RunProvenance",
    "Simulation",
    "SimulationResult",
    "simulate",
    "EdgeOutcome",
    "PartyVerdict",
    "SafetyReport",
    "evaluate_safety",
    "TrustedAgent",
]
