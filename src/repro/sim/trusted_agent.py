"""The trusted-component agent: §2.5 escrow semantics, mechanized.

A trusted component:

* accepts the deposits its :class:`TrustedExchangeSpec` expects, rejecting
  (immediately returning) anything else — including an adversary's bogus
  substitute document, which is how "the third party verifies that the
  document matches the specification" (§1) is modeled;
* when all but one deposit is in, notifies the outstanding principal;
* when the last deposit arrives, *releases*: forwards each deposit to its
  counterpart, goods before payments;
* on deadline expiry with the exchange incomplete, reverses every deposit it
  holds (``give⁻¹``/``pay⁻¹``) and settles indemnities (§6): an escrow is
  forfeited to the beneficiary when the beneficiary performed but the
  covered counterpart did not, and refunded to the offeror otherwise.

The agent never originates value: every outgoing asset entered it first.

The escrow *decision logic* lives in the transport-agnostic
:class:`~repro.sim.protocol_core.TrustedCore`, shared verbatim with the
socket runtime (:mod:`repro.net`); this class is the simulator's
interpreter for the core's effects.  Under fault injection it inherits
:class:`ResilientNode`: duplicate deliveries of the same deposit envelope
are suppressed (rather than bounced as §2.5 over-deposits), outgoing
releases and reversals are retried under the backoff policy, and the
deadline timer is crash-deferred — if the component's process is down when
the deadline passes, the reversal fires at restart, which is exactly the
"partial-deposit + crash" interleaving the chaos harness exercises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.actions import Action
from repro.core.parties import Party
from repro.core.protocol import TrustedExchangeSpec
from repro.sim.agents import ResilientNode
from repro.sim.faults import RetryPolicy
from repro.sim.protocol_core import (
    ArmDeadline,
    DisarmDeadline,
    Effect,
    NotifyEffect,
    SendEffect,
    TrustedCore,
)

if TYPE_CHECKING:
    from repro.sim.runtime import SimulationRuntime


class TrustedAgent(ResilientNode):
    """Executes the escrow for one trusted component."""

    #: The trusted component is infrastructure: it never gives up on a
    #: release or reversal while the run lasts.
    retry_policy = RetryPolicy(max_retries=32)

    def __init__(self, spec: TrustedExchangeSpec, runtime: SimulationRuntime) -> None:
        self.spec = spec
        self.party = spec.agent
        self.runtime = runtime
        self.core = TrustedCore(spec)
        self._timeout_event = None
        self._init_resilience()

    # ----------------------------------------------------- state (core views)

    @property
    def received(self) -> dict[Party, Action]:
        return self.core.received

    @property
    def escrows(self) -> dict[Party, Action]:
        return self.core.escrows

    @property
    def completed(self) -> bool:
        return self.core.completed

    @property
    def reversed(self) -> bool:
        return self.core.reversed

    @property
    def notified(self) -> set[Party]:
        return self.core.notified

    @property
    def rejected(self) -> list[Action]:
        return self.core.rejected

    def start(self) -> None:
        """Nothing to do until a deposit arrives."""

    # --------------------------------------------------------------- receive

    def receive(self, action: Action, key: int | None = None) -> None:
        if self._is_duplicate(key):
            return  # a re-delivered copy, not a fresh over-deposit
        self._apply(self.core.on_receive(action))

    # ------------------------------------------------------------- interpret

    def _apply(self, effects: list[Effect]) -> None:
        """Map core effects onto the simulator's transport and timers.

        Order is preserved: the deadline is armed *before* the notify it
        may stamp, and disarmed before the completion releases go out.
        """
        for effect in effects:
            if isinstance(effect, ArmDeadline):
                self._arm_timeout(effect.duration)
            elif isinstance(effect, DisarmDeadline):
                self._disarm_timeout()
            elif isinstance(effect, NotifyEffect):
                expiry = self._timeout_event.time if self._timeout_event is not None else None
                self._dispatch(self.core.expiry_notice(effect.principal, expiry))
            elif isinstance(effect, SendEffect):
                self._dispatch(effect.action)

    # --------------------------------------------------------------- timeout

    def _arm_timeout(self, duration: float) -> None:
        if self._timeout_event is not None:
            return
        self._timeout_event = self.runtime.schedule_for(
            self.party,
            duration,
            self._on_timeout,
            label=f"timeout@{self.party.name}",
        )

    def _disarm_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _on_timeout(self) -> None:
        self._apply(self.core.on_deadline())
