"""The trusted-component agent: §2.5 escrow semantics, mechanized.

A trusted component:

* accepts the deposits its :class:`TrustedExchangeSpec` expects, rejecting
  (immediately returning) anything else — including an adversary's bogus
  substitute document, which is how "the third party verifies that the
  document matches the specification" (§1) is modeled;
* when all but one deposit is in, notifies the outstanding principal;
* when the last deposit arrives, *releases*: forwards each deposit to its
  counterpart, goods before payments;
* on deadline expiry with the exchange incomplete, reverses every deposit it
  holds (``give⁻¹``/``pay⁻¹``) and settles indemnities (§6): an escrow is
  forfeited to the beneficiary when the beneficiary performed but the
  covered counterpart did not, and refunded to the offeror otherwise.

The agent never originates value: every outgoing asset entered it first.

Under fault injection the agent inherits :class:`ResilientNode`: duplicate
deliveries of the same deposit envelope are suppressed (rather than bounced
as §2.5 over-deposits), outgoing releases and reversals are retried under
the backoff policy, and the deadline timer is crash-deferred — if the
component's process is down when the deadline passes, the reversal fires at
restart, which is exactly the "partial-deposit + crash" interleaving the
chaos harness exercises.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.actions import Action, notify, transfer
from repro.core.items import Money
from repro.core.parties import Party
from repro.core.protocol import TrustedExchangeSpec
from repro.sim.agents import ResilientNode
from repro.sim.faults import RetryPolicy

if TYPE_CHECKING:
    from repro.sim.runtime import SimulationRuntime


class TrustedAgent(ResilientNode):
    """Executes the escrow for one trusted component."""

    #: The trusted component is infrastructure: it never gives up on a
    #: release or reversal while the run lasts.
    retry_policy = RetryPolicy(max_retries=32)

    def __init__(self, spec: TrustedExchangeSpec, runtime: SimulationRuntime) -> None:
        self.spec = spec
        self.party = spec.agent
        self.runtime = runtime
        self.received: dict[Party, Action] = {}
        self.escrows: dict[Party, Action] = {}  # offeror -> escrow deposit
        self.completed = False
        self.reversed = False
        self.notified: set[Party] = set()
        self.rejected: list[Action] = []
        self._timeout_event = None
        self._init_resilience()

    def start(self) -> None:
        """Nothing to do until a deposit arrives."""

    # --------------------------------------------------------------- receive

    def receive(self, action: Action, key: int | None = None) -> None:
        if self._is_duplicate(key):
            return  # a re-delivered copy, not a fresh over-deposit
        if not action.is_transfer or action.inverted:
            return  # notifies / stray reversals carry no escrow duty
        assert action.item is not None
        sender = action.effective_sender
        if self._is_escrow(sender, action):
            self.escrows[sender] = action
            return
        expected = dict(self.spec.deposits).get(sender)
        if (
            expected is None
            or action.item != expected
            or self.completed
            or self.reversed
            or sender in self.received
        ):
            # Unknown depositor, wrong item, duplicate, or too late: send it
            # straight back (§2.5: a trusted component may reverse actions
            # in which it was the recipient).
            self.rejected.append(action)
            self._dispatch(action.inverse())
            return
        self.received[sender] = action
        self._arm_timeout()
        self._progress()

    def _is_escrow(self, sender: Party, action: Action) -> bool:
        for offer in self.spec.indemnities:
            if (
                sender == offer.offeror
                and isinstance(action.item, Money)
                and action.item.cents == offer.amount_cents
                and "indemnity" in action.item.label
            ):
                return True
        return False

    # -------------------------------------------------------------- progress

    def _progress(self) -> None:
        pending = [p for p, _ in self.spec.deposits if p not in self.received]
        if not pending:
            self._complete()
        elif len(pending) == 1 and pending[0] not in self.notified:
            self.notified.add(pending[0])
            # §2.5: the notification carries an expiry — "the earliest
            # expiration of the other pieces held for the exchange".  If the
            # notified principal complies before it, completion is assured.
            expiry = self._timeout_event.time if self._timeout_event else None
            notice = notify(self.party, pending[0])
            if expiry is not None:
                notice = replace(notice, deadline=expiry)
            self._dispatch(notice)

    def _complete(self) -> None:
        self.completed = True
        self._disarm_timeout()
        releases = [
            transfer(self.party, principal, item)
            for principal, item in self.spec.entitlements
        ]
        releases.sort(
            key=lambda a: (isinstance(a.item, Money), a.recipient.name)
        )
        for release in releases:
            self._dispatch(release)
        for escrow in self.escrows.values():
            self._dispatch(escrow.inverse())  # refund on success
        self.escrows.clear()

    # --------------------------------------------------------------- timeout

    def _arm_timeout(self) -> None:
        if self.spec.deadline is None or self._timeout_event is not None:
            return
        self._timeout_event = self.runtime.schedule_for(
            self.party,
            self.spec.deadline,
            self._on_timeout,
            label=f"timeout@{self.party.name}",
        )

    def _disarm_timeout(self) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None

    def _on_timeout(self) -> None:
        if self.completed or self.reversed:
            return
        self.reversed = True
        self._settle_indemnities()
        for deposit in self.received.values():
            self._dispatch(deposit.inverse())
        self.received.clear()

    def _settle_indemnities(self) -> None:
        for offer in self.spec.indemnities:
            escrow = self.escrows.pop(offer.offeror, None)
            if escrow is None:
                continue
            beneficiary_performed = offer.beneficiary in self.received
            offeror_performed = offer.offeror in self.received
            if beneficiary_performed and not offeror_performed:
                # Forfeit: hand the escrowed sum to the beneficiary.
                assert escrow.item is not None
                self._dispatch(
                    transfer(self.party, offer.beneficiary, escrow.item)
                )
            else:
                self._dispatch(escrow.inverse())
