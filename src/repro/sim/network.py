"""Message transport for the simulator.

Every communication in the model *is* an action (a transfer or a notify), so
the network carries :class:`~repro.core.actions.Action` payloads.  Two
regimes coexist:

* **Reliable** (no fault plan — the paper's assumption, "parties renege,
  wires do not"): delivery is FIFO per sender with a fixed latency, exactly
  once, and asset movement is the runtime's business at send time.
* **Unreliable** (a :class:`~repro.sim.faults.FaultPlan` is installed): each
  send becomes an :class:`Envelope` that the transport attempts to deliver
  under seeded per-link drop/duplicate/delay/partition faults and per-party
  crash faults.  Senders drive retransmission via :meth:`Network.retransmit`
  (the agents own the timeout/backoff policy); the first successful delivery
  of an envelope fires the runtime's custody-release hook and is logged,
  duplicate copies reach the handler with the same dedup key and no asset
  effect.  Deliveries to a *crashed* party still land (the host accepts the
  asset) but the handler call is parked in a mailbox replayed at restart;
  a permanently silent party simply never replays.  Per-link delivery times
  are clamped monotone, so delay jitter alone cannot reorder one sender's
  messages (the FIFO claim survives delay injection — the property suite
  holds the transport to this).

Handlers are registered per party and invoked as ``handler(action, key)``
where *key* is the envelope's dedup key (``None`` never occurs via the
network; direct unit-test invocations may omit it).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.core.actions import Action
from repro.core.parties import Party
from repro.errors import SimulationError
from repro.obs.messages import MessageObs
from repro.obs.runtime import active as _active_tracer
from repro.sim.events import EventQueue
from repro.sim.faults import FaultPlan


@dataclass(frozen=True)
class Delivery:
    """One delivered message: when it was sent, when it arrived, what it was."""

    sent_at: float
    delivered_at: float
    action: Action


@dataclass
class Envelope:
    """One logical message and its transport fate."""

    key: int
    action: Action
    sent_at: float
    attempts: int = 0
    delivered: bool = False
    delivered_at: float | None = None
    abandoned: bool = False
    span_id: int = -1  # observability span context (-1 when untraced)


@dataclass
class NetworkStats:
    """Counters the §8 cost analysis and the chaos study read off a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    transfers: int = 0
    notifies: int = 0
    by_sender: dict[Party, int] = field(default_factory=dict)
    # Fault-injection counters (all zero on the reliable transport).
    attempts: int = 0
    dropped: int = 0
    duplicates: int = 0
    duplicate_deliveries: int = 0
    retransmits: int = 0
    deferred: int = 0
    abandoned: int = 0


class TimerHandle:
    """A cancellable, crash-deferrable timer returned by ``schedule_for``.

    Duck-types the slice of :class:`~repro.sim.events.Event` the agents use
    (``time`` and ``cancel``) while surviving re-scheduling across a crash
    window, which a bare event cannot.
    """

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False
        self._event = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()


class Network:
    """Schedules action deliveries on the shared event queue."""

    def __init__(
        self,
        queue: EventQueue,
        latency: float = 1.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.queue = queue
        self.latency = latency
        self.fault_plan = fault_plan.validate() if fault_plan is not None else None
        self.stats = NetworkStats()
        self.log: list[Delivery] = []
        self._handlers: dict[Party, Callable[..., None]] = {}
        self._envelopes: dict[int, Envelope] = {}
        self._keys = itertools.count(1)
        self._rng = fault_plan.rng() if fault_plan is not None else None
        self._fifo_floor: dict[tuple[Party, Party], float] = {}
        self._mailbox: dict[Party, list[tuple[Action, int]]] = {}
        # When a tracer is active, every envelope gets a span whose events
        # are the transport's fate decisions — the causal message trace.
        tracer = _active_tracer()
        self.message_obs: MessageObs | None = (
            MessageObs(tracer) if tracer is not None else None
        )
        # The runtime installs these to move wire custody on the ledger.
        self.custody_release_hook: Callable[[Envelope], None] | None = None
        self.custody_return_hook: Callable[[Envelope], None] | None = None
        if self.fault_plan is not None:
            for fault in self.fault_plan.parties:
                if fault.restart_at is not None:
                    queue.schedule_at(
                        fault.restart_at,
                        lambda name=fault.party: self._drain_mailbox(name),
                        label=f"restart {fault.party}",
                    )

    @property
    def faulty(self) -> bool:
        return self.fault_plan is not None

    def register(self, party: Party, handler: Callable[..., None]) -> None:
        """Attach the node that receives messages addressed to *party*."""
        if party in self._handlers:
            raise SimulationError(f"{party.name} is already registered on the network")
        self._handlers[party] = handler

    # -------------------------------------------------------------------- send

    def send(self, action: Action) -> Envelope:
        """Send *action* to its effective recipient; returns the envelope."""
        recipient = action.effective_recipient
        if recipient not in self._handlers:
            raise SimulationError(f"no node registered for {recipient.name}")
        sender = action.effective_sender
        self.stats.messages_sent += 1
        self.stats.by_sender[sender] = self.stats.by_sender.get(sender, 0) + 1
        if action.is_transfer:
            self.stats.transfers += 1
        else:
            self.stats.notifies += 1
        envelope = Envelope(next(self._keys), action, self.queue.now)
        self._envelopes[envelope.key] = envelope
        if self.message_obs is not None:
            envelope.span_id = self.message_obs.send(
                envelope.key, sender.name, recipient.name, str(action), envelope.sent_at
            )
        self._attempt(envelope)
        return envelope

    def retransmit(self, key: int) -> bool:
        """Re-attempt an undelivered envelope; no-op once delivered/abandoned."""
        envelope = self._envelopes[key]
        if envelope.delivered or envelope.abandoned:
            return False
        self.stats.retransmits += 1
        if self.message_obs is not None:
            self.message_obs.retransmit(envelope.key, self.queue.now)
        self._attempt(envelope)
        return True

    def abandon(self, key: int) -> bool:
        """Give up on an envelope: the wire returns custody to the sender."""
        envelope = self._envelopes[key]
        if envelope.delivered or envelope.abandoned:
            return False
        envelope.abandoned = True
        self.stats.abandoned += 1
        if self.message_obs is not None:
            self.message_obs.abandon(envelope.key, self.queue.now)
        if self.custody_return_hook is not None:
            self.custody_return_hook(envelope)
        return True

    def is_delivered(self, key: int) -> bool:
        return self._envelopes[key].delivered

    def envelope(self, key: int) -> Envelope:
        return self._envelopes[key]

    @property
    def in_flight(self) -> list[Envelope]:
        """Envelopes neither delivered nor abandoned yet."""
        return [
            e for e in self._envelopes.values() if not e.delivered and not e.abandoned
        ]

    def resolve_stranded(self) -> list[Envelope]:
        """Abandon every still-undelivered envelope (quiescence backstop).

        A message can strand when its sender's retry timers died with the
        sender (permanent silence) or were exhausted without an explicit
        abandon.  Returning custody keeps the final ledger meaningful: the
        asset is back with whoever relinquished it — the §2.3 status quo.
        """
        stranded = self.in_flight
        for envelope in stranded:
            self.abandon(envelope.key)
        return stranded

    # ----------------------------------------------------------------- faults

    def _attempt(self, envelope: Envelope) -> None:
        """Schedule one delivery attempt, running the fault gauntlet."""
        envelope.attempts += 1
        self.stats.attempts += 1
        action = envelope.action
        now = self.queue.now
        if self.message_obs is not None:
            self.message_obs.attempt(envelope.key, envelope.attempts, now)
        plan = self.fault_plan
        times = [now + self.latency]
        if plan is not None and plan.active(now):
            link = plan.link_for(
                action.effective_sender.name, action.effective_recipient.name
            )
            if link is not None:
                if link.partitioned(now) or (
                    link.drop > 0 and self._rng.random() < link.drop
                ):
                    self.stats.dropped += 1
                    if self.message_obs is not None:
                        self.message_obs.drop(envelope.key, now)
                    return  # this attempt is lost; the asset stays on the wire
                jitter = (
                    self._rng.uniform(0.0, link.max_delay) if link.max_delay > 0 else 0.0
                )
                times = [now + self.latency + jitter]
                if link.duplicate > 0 and self._rng.random() < link.duplicate:
                    self.stats.duplicates += 1
                    if self.message_obs is not None:
                        self.message_obs.duplicate(envelope.key, now)
                    times.append(times[0] + self.latency)
        for t in times:
            if plan is not None:
                # Clamp per-link delivery times monotone: jitter may stretch
                # the wire but never lets a later message overtake an earlier
                # one on the same directed link.
                pair = (action.effective_sender, action.effective_recipient)
                t = max(t, self._fifo_floor.get(pair, 0.0))
                self._fifo_floor[pair] = t
            self.queue.schedule_at(
                t, lambda e=envelope: self._deliver(e), label=str(action)
            )

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.abandoned:
            return  # a late copy of a message the wire already bounced
        recipient = envelope.action.effective_recipient
        if not envelope.delivered:
            envelope.delivered = True
            envelope.delivered_at = self.queue.now
            if self.custody_release_hook is not None:
                self.custody_release_hook(envelope)
            self.stats.messages_delivered += 1
            if self.message_obs is not None:
                self.message_obs.deliver(envelope.key, self.queue.now)
            self.log.append(Delivery(envelope.sent_at, self.queue.now, envelope.action))
        else:
            self.stats.duplicate_deliveries += 1
            if self.message_obs is not None:
                self.message_obs.duplicate_delivery(envelope.key, self.queue.now)
        plan = self.fault_plan
        if plan is not None and plan.is_crashed(recipient.name, self.queue.now):
            # The host accepted the asset; the process is down.  Park the
            # handler call until restart (never, for permanent silence).
            self.stats.deferred += 1
            if self.message_obs is not None:
                self.message_obs.defer(envelope.key, self.queue.now)
            self._mailbox.setdefault(recipient, []).append(
                (envelope.action, envelope.key)
            )
            return
        self._handlers[recipient](envelope.action, envelope.key)

    def _drain_mailbox(self, name: str) -> None:
        """Replay deliveries parked while the party's process was down."""
        party = next((p for p in self._handlers if p.name == name), None)
        if party is None:
            return
        for action, key in self._mailbox.pop(party, []):
            self._handlers[party](action, key)

    # ----------------------------------------------------------------- timers

    def schedule_for(
        self,
        party: Party,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> TimerHandle:
        """Schedule a timer owned by *party*'s process.

        While the party is crashed the timer defers to its restart instant;
        if the party never restarts the timer dies with it.  On the reliable
        transport this is a plain delayed callback.
        """
        handle = TimerHandle(self.queue.now + delay)

        def fire() -> None:
            if handle.cancelled:
                return
            plan = self.fault_plan
            if plan is not None and plan.is_crashed(party.name, self.queue.now):
                restart = plan.restart_time(party.name)
                if restart is None:
                    return  # the process never comes back; neither does this
                handle._event = self.queue.schedule_at(restart, fire, label)
                return
            callback()

        handle._event = self.queue.schedule(delay, fire, label)
        return handle
