"""Message transport for the simulator.

Every communication in the model *is* an action (a transfer or a notify), so
the network carries :class:`~repro.core.actions.Action` payloads.  Delivery
is reliable and FIFO per sender with a configurable fixed latency; loss and
misbehaviour are modeled at the *agent* level (an adversary that never sends)
rather than the transport level, matching the paper's failure model — parties
renege, wires do not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.actions import Action
from repro.core.parties import Party
from repro.errors import SimulationError
from repro.sim.events import EventQueue


@dataclass(frozen=True)
class Delivery:
    """One delivered message: when it was sent, when it arrived, what it was."""

    sent_at: float
    delivered_at: float
    action: Action


@dataclass
class NetworkStats:
    """Counters the §8 cost analysis reads off after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    transfers: int = 0
    notifies: int = 0
    by_sender: dict[Party, int] = field(default_factory=dict)


class Network:
    """Schedules action deliveries on the shared event queue."""

    def __init__(self, queue: EventQueue, latency: float = 1.0) -> None:
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.queue = queue
        self.latency = latency
        self.stats = NetworkStats()
        self.log: list[Delivery] = []
        self._handlers: dict[Party, Callable[[Action], None]] = {}

    def register(self, party: Party, handler: Callable[[Action], None]) -> None:
        """Attach the node that receives messages addressed to *party*."""
        if party in self._handlers:
            raise SimulationError(f"{party.name} is already registered on the network")
        self._handlers[party] = handler

    def send(self, action: Action) -> None:
        """Send *action* to its effective recipient after the latency."""
        recipient = action.effective_recipient
        if recipient not in self._handlers:
            raise SimulationError(f"no node registered for {recipient.name}")
        sent_at = self.queue.now
        sender = action.effective_sender
        self.stats.messages_sent += 1
        self.stats.by_sender[sender] = self.stats.by_sender.get(sender, 0) + 1
        if action.is_transfer:
            self.stats.transfers += 1
        else:
            self.stats.notifies += 1

        def deliver() -> None:
            self.stats.messages_delivered += 1
            self.log.append(Delivery(sent_at, self.queue.now, action))
            self._handlers[recipient](action)

        self.queue.schedule(self.latency, deliver, label=str(action))
