"""Asset ledger: who holds what, with conservation invariants.

The ledger tracks two asset classes:

* **money** — integer cent balances per party (may be seeded with working
  capital so solvent brokers can buy before they are paid);
* **goods** — each document label has exactly one holder at any time.

Every applied transfer moves assets atomically; :meth:`Ledger.check` asserts
conservation (total money constant, every document singly held), which the
simulator calls after each delivery — a violated invariant is a bug in the
harness, not modeled misbehaviour, so it raises :class:`SimulationError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.core.actions import Action
from repro.core.interaction import InteractionGraph
from repro.core.items import Item, Money
from repro.core.parties import Party, Role
from repro.errors import SimulationError

#: Custody account for assets in transit on an unreliable wire.  Under fault
#: injection an asset leaves its sender when the message is sent and reaches
#: the recipient only when the message is *delivered*; in between it is held
#: here, so a dropped message can neither destroy the asset nor leave it
#: spendable in two places.  The reliable transport never uses this account.
WIRE = Party("wire-in-transit", Role.TRUSTED)


@dataclass(frozen=True)
class LedgerSnapshot:
    """An immutable view of balances and holdings at one instant."""

    balances: dict[Party, int]
    holdings: dict[str, Party]  # document label -> holder

    def balance(self, party: Party) -> int:
        return self.balances.get(party, 0)

    def documents_of(self, party: Party) -> frozenset[str]:
        return frozenset(label for label, holder in self.holdings.items() if holder == party)

    def digest(self) -> str:
        """A short stable fingerprint of the snapshot, order-independent.

        Two snapshots digest equal iff every party holds the same balance
        and every document the same holder — the equality the crash-recovery
        oracle asserts across runtimes (simulator vs. socket runtime) and
        across a SIGKILL/WAL-replay boundary.  A party with a zero balance
        digests identically to one absent from the snapshot: "has no money"
        is one state, however a runtime happens to record it.
        """
        canonical = repr(
            (
                sorted(
                    (party.name, cents)
                    for party, cents in self.balances.items()
                    if cents != 0
                ),
                sorted((label, holder.name) for label, holder in self.holdings.items()),
            )
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class Ledger:
    """Mutable asset state for one simulation run."""

    def __init__(self) -> None:
        self._balances: dict[Party, int] = {}
        self._holdings: dict[str, Party] = {}
        self._initial_money_total = 0
        self._sealed = False

    # ------------------------------------------------------------- endowment

    def endow_money(self, party: Party, amount_cents: int) -> None:
        """Seed *party* with working capital (before the run starts)."""
        if self._sealed:
            raise SimulationError("cannot endow after the ledger is sealed")
        if amount_cents < 0:
            raise SimulationError("endowments must be non-negative")
        self._balances[party] = self._balances.get(party, 0) + amount_cents
        self._initial_money_total += amount_cents

    def endow_document(self, party: Party, label: str) -> None:
        """Give *party* initial possession of a document."""
        if self._sealed:
            raise SimulationError("cannot endow after the ledger is sealed")
        if label in self._holdings:
            raise SimulationError(f"document {label!r} already endowed")
        self._holdings[label] = party

    def seal(self) -> LedgerSnapshot:
        """Freeze endowments; returns the initial snapshot."""
        self._sealed = True
        return self.snapshot()

    # -------------------------------------------------------------- transfer

    def apply(self, action: Action) -> None:
        """Apply a (possibly inverted) transfer to the ledger.

        Raises :class:`SimulationError` when the effective sender does not
        hold the asset — the harness must never let that happen; agents that
        *would* overdraw decline to send instead.
        """
        if not action.is_transfer:
            return  # notifications move no assets
        assert action.item is not None
        sender = action.effective_sender
        recipient = action.effective_recipient
        self._move(sender, recipient, action.item)

    def _move(self, sender: Party, recipient: Party, item: Item) -> None:
        if isinstance(item, Money):
            balance = self._balances.get(sender, 0)
            if balance < item.cents:
                raise SimulationError(
                    f"{sender.name} cannot pay {item}: balance is "
                    f"{balance / 100:.2f}"
                )
            self._balances[sender] = balance - item.cents
            self._balances[recipient] = self._balances.get(recipient, 0) + item.cents
        else:
            holder = self._holdings.get(item.label)
            if holder != sender:
                raise SimulationError(
                    f"{sender.name} cannot give {item.label!r}: held by "
                    f"{holder.name if holder else 'nobody'}"
                )
            self._holdings[item.label] = recipient

    # ----------------------------------------------------------- wire custody

    def hold_in_transit(self, action: Action) -> None:
        """Move the action's asset from its effective sender to the wire."""
        if not action.is_transfer:
            return
        assert action.item is not None
        self._move(action.effective_sender, WIRE, action.item)

    def release_from_transit(self, action: Action) -> None:
        """Deliver the wire's custody to the action's effective recipient."""
        if not action.is_transfer:
            return
        assert action.item is not None
        self._move(WIRE, action.effective_recipient, action.item)

    def return_from_transit(self, action: Action) -> None:
        """Hand an undeliverable asset back to its effective sender."""
        if not action.is_transfer:
            return
        assert action.item is not None
        self._move(WIRE, action.effective_sender, action.item)

    def in_transit(self) -> tuple[int, frozenset[str]]:
        """Wire custody right now: (cents held, document labels held)."""
        return self._balances.get(WIRE, 0), self.documents_of(WIRE)

    # ----------------------------------------------------------------- query

    def can_transfer(self, party: Party, item: Item) -> bool:
        """Whether *party* currently holds *item* (or the funds)."""
        if isinstance(item, Money):
            return self._balances.get(party, 0) >= item.cents
        return self._holdings.get(item.label) == party

    def balance(self, party: Party) -> int:
        """Money balance of *party* in cents."""
        return self._balances.get(party, 0)

    def holder(self, label: str) -> Party | None:
        """Current holder of a document label."""
        return self._holdings.get(label)

    def documents_of(self, party: Party) -> frozenset[str]:
        """Labels of all documents currently held by *party*."""
        return frozenset(l for l, h in self._holdings.items() if h == party)

    def snapshot(self) -> LedgerSnapshot:
        """An immutable copy of the current state."""
        return LedgerSnapshot(dict(self._balances), dict(self._holdings))

    # ------------------------------------------------------------- invariant

    def check(self) -> None:
        """Assert conservation; raises :class:`SimulationError` on violation."""
        total = sum(self._balances.values())
        if total != self._initial_money_total:
            raise SimulationError(
                f"money not conserved: {total} != {self._initial_money_total}"
            )
        for party, balance in self._balances.items():
            if balance < 0:
                raise SimulationError(f"{party.name} has negative balance {balance}")


def endow_from_interaction(
    ledger: Ledger,
    interaction: InteractionGraph,
    working_capital_cents: int = 0,
    extra_money: dict[Party, int] | None = None,
) -> None:
    """Seed a ledger from an interaction graph.

    Each principal receives the money it is due to pay out (it is solvent,
    matching §5's assumption) plus optional *working_capital_cents*; each
    document is endowed to its original owner — the principal that provides
    it without expecting to receive it first (producers, not resellers).
    """
    extra_money = extra_money or {}
    for principal in interaction.principals:
        outlay = sum(
            e.provides.cents
            for e in interaction.edges
            if e.principal == principal and isinstance(e.provides, Money)
        )
        ledger.endow_money(
            principal,
            outlay + working_capital_cents + extra_money.get(principal, 0),
        )
    for edge in interaction.edges:
        if isinstance(edge.provides, Money):
            continue
        incoming = any(
            interaction.expects(other) == edge.provides
            for other in interaction.edges
            if other.principal == edge.principal and other != edge
        )
        if not incoming and ledger.holder(edge.provides.label) is None:
            ledger.endow_document(edge.principal, edge.provides.label)
