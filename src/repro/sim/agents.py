"""Principal agents: honest role-followers and adversaries.

An honest principal executes its synthesized :class:`PrincipalRole`: it
fires each instruction, in order, as soon as every precondition has been
locally observed (a transfer delivered to it or a notify addressed to it)
and the ledger confirms it holds the asset.

Adversaries deviate in the two ways the paper worries about:

* :class:`Withholder` — performs the first *perform* instructions then
  reneges (the publisher that keeps the money, the customer that refuses to
  pay);
* :class:`WrongItemSender` — substitutes a bogus item for a promised
  document (the publisher that "might provide an incorrect document", §1).

The point of the safety benchmarks is that under the synthesized protocol
*no honest party is harmed* whatever these adversaries do, whereas naive
direct exchange harms someone.

Under fault injection (see :mod:`repro.sim.faults`) every agent gains two
coping behaviours via :class:`ResilientNode`: idempotent duplicate
suppression keyed on the transport's envelope keys, and send-timeouts with
capped exponential backoff that retransmit undelivered messages until a
retry cap, after which the message is abandoned and the wire returns the
asset.  Both are inert on the reliable transport, so the paper's original
semantics are untouched when no fault plan is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.actions import Action, transfer
from repro.core.items import Document, Item
from repro.core.parties import Party
from repro.core.protocol import PrincipalRole
from repro.sim.faults import RetryPolicy
from repro.sim.protocol_core import PrincipalCore

if TYPE_CHECKING:
    from repro.sim.network import Envelope
    from repro.sim.runtime import SimulationRuntime


class ResilientNode:
    """Fault-coping machinery shared by principal and trusted agents.

    Subclasses provide ``party``, ``runtime`` and call :meth:`_init_resilience`
    during construction.  All of it degrades to pass-through behaviour when
    the runtime has no fault plan (or, in unit tests, no transport at all).
    """

    #: Backoff schedule for unacknowledged sends; subclasses may override.
    retry_policy = RetryPolicy()

    party: Party
    runtime: SimulationRuntime

    def _init_resilience(self) -> None:
        self._seen_keys: set[int] = set()

    def _is_duplicate(self, key: int | None) -> bool:
        """Record *key* and report whether it was already processed."""
        if key is None:
            return False
        if key in self._seen_keys:
            return True
        self._seen_keys.add(key)
        return False

    def _dispatch(self, action: Action) -> Envelope:
        """Transmit *action* and arm the retry schedule for it."""
        envelope = self.runtime.transmit(action)
        self._arm_retries(envelope)
        return envelope

    def _arm_retries(self, envelope: Envelope | None) -> None:
        if envelope is None or getattr(self.runtime, "fault_plan", None) is None:
            return
        network = self.runtime.network
        policy = self.retry_policy

        def check(attempt: int) -> None:
            if network.envelope(envelope.key).delivered:
                return
            if attempt > policy.max_retries:
                network.abandon(envelope.key)
                return
            if network.retransmit(envelope.key):
                self.runtime.schedule_for(
                    self.party,
                    policy.timeout_for(attempt),
                    lambda: check(attempt + 1),
                    label=f"retry#{attempt} by {self.party.name}",
                )

        self.runtime.schedule_for(
            self.party,
            policy.timeout_for(1),
            lambda: check(1),
            label=f"send-timeout by {self.party.name}",
        )


class PrincipalAgent(ResilientNode):
    """Base class: a principal attached to a runtime (see runtime.py)."""

    def __init__(self, party: Party, role: PrincipalRole, runtime: SimulationRuntime) -> None:
        self.party = party
        self.role = role
        self.runtime = runtime
        self.core = PrincipalCore(role, permits=self._permits, transform=self._transform)
        self.sent: list[Action] = []
        self._init_resilience()

    # ----------------------------------------------------- state (core views)

    @property
    def observed(self) -> set[Action]:
        return self.core.observed

    @property
    def _next_instruction(self) -> int:
        return self.core.next_instruction

    def start(self) -> None:
        """Called once when the simulation begins."""
        self._try_fire()

    def receive(self, action: Action, key: int | None = None) -> None:
        """Called by the network for every action delivered to this party.

        Observations are normalized (deadline stripped) before matching
        against instruction guards: the synthesized preconditions are
        deadline-free, while live notifies carry their §2.5 expiry stamp.
        Duplicate deliveries (same envelope key) are suppressed.
        """
        if self._is_duplicate(key):
            return
        self.core.observe(action)
        self._try_fire()

    # ------------------------------------------------------------ scheduling

    def _try_fire(self) -> None:
        """Drain the core: fire instructions while their guards hold.

        The instruction-walking logic itself lives in the transport-agnostic
        :class:`~repro.sim.protocol_core.PrincipalCore` (shared with the
        socket runtime); this runtime contributes the ledger custody check
        and the envelope dispatch.
        """
        self.core.drain(holds=self._holds, emit=self._emit)

    def _holds(self, action: Action) -> bool:
        return self.runtime.ledger.can_transfer(self.party, action.item)

    def _emit(self, action: Action) -> None:
        self._send(action)
        self.sent.append(action)

    # ------------------------------------------------------------- extension

    def _permits(self, position: int, action: Action) -> bool:
        """Whether this agent is willing to perform instruction *position*."""
        return True

    def _transform(self, action: Action) -> Action | None:
        """Rewrite the action before sending (None = silently skip)."""
        return action

    def _send(self, action: Action) -> None:
        """Dispatch the action (subclasses may delay it)."""
        self._dispatch(action)


class HonestPrincipal(PrincipalAgent):
    """Follows the synthesized role to the letter."""


@dataclass(frozen=True)
class AdversaryStrategy:
    """How a deviating principal deviates.

    ``perform`` — number of leading instructions executed honestly before
    withholding everything else (0 = total no-show).
    ``substitute`` — map from document label to the bogus item sent instead.
    """

    perform: int = 0
    substitute: dict[str, Item] | None = None
    delay: float = 0.0  # extra think-time before each send (a slow party)

    def describe(self) -> str:
        parts = [f"performs first {self.perform} instruction(s)"]
        if self.substitute:
            swaps = ", ".join(f"{k}->{v}" for k, v in self.substitute.items())
            parts.append(f"substitutes {swaps}")
        if self.delay:
            parts.append(f"delays each send by {self.delay}")
        return "; ".join(parts)


class AdversarialPrincipal(PrincipalAgent):
    """A principal following an :class:`AdversaryStrategy` instead of its role."""

    def __init__(
        self,
        party: Party,
        role: PrincipalRole,
        runtime: SimulationRuntime,
        strategy: AdversaryStrategy,
    ) -> None:
        super().__init__(party, role, runtime)
        self.strategy = strategy

    def _permits(self, position: int, action: Action) -> bool:
        return position < self.strategy.perform

    def _transform(self, action: Action) -> Action | None:
        substitute = self.strategy.substitute or {}
        if action.item is not None and action.item.label in substitute:
            bogus = substitute[action.item.label]
            return transfer(action.sender, action.recipient, bogus)
        return action

    def _send(self, action: Action) -> None:
        if self.strategy.delay > 0:
            self.runtime.queue.schedule(
                self.strategy.delay,
                lambda: self._dispatch(action),
                label=f"delayed send by {self.party.name}",
            )
        else:
            self._dispatch(action)


def withholder(after: int = 0) -> AdversaryStrategy:
    """A strategy that reneges after *after* honest instructions."""
    return AdversaryStrategy(perform=after)


def wrong_item_sender(original_label: str, bogus_label: str = "bogus") -> AdversaryStrategy:
    """A strategy that ships a bogus document instead of *original_label*."""
    return AdversaryStrategy(
        perform=10**9, substitute={original_label: Document(bogus_label)}
    )


def slow_party(delay: float) -> AdversaryStrategy:
    """A party that honours its role but thinks for *delay* before each send.

    Exercises the §2.2/§2.5 temporal semantics: deposits arriving after the
    trusted component's deadline bounce, and notifications expire.
    """
    return AdversaryStrategy(perform=10**9, delay=delay)
