"""Safety monitor: did every honest party end acceptably?

The paper's guarantee (§1, §2.3): in a feasible exchange executed per the
recovered sequence, "no participant ever risks losing money or goods without
receiving everything promised in exchange".  This module operationalizes the
§2.3 acceptance structure against a simulation's ledger and delivery log:

* **Per-exchange atomicity** — for each interaction edge of a principal
  (provide ``out`` via *t*, expect ``in``): either the principal never
  permanently gave ``out`` (it kept it, or it was returned), or it received
  ``in``.  This captures the four acceptable states of §2.3 (complete,
  status quo, refund, windfall) and rejects exactly the bad ones (gave and
  got nothing).
* **Bundle atomicity** — a principal with an all-or-nothing conjunction
  (§4.1 second type) additionally requires: every expected document arrived,
  or its net un-refunded outlay across the bundle is covered by indemnity
  forfeits it collected (§6's "enough money from Broker #1's penalty to
  offset the cost of document #2").

Trusted components are checked for neutrality: they end with exactly what
they started (they are conduits, §2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.actions import Action
from repro.core.indemnity import splittable_conjunctions
from repro.core.interaction import InteractionEdge
from repro.core.items import Money
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.sim.runtime import SimulationResult


@dataclass(frozen=True)
class EdgeOutcome:
    """How one interaction edge ended for its principal."""

    edge: InteractionEdge
    gave_permanently: bool
    received_expected: bool

    @property
    def ok(self) -> bool:
        return (not self.gave_permanently) or self.received_expected


@dataclass(frozen=True)
class PartyVerdict:
    """The safety verdict for one party."""

    party: Party
    ok: bool
    reasons: tuple[str, ...]
    money_delta_cents: int
    forfeits_received_cents: int


@dataclass(frozen=True)
class SafetyReport:
    """Aggregated verdicts for one simulation run."""

    problem_name: str
    verdicts: tuple[PartyVerdict, ...]

    def verdict_of(self, name: str) -> PartyVerdict:
        for verdict in self.verdicts:
            if verdict.party.name == name:
                return verdict
        raise KeyError(name)

    def honest_parties_safe(self, adversary_names: frozenset[str] = frozenset()) -> bool:
        """Whether every non-adversarial party ended acceptably."""
        return all(
            v.ok for v in self.verdicts if v.party.name not in adversary_names
        )

    def describe(self) -> list[str]:
        lines = [f"safety report for {self.problem_name}:"]
        for v in self.verdicts:
            status = "OK " if v.ok else "BAD"
            lines.append(
                f"  [{status}] {v.party.name}: Δmoney={v.money_delta_cents / 100:+.2f}"
                + ("" if v.ok else f" ({'; '.join(v.reasons)})")
            )
        return lines


def _delivered_pairs(delivered: list[Action]) -> list[Action]:
    return [a for a in delivered if a.is_transfer]


def _gave_permanently(edge: InteractionEdge, transfers: list[Action]) -> bool:
    """Deposit delivered to the trusted component and never reversed."""
    deposit = None
    for action in transfers:
        if (
            not action.inverted
            and action.sender == edge.principal
            and action.recipient == edge.trusted
            and action.item == edge.provides
        ):
            deposit = action
    if deposit is None:
        return False
    return deposit.inverse() not in transfers


def _received_expected(
    problem: ExchangeProblem, edge: InteractionEdge, transfers: list[Action]
) -> bool:
    expected = problem.interaction.expects(edge)
    for action in transfers:
        if action.inverted:
            continue
        if action.effective_recipient == edge.principal and action.item == expected:
            return True
    return False


def _forfeits_received(party: Party, transfers: list[Action]) -> int:
    """Indemnity escrow money forwarded (not refunded) to *party*."""
    total = 0
    for action in transfers:
        if action.inverted or not isinstance(action.item, Money):
            continue
        if action.effective_recipient == party and "indemnity" in action.item.label:
            if action.effective_sender.is_trusted:
                total += action.item.cents
    return total


def evaluate_safety(problem: ExchangeProblem, result: SimulationResult) -> SafetyReport:
    """Check every party's outcome against the acceptance criteria above."""
    transfers = _delivered_pairs(result.delivered)
    bundle_principals = set(splittable_conjunctions(problem))
    verdicts: list[PartyVerdict] = []

    for principal in problem.interaction.principals:
        edges = [e for e in problem.interaction.edges if e.principal == principal]
        reasons: list[str] = []
        outcomes = [
            EdgeOutcome(
                e,
                _gave_permanently(e, transfers),
                _received_expected(problem, e, transfers),
            )
            for e in edges
        ]
        for outcome in outcomes:
            if not outcome.ok:
                reasons.append(
                    f"gave {outcome.edge.provides} via {outcome.edge.trusted.name} "
                    "without receiving the counterpart"
                )
        forfeits = _forfeits_received(principal, transfers)
        money_delta = result.money_delta(principal)
        if principal in bundle_principals:
            all_received = all(o.received_expected for o in outcomes)
            if not all_received:
                spent = sum(
                    o.edge.provides.cents
                    for o in outcomes
                    if o.gave_permanently and isinstance(o.edge.provides, Money)
                )
                if forfeits < spent:
                    reasons.append(
                        f"incomplete bundle: spent {spent / 100:.2f} but collected "
                        f"only {forfeits / 100:.2f} in forfeits"
                    )
        verdicts.append(
            PartyVerdict(
                party=principal,
                ok=not reasons,
                reasons=tuple(reasons),
                money_delta_cents=money_delta,
                forfeits_received_cents=forfeits,
            )
        )

    for component in problem.interaction.trusted_components:
        reasons = []
        delta = result.money_delta(component)
        residue = result.final.documents_of(component)
        if delta != 0:
            reasons.append(f"conduit retained {delta / 100:+.2f} in money")
        if residue:
            reasons.append(f"conduit retained documents {sorted(residue)}")
        verdicts.append(
            PartyVerdict(
                party=component,
                ok=not reasons,
                reasons=tuple(reasons),
                money_delta_cents=delta,
                forfeits_received_cents=0,
            )
        )
    return SafetyReport(problem_name=problem.name, verdicts=tuple(verdicts))
