"""Distributed reduction (§9 future work): each participant locally decides
its part of the feasibility computation, exchanging edge-removal
notifications.  Equivalent to the centralized engine (tested)."""

from repro.distributed.engine import (
    DistributedReduction,
    DistributedTrace,
    EdgeRemoved,
    LocalAgent,
    distributed_reduce,
)

__all__ = [
    "DistributedReduction",
    "DistributedTrace",
    "EdgeRemoved",
    "LocalAgent",
    "distributed_reduce",
]
