"""Distributed sequencing-graph reduction (the paper's §9 future work).

"Future work will also extend the algorithms proposed here to allow a fully
distributed approach, with each participant locally making decisions about
the feasibility and sequencing of its own parts of the transaction."

This module implements that extension and shows it equivalent to the
centralized engine.  Each *conjunction owner* (the party whose conjunction
node it is) runs a local agent that sees only:

* its own conjunction's incident edges and their colors (local state);
* whether each of its commitments' *other* edge still exists — learned
  initially from the static graph and updated by ``EdgeRemoved`` messages
  from the other owner.

Rule #2 is entirely local (the conjunction's own fringe test).  Rule #1
needs one remote fact — is the commitment fringe? — which is exactly the
other endpoint's removal notification; pre-emption and personas are local.
Agents run in synchronous rounds with unit message delay; the computation
quiesces when a round removes nothing and no messages are in flight.

The headline property (tested, including on random topologies): the
distributed verdict equals the centralized §4.2.4 verdict, with O(edges)
messages and O(diameter) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    SGEdge,
    SequencingGraph,
)
from repro.core.parties import Party
from repro.errors import ReductionError


@dataclass(frozen=True)
class EdgeRemoved:
    """Notification that edge ``(commitment, conjunction)`` was removed."""

    commitment: CommitmentNode
    conjunction: ConjunctionNode


@dataclass
class LocalAgent:
    """The reduction participant owning one conjunction node."""

    conjunction: ConjunctionNode
    local_edges: set[SGEdge]
    # commitment -> its edge at the *other* conjunction (None if the
    # commitment only ever touched this conjunction).
    remote_edge_alive: dict[CommitmentNode, bool]
    personas: frozenset[CommitmentNode]
    enable_persona_clause: bool = True
    removed_log: list[SGEdge] = field(default_factory=list)

    @property
    def party(self) -> Party:
        return self.conjunction.agent

    def _commitment_fringe(self, commitment: CommitmentNode) -> bool:
        """Locally known: is this edge the commitment's only live edge?"""
        return not self.remote_edge_alive.get(commitment, False)

    def _red_blockers(self, edge: SGEdge) -> list[SGEdge]:
        return [
            other
            for other in self.local_edges
            if other.is_red and other.commitment != edge.commitment
        ]

    def step(self) -> list[EdgeRemoved]:
        """Apply every locally legal rule once; return outgoing notifications."""
        outgoing: list[EdgeRemoved] = []
        progress = True
        while progress:
            progress = False
            # Rule #2: my conjunction is fringe.
            if len(self.local_edges) == 1:
                (edge,) = self.local_edges
                outgoing.extend(self._remove(edge))
                progress = True
                continue
            # Rule #1: a commitment fringe at my conjunction.
            for edge in sorted(self.local_edges):
                if not self._commitment_fringe(edge.commitment):
                    continue
                persona = (
                    self.enable_persona_clause and edge.commitment in self.personas
                )
                if self._red_blockers(edge) and not persona:
                    continue
                outgoing.extend(self._remove(edge))
                progress = True
                break
        return outgoing

    def _remove(self, edge: SGEdge) -> list[EdgeRemoved]:
        self.local_edges.discard(edge)
        self.removed_log.append(edge)
        if self.remote_edge_alive.get(edge.commitment, False):
            # The other owner must learn this commitment just went fringe.
            return [EdgeRemoved(edge.commitment, self.conjunction)]
        return []

    def deliver(self, message: EdgeRemoved) -> None:
        """Receive a removal notification for one of my commitments."""
        self.remote_edge_alive[message.commitment] = False


@dataclass(frozen=True)
class DistributedTrace:
    """Outcome of a distributed reduction run."""

    feasible: bool
    rounds: int
    messages: int
    remaining: frozenset[SGEdge]
    removed_by: dict[Party, tuple[SGEdge, ...]]


class DistributedReduction:
    """Synchronous-round simulation of the distributed reduction."""

    def __init__(self, graph: SequencingGraph, enable_persona_clause: bool = True):
        self.graph = graph
        self.agents: dict[ConjunctionNode, LocalAgent] = {}
        owner_of_edge: dict[tuple[CommitmentNode, ConjunctionNode], ConjunctionNode] = {}
        for conjunction in graph.conjunctions:
            edges = set(graph.edges_of_conjunction(conjunction))
            remote_alive: dict[CommitmentNode, bool] = {}
            for edge in edges:
                others = [
                    e
                    for e in graph.edges_of_commitment(edge.commitment)
                    if e.conjunction != conjunction
                ]
                remote_alive[edge.commitment] = bool(others)
            self.agents[conjunction] = LocalAgent(
                conjunction=conjunction,
                local_edges=edges,
                remote_edge_alive=remote_alive,
                personas=graph.personas,
                enable_persona_clause=enable_persona_clause,
            )
            for edge in edges:
                owner_of_edge[(edge.commitment, conjunction)] = conjunction
        self._route: dict[tuple[CommitmentNode, ConjunctionNode], LocalAgent] = {}
        for edge in graph.edges:
            # A removal at conjunction X about commitment c routes to c's
            # *other* conjunction owner.
            for other in graph.edges_of_commitment(edge.commitment):
                if other.conjunction != edge.conjunction:
                    self._route[(edge.commitment, edge.conjunction)] = self.agents[
                        other.conjunction
                    ]

    def run(self, max_rounds: int = 10_000) -> DistributedTrace:
        """Run synchronous rounds to quiescence."""
        in_flight: list[EdgeRemoved] = []
        rounds = 0
        messages = 0
        while rounds < max_rounds:
            rounds += 1
            # Deliver last round's messages.
            for message in in_flight:
                target = self._route.get((message.commitment, message.conjunction))
                if target is not None:
                    target.deliver(message)
            in_flight = []
            # Every agent takes a local step.
            progressed = False
            for conjunction in sorted(self.agents, key=lambda j: j.agent.name):
                agent = self.agents[conjunction]
                before = len(agent.removed_log)
                outgoing = agent.step()
                if len(agent.removed_log) != before:
                    progressed = True
                messages += len(outgoing)
                in_flight.extend(outgoing)
            if not progressed and not in_flight:
                break
        else:  # pragma: no cover - termination is guaranteed (edges only shrink)
            raise ReductionError(f"distributed reduction exceeded {max_rounds} rounds")

        remaining = frozenset(
            edge for agent in self.agents.values() for edge in agent.local_edges
        )
        return DistributedTrace(
            feasible=not remaining,
            rounds=rounds,
            messages=messages,
            remaining=remaining,
            removed_by={
                agent.party: tuple(agent.removed_log) for agent in self.agents.values()
            },
        )


def distributed_reduce(
    graph: SequencingGraph, enable_persona_clause: bool = True
) -> DistributedTrace:
    """One-call distributed reduction."""
    return DistributedReduction(graph, enable_persona_clause).run()
