"""The socket runtime: the exchange protocol as real networked processes.

Layers (each usable alone):

* :mod:`repro.net.wire` — length-prefixed JSON frame codec mirroring the
  simulator's envelopes;
* :mod:`repro.net.wal` — per-node append-only JSONL write-ahead log with
  truncated-tail-tolerant replay;
* :mod:`repro.net.node` — one party as a process: protocol core + WAL +
  retransmit schedule over a TCP connection;
* :mod:`repro.net.proxy` — the fault proxy enacting a seeded
  :class:`~repro.sim.faults.FaultPlan` on real sockets;
* :mod:`repro.net.supervisor` — spawn/kill/restart orchestration,
  quiescence detection and result assembly;
* :mod:`repro.net.bootstrap` — the deterministic derivations every
  process repeats from the spec text.

Entry points: ``repro serve`` / ``repro client`` (see :mod:`repro.cli`) or
:func:`repro.net.supervisor.run_networked_exchange`.
"""

from repro.net.node import AssetView, ExchangeNode, NodeConfig, run_node
from repro.net.proxy import NetFaultProxy
from repro.net.supervisor import (
    NetRunConfig,
    NetRunResult,
    run_networked_exchange,
)
from repro.net.wal import WriteAheadLog, replay
from repro.net.wire import (
    WireError,
    action_from_json,
    action_to_json,
    decode_frame,
    encode_frame,
    item_from_json,
    item_to_json,
    party_from_json,
    party_to_json,
)

__all__ = [
    "AssetView",
    "ExchangeNode",
    "NetFaultProxy",
    "NetRunConfig",
    "NetRunResult",
    "NodeConfig",
    "WireError",
    "WriteAheadLog",
    "action_from_json",
    "action_to_json",
    "decode_frame",
    "encode_frame",
    "item_from_json",
    "item_to_json",
    "party_from_json",
    "party_to_json",
    "replay",
    "run_networked_exchange",
    "run_node",
]
