"""Per-node append-only JSONL write-ahead log with crash-recovery replay.

Discipline (the whole point, so it is spelled out):

* **log-then-send** — a node appends a ``send`` record *before* the act
  frame reaches the socket, and a ``recv`` record before a delivered
  action touches the protocol core.  A SIGKILL between the append and the
  side effect therefore loses at most the side effect, never the record
  of intent — replay regenerates the side effect.
* **dedup by envelope key** — ``recv`` keys replayed into the core are
  remembered, so a redelivered copy after restart is suppressed exactly
  like a duplicate envelope in the simulator.
* **truncated tails are expected** — a crash can cut the final line mid
  JSON.  :func:`replay` drops an undecodable *last* line silently; an
  undecodable line anywhere else is corruption and raises.

Records are canonical JSON objects (sorted keys) with a ``"rec"``
discriminator; see :mod:`repro.net.node` for the vocabulary (``endow``,
``send``, ``recv``, ``ack``, ``abandon``, ``armed``, ``deadline``).
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import NetRuntimeError
from repro.net.wire import encode_json


class WriteAheadLog:
    """An append-only JSONL file, flushed to the OS after every record.

    The crash model is a SIGKILL of the *process* (the host and OS
    survive), so ``flush()`` — not ``fsync`` — is the durability boundary
    that matters: once the bytes reach the kernel they outlive the node.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "ab")

    def append(self, record: dict[str, Any]) -> None:
        if "rec" not in record:
            raise NetRuntimeError(f"WAL record lacks a 'rec' discriminator: {record!r}")
        self._fh.write(encode_json(record) + b"\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def replay(path: str) -> list[dict[str, Any]]:
    """Parse the records of the WAL at *path*, tolerating a truncated tail.

    Returns ``[]`` for a missing or empty file.  Raises
    :class:`NetRuntimeError` on corruption anywhere but the final line —
    a torn tail is a crash artifact, a torn middle is not.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return []
    if not raw:
        return []
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()  # trailing newline: the last record was fully written
    records: list[dict[str, Any]] = []
    offset = 0  # byte offset of the current record within the file
    for index, line in enumerate(lines):
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if index == len(lines) - 1:
                break  # torn tail: the crash interrupted the final append
            raise NetRuntimeError(
                f"corrupt WAL record at {path}:{index + 1} "
                f"(record {index} of {len(lines)}, byte offset {offset}): "
                f"{line[:80]!r}"
            ) from exc
        if not isinstance(record, dict) or "rec" not in record:
            raise NetRuntimeError(
                f"WAL line {index + 1} of {path} "
                f"(record {index} of {len(lines)}, byte offset {offset}) "
                "is not a record"
            )
        records.append(record)
        offset += len(line) + 1  # the newline the writer appended
    return records
