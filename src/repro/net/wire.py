"""Length-prefixed JSON wire codec for the socket runtime.

Every message on a socket is one *frame*: a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON encoding a single object with a
``"type"`` discriminator.  The payloads mirror the simulator's in-memory
values — a framed ``act`` carries exactly the information of a
:class:`repro.sim.network.Envelope` (a stringly envelope key, the
:class:`~repro.core.actions.Action`, and the attempt ordinal) so that the
fault proxy can enact a :class:`~repro.sim.faults.FaultPlan` on real
sockets with the simulator's semantics.

Frame vocabulary (node ⇄ proxy):

========== ========= ====================================================
type       direction payload
========== ========= ====================================================
hello      node → px ``party``, ``pid``, ``resumed``
welcome    px → node ``epoch`` (wall seconds), ``time_scale``
act        both      ``key``, ``action``, ``attempt`` (offer / delivery)
got        node → px ``key`` — the node durably processed this delivery
ack        px → node ``key`` — delivered; stop retransmitting
abandon    node → px ``key`` — retries exhausted; custody returned
report     node → px node status (phase, armed, balance, docs, …)
shutdown   px → node the run is over; close cleanly
========== ========= ====================================================

Encoding is canonical (sorted keys, compact separators) so identical
values produce identical bytes — the WAL golden tests rely on it.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

from repro.core.actions import Action, ActionKind
from repro.core.items import Document, Item, Money
from repro.core.parties import Party, Role
from repro.errors import ReproError


class WireError(ReproError):
    """A malformed frame or an unserializable value."""


#: Upper bound on a single frame; an exchange action is a few hundred bytes,
#: so anything near this is corruption, not data.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


# ------------------------------------------------------------- value codecs


def party_to_json(party: Party) -> dict[str, Any]:
    return {"name": party.name, "role": party.role.value}


def party_from_json(data: dict[str, Any]) -> Party:
    try:
        return Party(data["name"], Role(data["role"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"bad party payload {data!r}") from exc


def item_to_json(item: Item | None) -> dict[str, Any] | None:
    if item is None:
        return None
    if isinstance(item, Money):
        return {"kind": "money", "label": item.label, "cents": item.cents}
    return {"kind": "document", "label": item.label}


def item_from_json(data: dict[str, Any] | None) -> Item | None:
    if data is None:
        return None
    try:
        if data["kind"] == "money":
            return Money(data["label"], data["cents"])
        if data["kind"] == "document":
            return Document(data["label"])
    except (KeyError, TypeError) as exc:
        raise WireError(f"bad item payload {data!r}") from exc
    raise WireError(f"unknown item kind in {data!r}")


def action_to_json(action: Action) -> dict[str, Any]:
    return {
        "kind": action.kind.value,
        "sender": party_to_json(action.sender),
        "recipient": party_to_json(action.recipient),
        "item": item_to_json(action.item),
        "inverted": action.inverted,
        "deadline": action.deadline,
    }


def action_from_json(data: dict[str, Any]) -> Action:
    try:
        return Action(
            kind=ActionKind(data["kind"]),
            sender=party_from_json(data["sender"]),
            recipient=party_from_json(data["recipient"]),
            item=item_from_json(data.get("item")),
            inverted=bool(data.get("inverted", False)),
            deadline=data.get("deadline"),
        )
    except WireError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise WireError(f"bad action payload {data!r}") from exc


# ------------------------------------------------------------- frame codecs


def encode_json(obj: dict[str, Any]) -> bytes:
    """Canonical JSON bytes (sorted keys, compact) for *obj*."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_frame(obj: dict[str, Any]) -> bytes:
    payload = encode_json(obj)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError("undecodable frame payload") from exc
    if not isinstance(obj, dict) or "type" not in obj:
        raise WireError(f"frame payload is not a typed object: {obj!r}")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"incoming frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None  # connection died mid-frame; treat as EOF
    return decode_frame(payload)


def write_frame(writer: asyncio.StreamWriter, obj: dict[str, Any]) -> None:
    """Queue one frame on *writer* (flushing is the event loop's job)."""
    writer.write(encode_frame(obj))
