"""Shared bootstrap for the socket runtime: every process derives the same
world from the same spec text.

The one serialization every layer of this repo reconstructs from is the
spec language (`repro.spec`): the supervisor writes ``format_problem`` text
into the run directory, each node subprocess ``load``s it and re-derives —
deterministically — the identical synthesized protocol and initial
endowments.  Nothing about the protocol crosses the wire; only the spec
path and scalar knobs (deadline, working capital) do, as CLI arguments.
"""

from __future__ import annotations

from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.protocol import Protocol, synthesize_protocol
from repro.errors import NetRuntimeError
from repro.sim.faults import FaultPlan
from repro.sim.ledger import Ledger, LedgerSnapshot, endow_from_interaction
from repro.spec.compiler import load_file


def load_problem(spec_path: str) -> ExchangeProblem:
    """Load and validate the exchange problem at *spec_path*."""
    return load_file(spec_path)


def derive_protocol(problem: ExchangeProblem, deadline: float | None) -> Protocol:
    """Synthesize the protocol every node of the run executes.

    Synthesis is deterministic, so independently-derived copies in the
    supervisor and in each node subprocess are identical — the socket
    runtime's substitute for shipping the protocol over the wire.
    """
    sequence = problem.execution_sequence()
    return synthesize_protocol(
        problem.interaction, sequence, problem.name, deadline=deadline
    )


def escrow_needs(protocol: Protocol) -> dict[Party, int]:
    """Extra cents each offeror must be endowed with for §6 escrows."""
    needs: dict[Party, int] = {}
    for spec in protocol.trusted_specs.values():
        for offer in spec.indemnities:
            needs[offer.offeror] = needs.get(offer.offeror, 0) + offer.amount_cents
    return needs


def build_initial_ledger(
    problem: ExchangeProblem,
    protocol: Protocol,
    working_capital_cents: int = 0,
) -> Ledger:
    """The run's initial asset state — identical to the simulator's.

    (:class:`repro.sim.runtime.Simulation` endows the same way; the parity
    arm asserts digest equality of the two initial snapshots.)
    """
    ledger = Ledger()
    endow_from_interaction(
        ledger,
        problem.interaction,
        working_capital_cents=working_capital_cents,
        extra_money=escrow_needs(protocol),
    )
    return ledger


def endowment_of(initial: LedgerSnapshot, party: Party) -> tuple[int, frozenset[str]]:
    """One node's slice of the initial endowment: (cents, document labels)."""
    return initial.balance(party), initial.documents_of(party)


def find_party(problem: ExchangeProblem, protocol: Protocol, name: str) -> Party:
    """Resolve *name* to the principal or trusted party it denotes."""
    for party in problem.interaction.principals:
        if party.name == name:
            return party
    for party in protocol.trusted_specs:
        if party.name == name:
            return party
    raise NetRuntimeError(f"party {name!r} does not appear in the problem")


def check_plan_targets(
    problem: ExchangeProblem, protocol: Protocol, plan: FaultPlan
) -> None:
    """A plan may only fault parties that exist, and may never silence a
    trusted component forever (same rule as the simulator)."""
    principals = {p.name for p in problem.interaction.principals}
    trusted = {p.name for p in protocol.trusted_specs}
    for fault in plan.parties:
        if fault.party not in principals | trusted:
            raise NetRuntimeError(f"fault plan targets unknown party {fault.party!r}")
        if fault.permanent and fault.party in trusted:
            raise NetRuntimeError(
                f"trusted component {fault.party!r} cannot be permanently silenced"
            )
