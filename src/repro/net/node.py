"""One exchange party as a networked process.

``repro client`` runs exactly one of these: it loads the spec, re-derives
the synthesized protocol (deterministic — every node independently derives
the same one, see :mod:`repro.net.bootstrap`), takes its party's slice of
the initial endowment, and then drives the *same* transport-agnostic
protocol core the simulator uses
(:class:`~repro.sim.protocol_core.PrincipalCore` /
:class:`~repro.sim.protocol_core.TrustedCore`) over a TCP connection to
the fault proxy.

Durability: every state transition is write-ahead logged
(:mod:`repro.net.wal`) *before* its side effect — ``recv`` before the core
sees a delivery, ``send`` before the act frame hits the socket, ``armed``
before the deadline timer exists, ``deadline`` before the reversal goes
out.  After a SIGKILL the node restarts, replays the log through a fresh
core (cores are deterministic, so the same observations rebuild the same
state), re-adopts the envelope keys of logged sends, and re-offers
whatever was never acknowledged.  A send the crash cut off between the
``recv`` that caused it and its own ``send`` record is *regenerated* by
the replayed core and offered fresh.

Custody: a node's local asset view debits at send and credits at delivery
or abandonment — mirroring the simulator's wire-custody ledger from one
party's perspective.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.core.actions import Action
from repro.core.items import Money
from repro.errors import NetRuntimeError
from repro.net import bootstrap, wal
from repro.net.wire import action_from_json, action_to_json, read_frame, write_frame
from repro.sim.faults import RetryPolicy
from repro.sim.protocol_core import (
    ArmDeadline,
    DisarmDeadline,
    Effect,
    NotifyEffect,
    PrincipalCore,
    SendEffect,
    TrustedCore,
)


@dataclass(frozen=True)
class NodeConfig:
    """Everything a node process needs; all of it fits in CLI arguments."""

    spec_path: str
    party: str
    host: str
    port: int
    wal_path: str
    deadline: float | None = None
    working_capital_cents: int = 0
    withhold: int | None = None  # adversary: perform only the first K instructions
    connect_timeout: float = 15.0


class AssetView:
    """One party's local balance and document holdings.

    The node is the effective sender of everything it debits and the
    effective recipient of everything it credits, so both sides of each
    movement reduce to "does the item enter or leave *me*".
    """

    def __init__(self, balance_cents: int, documents: frozenset[str] | set[str]) -> None:
        self.balance_cents = balance_cents
        self.documents = set(documents)

    def holds(self, action: Action) -> bool:
        item = action.item
        if item is None:
            return True
        if isinstance(item, Money):
            return self.balance_cents >= item.cents
        return item.label in self.documents

    def debit(self, action: Action) -> None:
        item = action.item
        if item is None:
            return
        if isinstance(item, Money):
            if self.balance_cents < item.cents:
                raise NetRuntimeError(
                    f"debit of {item.cents} cents exceeds balance {self.balance_cents}"
                )
            self.balance_cents -= item.cents
        else:
            self.documents.discard(item.label)

    def credit(self, action: Action) -> None:
        item = action.item
        if item is None or not action.is_transfer:
            return
        if isinstance(item, Money):
            self.balance_cents += item.cents
        else:
            self.documents.add(item.label)


@dataclass
class PendingSend:
    """An offered envelope awaiting the proxy's delivery acknowledgement."""

    key: str
    action: Action
    acked: asyncio.Event = field(default_factory=asyncio.Event)
    task: asyncio.Task[None] | None = None


def _stripped(action: Action) -> Action:
    return replace(action, deadline=None)


class ExchangeNode:
    """Protocol core + WAL + asset view for one party; transport added by :func:`run_node`."""

    def __init__(self, cfg: NodeConfig) -> None:
        self.cfg = cfg
        self.problem = bootstrap.load_problem(cfg.spec_path)
        self.protocol = bootstrap.derive_protocol(self.problem, cfg.deadline)
        self.party = bootstrap.find_party(self.problem, self.protocol, cfg.party)
        initial = bootstrap.build_initial_ledger(
            self.problem, self.protocol, cfg.working_capital_cents
        ).seal()
        balance, documents = bootstrap.endowment_of(initial, self.party)
        self.assets = AssetView(balance, documents)

        self.is_trusted = self.party in self.protocol.trusted_specs
        if self.is_trusted:
            self.trusted_core: TrustedCore | None = TrustedCore(
                self.protocol.trusted_specs[self.party]
            )
            self.principal_core: PrincipalCore | None = None
            self.retry_policy = RetryPolicy(max_retries=32)
        else:
            self.trusted_core = None
            permits: Callable[[int, Action], bool] | None = None
            if cfg.withhold is not None:
                limit = cfg.withhold
                permits = lambda position, action: position < limit  # noqa: E731
            self.principal_core = PrincipalCore(
                self.protocol.role_of(self.party), permits=permits
            )
            self.retry_policy = RetryPolicy()

        self.wal = wal.WriteAheadLog(cfg.wal_path)
        self.seq = 1
        self.pending: dict[str, PendingSend] = {}
        self.seen_recv: set[str] = set()
        self.armed = False
        self.armed_expiry: float | None = None  # sim units since epoch
        self.deadline_fired = False
        self.resumed = False
        self._pending_arm_duration: float | None = None
        self._replay_offers: list[tuple[str, Action]] = []
        self._replay_fresh: list[Action] = []

        # Transport wiring, installed by run_node() after the welcome frame.
        self.writer: asyncio.StreamWriter | None = None
        self.epoch = 0.0
        self.scale = 1.0
        self._deadline_task: asyncio.Task[None] | None = None

        self._replay()

    # ------------------------------------------------------------------ time

    def now_sim(self) -> float:
        return (time.time() - self.epoch) / self.scale

    # ---------------------------------------------------------------- replay

    def _replay(self) -> None:
        records = wal.replay(self.cfg.wal_path)
        if not records:
            self.wal.append(
                {
                    "rec": "endow",
                    "balance": self.assets.balance_cents,
                    "docs": sorted(self.assets.documents),
                }
            )
            return
        self.resumed = True
        acked = {r["key"] for r in records if r["rec"] == "ack"}
        abandoned = {r["key"] for r in records if r["rec"] == "abandon"}
        for record in records:
            if record["rec"] == "armed":
                self.armed_expiry = float(record["expiry"])
        send_records = [
            (r["key"], action_from_json(r["action"]))
            for r in records
            if r["rec"] == "send"
        ]

        # Drive a fresh core through the logged observations, in order.  The
        # core is deterministic, so this reconstructs the pre-crash state and
        # regenerates (as `regenerated`) every send the logic ever wanted.
        # Debits happen inside _drain/_interpret, exactly as they do live.
        regenerated: list[Action] = []

        def emit(action: Action) -> None:
            regenerated.append(action)

        for record in records:
            kind = record["rec"]
            if kind == "endow":
                self.assets = AssetView(
                    int(record["balance"]), set(record["docs"])
                )
            elif kind == "recv":
                self.seen_recv.add(record["key"])
                self._absorb(action_from_json(record["action"]), emit, live=False)
            elif kind == "deadline":
                self.deadline_fired = True
                self.armed = False
                assert self.trusted_core is not None
                self._interpret(self.trusted_core.on_deadline(), emit, live=False)

        # Reconcile regenerated sends against logged ones (greedy, in order,
        # modulo the expiry stamp a notify carries): matches re-adopt their
        # logged key and ack status; the rest were lost between the `recv`
        # that caused them and their own `send` record, and go out fresh.
        unmatched = list(send_records)
        for action in regenerated:
            target = _stripped(action)
            for index, (key, logged) in enumerate(unmatched):
                if _stripped(logged) == target:
                    unmatched.pop(index)
                    if key not in acked and key not in abandoned:
                        self._replay_offers.append((key, logged))
                    break
            else:
                self._replay_fresh.append(action)
        if unmatched:
            keys = ", ".join(key for key, _ in unmatched)
            raise NetRuntimeError(
                f"WAL replay diverged for {self.party.name}: logged sends "
                f"[{keys}] were not regenerated by the protocol core"
            )

        # Abandoned sends returned custody before the crash; the replay
        # re-debited them at emit time, so credit them back.
        by_key = dict(send_records)
        for key in abandoned:
            if key in by_key:
                self.assets.credit(by_key[key])

        for key, _ in send_records:
            _, _, suffix = key.rpartition(":")
            if suffix.isdigit():
                self.seq = max(self.seq, int(suffix) + 1)

    # ------------------------------------------------------------- core glue

    def _absorb(self, action: Action, emit: Callable[[Action], None], live: bool) -> None:
        """Process one delivered action through the core."""
        self.assets.credit(action)
        if self.trusted_core is not None:
            self._interpret(self.trusted_core.on_receive(action), emit, live)
        else:
            assert self.principal_core is not None
            self.principal_core.observe(action)
            self._drain(emit)

    def _drain(self, emit: Callable[[Action], None]) -> None:
        assert self.principal_core is not None

        def debiting_emit(action: Action) -> None:
            if action.is_transfer:
                self.assets.debit(action)
            emit(action)

        self.principal_core.drain(holds=self.assets.holds, emit=debiting_emit)

    def _interpret(
        self, effects: list[Effect], emit: Callable[[Action], None], live: bool
    ) -> None:
        for effect in effects:
            if isinstance(effect, ArmDeadline):
                self._arm(effect.duration, live)
            elif isinstance(effect, DisarmDeadline):
                self._disarm()
            elif isinstance(effect, NotifyEffect):
                assert self.trusted_core is not None
                expiry = self.armed_expiry if self.armed else None
                emit(self.trusted_core.expiry_notice(effect.principal, expiry))
            elif isinstance(effect, SendEffect):
                if effect.action.is_transfer:
                    self.assets.debit(effect.action)
                emit(effect.action)

    # -------------------------------------------------------------- deadline

    def _arm(self, duration: float, live: bool) -> None:
        if self.armed or self.deadline_fired:
            return
        self.armed = True
        if self.armed_expiry is None:
            if live:
                self.armed_expiry = self.now_sim() + duration
                self.wal.append({"rec": "armed", "expiry": self.armed_expiry})
            else:
                # Crash fell between the recv record and the armed record;
                # the expiry is re-derived at reconnect (see schedule_deadline).
                self._pending_arm_duration = duration
        if live:
            self.schedule_deadline()

    def _disarm(self) -> None:
        self.armed = False
        if self._deadline_task is not None:
            self._deadline_task.cancel()
            self._deadline_task = None

    def schedule_deadline(self) -> None:
        """(Re-)create the wall-clock deadline timer for an armed core."""
        if not self.armed or self._deadline_task is not None:
            return
        if self.armed_expiry is None:
            duration = self._pending_arm_duration
            assert duration is not None
            self.armed_expiry = self.now_sim() + duration
            self.wal.append({"rec": "armed", "expiry": self.armed_expiry})
        self._deadline_task = asyncio.create_task(self._deadline_timer())

    async def _deadline_timer(self) -> None:
        assert self.armed_expiry is not None
        delay = self.epoch + self.armed_expiry * self.scale - time.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if not self.armed or self.deadline_fired:
            return
        # Log-then-reverse: the deadline record's position in the WAL is
        # what makes a replayed late deposit bounce identically.
        self.wal.append({"rec": "deadline"})
        self.deadline_fired = True
        self.armed = False
        assert self.trusted_core is not None
        self._interpret(self.trusted_core.on_deadline(), self._send_new, live=True)
        self.report()

    # ------------------------------------------------------------ transport

    def _send_new(self, action: Action) -> None:
        key = f"{self.party.name}:{self.seq}"
        self.seq += 1
        self.wal.append({"rec": "send", "key": key, "action": action_to_json(action)})
        self.offer(key, action)

    def offer(self, key: str, action: Action) -> None:
        """Put an envelope on the wire and arm its retransmit schedule."""
        entry = PendingSend(key, action)
        self.pending[key] = entry
        self._write(
            {"type": "act", "key": key, "action": action_to_json(action), "attempt": 1}
        )
        entry.task = asyncio.create_task(self._retry_loop(entry))

    async def _retry_loop(self, entry: PendingSend) -> None:
        policy = self.retry_policy
        attempt = 1
        while attempt <= policy.max_retries:
            try:
                await asyncio.wait_for(
                    entry.acked.wait(), timeout=policy.timeout_for(attempt) * self.scale
                )
                return
            except asyncio.TimeoutError:
                attempt += 1
                self._write(
                    {
                        "type": "act",
                        "key": entry.key,
                        "action": action_to_json(entry.action),
                        "attempt": attempt,
                    }
                )
        try:
            await asyncio.wait_for(
                entry.acked.wait(), timeout=policy.timeout_for(attempt) * self.scale
            )
            return
        except asyncio.TimeoutError:
            pass
        # Retries exhausted: abandon — the wire returns custody.
        self.wal.append({"rec": "abandon", "key": entry.key})
        self.pending.pop(entry.key, None)
        self.assets.credit(entry.action)
        self._write({"type": "abandon", "key": entry.key})
        self.report()

    def _write(self, frame: dict[str, Any]) -> None:
        if self.writer is None or self.writer.is_closing():
            return  # the proxy is gone; the supervisor is tearing us down
        write_frame(self.writer, frame)

    def on_delivery(self, frame: dict[str, Any]) -> None:
        key = str(frame["key"])
        if key in self.seen_recv:
            self._write({"type": "got", "key": key})  # duplicate copy: confirm only
            return
        action = action_from_json(frame["action"])
        self.wal.append({"rec": "recv", "key": key, "action": action_to_json(action)})
        self.seen_recv.add(key)
        self._write({"type": "got", "key": key})
        self._absorb(action, self._send_new, live=True)
        self.report()

    def on_ack(self, frame: dict[str, Any]) -> None:
        key = str(frame["key"])
        entry = self.pending.pop(key, None)
        if entry is None:
            return
        self.wal.append({"rec": "ack", "key": key})
        entry.acked.set()
        self.report()

    def report(self) -> None:
        if self.trusted_core is not None:
            if self.trusted_core.completed:
                phase = "completed"
            elif self.trusted_core.reversed:
                phase = "reversed"
            else:
                phase = "open"
        else:
            assert self.principal_core is not None
            phase = "exhausted" if self.principal_core.exhausted else "active"
        self._write(
            {
                "type": "report",
                "party": self.party.name,
                "trusted": self.is_trusted,
                "phase": phase,
                "armed": self.armed,
                "pending": len(self.pending),
                "balance": self.assets.balance_cents,
                "docs": sorted(self.assets.documents),
            }
        )

    def shutdown(self) -> None:
        for entry in self.pending.values():
            if entry.task is not None:
                entry.task.cancel()
        self._disarm()
        self.wal.close()


async def _connect(cfg: NodeConfig) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    give_up = time.time() + cfg.connect_timeout
    while True:
        try:
            return await asyncio.open_connection(cfg.host, cfg.port)
        except OSError:
            if time.time() >= give_up:
                raise NetRuntimeError(
                    f"could not reach proxy at {cfg.host}:{cfg.port} "
                    f"within {cfg.connect_timeout}s"
                ) from None
            await asyncio.sleep(0.05)


async def run_node(cfg: NodeConfig) -> int:
    """The ``repro client`` event loop: connect, recover, exchange, exit."""
    node = ExchangeNode(cfg)
    reader, writer = await _connect(cfg)
    node.writer = writer
    write_frame(
        writer,
        {
            "type": "hello",
            "party": node.party.name,
            "pid": os.getpid(),
            "resumed": node.resumed,
        },
    )
    welcome = await read_frame(reader)
    if welcome is None or welcome.get("type") != "welcome":
        raise NetRuntimeError(f"expected welcome frame, got {welcome!r}")
    node.epoch = float(welcome["epoch"])
    node.scale = float(welcome["time_scale"])

    try:
        if node.armed:
            node.schedule_deadline()
        # Waived: replayed offers were logged before the crash — the WAL
        # append that NET001 demands is the very record being replayed, so
        # re-emitting the frame here needs no second append.  DESIGN.md §14.
        for key, action in node._replay_offers:
            node.offer(key, action)  # repro: noqa[NET001]
        for action in node._replay_fresh:
            node._send_new(action)
        if node.principal_core is not None:
            node._drain(node._send_new)
        node.report()
        await writer.drain()

        while True:
            frame = await read_frame(reader)
            if frame is None or frame.get("type") == "shutdown":
                break
            kind = frame.get("type")
            if kind == "act":
                node.on_delivery(frame)
            elif kind == "ack":
                node.on_ack(frame)
            await writer.drain()
    finally:
        node.shutdown()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return 0
