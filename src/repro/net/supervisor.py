"""Run one exchange problem as real processes over real sockets.

:func:`run_networked_exchange` is the socket runtime's counterpart of
:func:`repro.sim.runtime.simulate`: it starts a :class:`NetFaultProxy`,
spawns one ``repro client`` subprocess per party (principals *and*
trusted components), enacts the :class:`~repro.sim.faults.FaultPlan`'s
:class:`~repro.sim.faults.PartyFault` windows with **real SIGKILLs** and
respawns, waits for quiescence, and assembles the very same
:class:`~repro.sim.runtime.SimulationResult` /
:class:`~repro.sim.safety.SafetyReport` artifacts the simulator emits.

Sim time vs. wall time: one simulator time unit is ``time_scale`` wall
seconds; the epoch is fixed when every initially-alive node has connected.
Fault windows, deadlines, retry backoffs and the delivery log all live in
sim units, so a run's artifacts are directly comparable with the
simulator's for the same problem and plan.

Final-state assembly needs no trusted observer inside any node: the proxy
keeps the authoritative ordered delivery log, and folding those transfers
over the (identically derived) initial ledger — conservation-checked at
every step — yields the final snapshot that
:func:`~repro.sim.safety.evaluate_safety` judges.  Undelivered envelopes
at collection time are resolved exactly like the simulator's stranded
messages: custody returns to the sender and the run is flagged
non-quiescent.

``spawn="task"`` runs every node as an in-process asyncio task over real
localhost TCP instead of a subprocess — same codec, WAL, proxy and
gauntlet, minus process isolation.  Crashes become task cancellation plus
a WAL-replaying respawn, which keeps the crash-recovery path exercisable
in fast unit tests; the ``-m net`` suite uses real processes and real
SIGKILLs.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field

import repro
from repro.core.parties import Party
from repro.core.problem import ExchangeProblem
from repro.core.protocol import Protocol
from repro.errors import NetRuntimeError
from repro.net import bootstrap
from repro.net.node import NodeConfig, run_node
from repro.net.proxy import NetFaultProxy
from repro.net.wire import encode_json
from repro.sim.faults import FaultPlan
from repro.sim.runtime import RunProvenance, SimulationResult
from repro.sim.safety import SafetyReport, evaluate_safety
from repro.spec.formatter import format_problem


@dataclass(frozen=True)
class NetRunConfig:
    """Knobs of one networked run (sim-unit values unless noted)."""

    latency: float = 1.0
    time_scale: float = 0.02  # wall seconds per sim unit
    deadline: float | None = 60.0
    working_capital_cents: int = 0
    max_sim_time: float = 400.0  # hard cap; exceeded => non-quiescent
    quiet_period: float = 5.0  # silence needed to call the run done
    ready_timeout: float = 20.0  # wall seconds to wait for initial hellos
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    spawn: str = "process"  # "process" (subprocesses) | "task" (in-process)

    def validate(self) -> "NetRunConfig":
        if self.time_scale <= 0:
            raise NetRuntimeError("time_scale must be positive")
        if self.spawn not in ("process", "task"):
            raise NetRuntimeError(f"unknown spawn mode {self.spawn!r}")
        return self


@dataclass
class NetRunResult:
    """Everything observable after one networked run."""

    result: SimulationResult
    report: SafetyReport
    run_dir: str
    port: int
    kills: int = 0
    restarts: int = 0
    node_reports: dict[str, dict] = field(default_factory=dict)
    outcome: str = "quiescent"  # or "timeout"


class _NodeHandle:
    """One party's live process (or in-process task) and its respawn recipe."""

    def __init__(self, name: str, cfg: NodeConfig, run_dir: str, mode: str) -> None:
        self.name = name
        self.cfg = cfg
        self.run_dir = run_dir
        self.mode = mode
        self.proc: subprocess.Popen[bytes] | None = None
        self.task: asyncio.Task[int] | None = None
        self.pids: list[int] = []

    def spawn(self) -> None:
        if self.mode == "task":
            self.task = asyncio.ensure_future(run_node(self.cfg))
            return
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "client",
            self.cfg.spec_path,
            "--party",
            self.cfg.party,
            "--host",
            self.cfg.host,
            "--port",
            str(self.cfg.port),
            "--wal",
            self.cfg.wal_path,
            "--working-capital",
            str(self.cfg.working_capital_cents),
        ]
        if self.cfg.deadline is not None:
            argv += ["--deadline", str(self.cfg.deadline)]
        if self.cfg.withhold is not None:
            argv += ["--withhold", str(self.cfg.withhold)]
        log_path = os.path.join(self.run_dir, "logs", f"{self.name}.log")
        os.makedirs(os.path.dirname(log_path), exist_ok=True)
        # Waived: opening the child's log file is a microsecond-scale local
        # operation that happens once per (re)spawn — an executor hop would
        # cost more than the open.  DESIGN.md §14 (waiver policy).
        with open(log_path, "ab") as log:  # repro: noqa[ASY001]
            self.proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        self.pids.append(self.proc.pid)

    def kill(self) -> None:
        """A real crash: SIGKILL for processes, cancellation for tasks."""
        if self.mode == "task":
            if self.task is not None:
                self.task.cancel()
                self.task = None
            return
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.proc = None

    def reap(self) -> None:
        if self.task is not None:
            self.task.cancel()
            self.task = None
        if self.proc is not None:
            if self.proc.poll() is None:
                self.proc.terminate()
                try:
                    self.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
            self.proc = None


async def _run(
    problem: ExchangeProblem,
    run_dir: str,
    spec_path: str,
    protocol: Protocol,
    config: NetRunConfig,
    fault_plan: FaultPlan | None,
    adversaries: dict[str, int],
    seed: "int | float | None",
) -> tuple[NetRunResult, NetFaultProxy]:
    # Validation and the run-dir/spec writes happen in the sync caller
    # (run_networked_exchange) — blocking file I/O has no place on the loop.
    principals = [p.name for p in problem.interaction.principals]
    trusted = [p.name for p in protocol.trusted_specs]
    everyone = principals + trusted
    scale = config.time_scale

    proxy = NetFaultProxy(
        expected=frozenset(everyone),
        plan=fault_plan,
        latency=config.latency,
        time_scale=scale,
    )
    port = await proxy.start(config.host, config.port)

    handles: dict[str, _NodeHandle] = {}
    for name in everyone:
        cfg = NodeConfig(
            spec_path=spec_path,
            party=name,
            host=config.host,
            port=port,
            wal_path=os.path.join(run_dir, "wal", f"{name}.wal"),
            deadline=config.deadline,
            working_capital_cents=config.working_capital_cents,
            withhold=adversaries.get(name),
        )
        handles[name] = _NodeHandle(name, cfg, run_dir, config.spawn)

    kills = 0
    restarts = 0
    pending_restarts = 0
    fault_tasks: list[asyncio.Task[None]] = []

    async def _enact(fault_party: str, crash_at: float, restart_at: float | None) -> None:
        nonlocal kills, restarts, pending_restarts
        assert proxy.epoch_wall is not None
        await asyncio.sleep(max(0.0, proxy.epoch_wall + crash_at * scale - time.time()))
        handles[fault_party].kill()
        kills += 1
        if restart_at is None:
            proxy.dead.add(fault_party)
            return
        pending_restarts += 1
        try:
            await asyncio.sleep(
                max(0.0, proxy.epoch_wall + restart_at * scale - time.time())
            )
            handles[fault_party].spawn()
            restarts += 1
        finally:
            pending_restarts -= 1

    outcome = "quiescent"
    try:
        for handle in handles.values():
            handle.spawn()
        ready = await proxy.wait_connected(
            frozenset(everyone), timeout=config.ready_timeout
        )
        if not ready:
            missing = sorted(frozenset(everyone) - proxy._conns.keys())
            raise NetRuntimeError(
                f"nodes never connected within {config.ready_timeout}s: {missing}"
            )
        proxy.open_for_business()

        if fault_plan is not None:
            for fault in fault_plan.parties:
                fault_tasks.append(
                    asyncio.ensure_future(
                        _enact(fault.party, fault.crash_at, fault.restart_at)
                    )
                )

        # Quiescence: no pending restarts, nothing in flight (stranded mail
        # of the permanently dead excluded), no armed trusted deadline, and
        # a quiet period of wall silence — with a hard sim-time cap.
        quiet_wall = max(config.quiet_period * scale, 0.25)
        while True:
            await asyncio.sleep(min(0.05, quiet_wall / 4))
            if proxy.now_sim() > config.max_sim_time:
                outcome = "timeout"
                break
            if pending_restarts:
                continue
            if proxy.in_flight_keys(ignoring=frozenset(proxy.dead)):
                continue
            live_trusted = [t for t in trusted if t not in proxy.dead]
            if any(t not in proxy.reports for t in live_trusted):
                continue
            if proxy.armed_trusted():
                continue
            if time.monotonic() - proxy.last_activity < quiet_wall:
                continue
            break

        proxy.broadcast_shutdown()
        await asyncio.sleep(0.1)
    finally:
        for task in fault_tasks:
            task.cancel()
        for handle in handles.values():
            handle.reap()
        await proxy.close()

    stranded = proxy.resolve_stranded()
    duration = proxy.now_sim()

    # ------------------------------------------------------------- assembly
    ledger = bootstrap.build_initial_ledger(
        problem, protocol, config.working_capital_cents
    )
    initial = ledger.seal()
    delivered = proxy.delivered_actions()
    for action in delivered:
        ledger.apply(action)
        ledger.check()  # conservation, live at every step
    final = ledger.snapshot()

    completed = frozenset(
        party
        for party in protocol.trusted_specs
        if proxy.reports.get(party.name, {}).get("phase") == "completed"
    )
    reversed_agents = frozenset(
        party
        for party in protocol.trusted_specs
        if proxy.reports.get(party.name, {}).get("phase") == "reversed"
    )
    provenance = RunProvenance(
        problem_name=problem.name,
        seed=seed,
        fault_seed=fault_plan.seed if fault_plan is not None else None,
        fault_digest=fault_plan.digest() if fault_plan is not None else None,
        latency=config.latency,
        deadline=max(
            (s.deadline for s in protocol.trusted_specs.values() if s.deadline),
            default=None,
        ),
        working_capital_cents=config.working_capital_cents,
    )
    result = SimulationResult(
        problem_name=problem.name,
        duration=duration,
        initial=initial,
        final=final,
        stats=proxy.stats,
        delivered=delivered,
        completed_agents=completed,
        reversed_agents=reversed_agents,
        provenance=provenance,
        stranded_messages=stranded,
        quiescent=(outcome == "quiescent" and stranded == 0),
    )
    report = evaluate_safety(problem, result)
    run = NetRunResult(
        result=result,
        report=report,
        run_dir=run_dir,
        port=port,
        kills=kills,
        restarts=restarts,
        node_reports=dict(proxy.reports),
        outcome=outcome,
    )
    return run, proxy


def _snapshot_json(snapshot: "object") -> dict:
    balances = getattr(snapshot, "balances")
    holdings = getattr(snapshot, "holdings")
    return {
        "balances": {party.name: cents for party, cents in sorted(
            balances.items(), key=lambda kv: kv[0].name
        )},
        "holdings": dict(sorted(
            (label, holder.name) for label, holder in holdings.items()
        )),
    }


def _write_artifacts(
    run_dir: str,
    proxy: NetFaultProxy,
    result: SimulationResult,
    report: SafetyReport,
) -> None:
    with open(os.path.join(run_dir, "deliveries.jsonl"), "wb") as fh:
        for record in proxy.delivery_log:
            fh.write(encode_json(record.to_json()) + b"\n")
    provenance = result.provenance
    assert provenance is not None
    with open(os.path.join(run_dir, "provenance.json"), "w", encoding="utf-8") as out:
        json.dump(
            {
                "problem_name": provenance.problem_name,
                "seed": provenance.seed,
                "fault_seed": provenance.fault_seed,
                "fault_digest": provenance.fault_digest,
                "latency": provenance.latency,
                "deadline": provenance.deadline,
                "working_capital_cents": provenance.working_capital_cents,
                "duration": result.duration,
                "quiescent": result.quiescent,
                "stranded_messages": result.stranded_messages,
                "initial": _snapshot_json(result.initial),
                "final": _snapshot_json(result.final),
                "final_digest": result.final.digest(),
            },
            out,
            indent=2,
            sort_keys=True,
        )
    with open(os.path.join(run_dir, "safety.json"), "w", encoding="utf-8") as out:
        json.dump(
            {
                "problem_name": report.problem_name,
                "verdicts": [
                    {
                        "party": v.party.name,
                        "ok": v.ok,
                        "reasons": list(v.reasons),
                        "money_delta_cents": v.money_delta_cents,
                    }
                    for v in report.verdicts
                ],
            },
            out,
            indent=2,
            sort_keys=True,
        )


def run_networked_exchange(
    problem: ExchangeProblem,
    run_dir: str,
    config: NetRunConfig = NetRunConfig(),
    fault_plan: FaultPlan | None = None,
    adversaries: dict[str, int] | None = None,
    seed: "int | float | None" = None,
) -> NetRunResult:
    """Drive *problem* end-to-end over real sockets; blocks until done."""
    config = config.validate()
    protocol = bootstrap.derive_protocol(problem, config.deadline)
    if fault_plan is not None:
        fault_plan = fault_plan.validate()
        bootstrap.check_plan_targets(problem, protocol, fault_plan)
    adversaries = adversaries or {}
    for name in adversaries:
        bootstrap.find_party(problem, protocol, name)  # raises on unknown

    os.makedirs(run_dir, exist_ok=True)
    spec_path = os.path.join(run_dir, "problem.spec")
    with open(spec_path, "w", encoding="utf-8") as fh:
        fh.write(format_problem(problem))

    run, proxy = asyncio.run(
        _run(
            problem,
            run_dir,
            spec_path,
            protocol,
            config,
            fault_plan,
            adversaries,
            seed,
        )
    )
    # Artifact writes are plain blocking file I/O, so they happen here —
    # after the loop has shut down — rather than inside the async runtime.
    _write_artifacts(run_dir, proxy, run.result, run.report)
    return run


def trusted_parties(problem: ExchangeProblem, deadline: float | None) -> list[Party]:
    """The trusted components a run of *problem* will spawn (for harnesses)."""
    return list(bootstrap.derive_protocol(problem, deadline).trusted_specs)
