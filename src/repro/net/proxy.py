"""The fault proxy: a seeded :class:`FaultPlan` enacted on real sockets.

Every node connects to this asyncio TCP server; every envelope a node
offers runs the *same* fault gauntlet the simulator's
:class:`~repro.sim.network.Network` applies — partition windows, drop and
duplication probabilities, bounded delay jitter, per-directed-link FIFO
clamping — before being forwarded to its recipient.  Process faults are
*real*: the supervisor SIGKILLs the victim's process, and the proxy parks
deliveries addressed to a party inside its crash window (or with no live
connection) in a mailbox flushed at reconnect, exactly the simulator's
crashed-host semantics ("assets land on the host; only the logic is
suspended").

One deliberate departure from the simulator, documented here and in
DESIGN.md §13: the simulator draws fault rolls from ``Random(plan.seed)``
in *event order*, which no concurrent transport can replicate.  The proxy
instead derives every roll from a stable hash of
``(plan.seed, envelope key, attempt, purpose)`` — per-envelope
deterministic, order-free.  Individual message fates therefore differ
between runtimes; the conformance arm compares *verdicts* (safety and
conservation), which the §5 theorem guarantees regardless of which
messages die.

Delivery is two-phase where it matters: a forwarded envelope counts as
delivered only once the recipient confirms (``got``) that the delivery hit
its write-ahead log — if the process is killed with the frame still in a
socket buffer, the proxy re-parks it for redelivery at restart, so a
message can never vanish into a dying process *after* being acknowledged
to its sender.  Parked deliveries are acknowledged immediately (the host
accepted the asset), mirroring ``Envelope.delivered`` for crashed parties.

The ordered delivery log the proxy keeps is the run's ground truth: the
supervisor folds it over the initial ledger to produce the final snapshot
that :func:`repro.sim.safety.evaluate_safety` judges.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.actions import Action
from repro.net.wire import action_from_json, action_to_json, read_frame, write_frame
from repro.obs.messages import MessageObs
from repro.obs.runtime import active as _active_tracer
from repro.sim.faults import FaultPlan
from repro.sim.network import NetworkStats


@dataclass
class ProxiedEnvelope:
    """Transport fate of one logical message, keyed by its string key."""

    key: str
    src: str  # effective sender (the offering node)
    dst: str  # effective recipient
    action: Action
    obs_key: int
    attempts: int = 0
    delivered: bool = False
    abandoned: bool = False
    delivered_at: float | None = None


@dataclass
class DeliveryRecord:
    """One entry of the authoritative ordered delivery log."""

    seq: int
    time: float
    key: str
    action: Action

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": round(self.time, 6),
            "key": self.key,
            "action": action_to_json(self.action),
        }


class NetFaultProxy:
    """Routes framed envelopes between node processes, injecting faults."""

    def __init__(
        self,
        expected: frozenset[str],
        plan: FaultPlan | None = None,
        latency: float = 1.0,
        time_scale: float = 0.02,
    ) -> None:
        self.expected = expected
        self.plan = plan.validate() if plan is not None else None
        self.latency = latency
        self.time_scale = time_scale
        self.stats = NetworkStats()
        self.delivery_log: list[DeliveryRecord] = []
        self.reports: dict[str, dict[str, Any]] = {}
        self.dead: set[str] = set()  # permanently silenced (never restarted)

        self._conns: dict[str, asyncio.StreamWriter] = {}
        self._mailbox: dict[str, list[tuple[str, Action]]] = {}
        self._offered: dict[str, ProxiedEnvelope] = {}
        self._await_got: dict[str, str] = {}  # key -> recipient it was forwarded to
        self._fifo_floor: dict[tuple[str, str], float] = {}
        self._obs_keys = itertools.count(1)
        self._tasks: set[asyncio.Task[None]] = set()
        self._server: asyncio.Server | None = None
        self._welcome = asyncio.Event()
        self._connected = asyncio.Event()
        self.epoch_wall: float | None = None
        self.last_activity = time.monotonic()
        tracer = _active_tracer()
        self.obs: MessageObs | None = MessageObs(tracer) if tracer is not None else None

    # ------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(self._handle, host, port)
        return self.port

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    def open_for_business(self) -> None:
        """Fix the epoch (sim time 0) and release welcome frames."""
        self.epoch_wall = time.time()
        self._welcome.set()

    async def wait_connected(self, names: frozenset[str], timeout: float) -> bool:
        """Wait until every party in *names* has said hello (or timeout)."""
        give_up = time.monotonic() + timeout
        while not names <= self._conns.keys():
            if time.monotonic() >= give_up:
                return False
            await asyncio.sleep(0.02)
        return True

    async def close(self) -> None:
        for task in list(self._tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.obs is not None:
            self.obs.finish(self.now_sim())

    def broadcast_shutdown(self) -> None:
        for writer in self._conns.values():
            if not writer.is_closing():
                write_frame(writer, {"type": "shutdown"})

    # ------------------------------------------------------------------ time

    def now_sim(self) -> float:
        if self.epoch_wall is None:
            return 0.0
        return (time.time() - self.epoch_wall) / self.time_scale

    def touch(self) -> None:
        self.last_activity = time.monotonic()

    # ------------------------------------------------------------ connection

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        hello = await read_frame(reader)
        if hello is None or hello.get("type") != "hello":
            writer.close()
            return
        party = str(hello["party"])
        self._conns[party] = writer
        self.touch()
        if self.expected <= self._conns.keys():
            self._connected.set()
        await self._welcome.wait()
        write_frame(
            writer,
            {
                "type": "welcome",
                "epoch": self.epoch_wall,
                "time_scale": self.time_scale,
            },
        )
        # Flush mail parked while the party's process was down: these were
        # already marked delivered (the host accepted them); the restarted
        # process now gets to run its handler, as in Network._drain_mailbox.
        for key, action in self._mailbox.pop(party, []):
            self._forward(party, key, action)
        try:
            await writer.drain()
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                self.touch()
                kind = frame.get("type")
                if kind == "act":
                    self._on_offer(party, frame)
                elif kind == "got":
                    self._on_got(str(frame["key"]))
                elif kind == "abandon":
                    self._on_abandon(str(frame["key"]))
                elif kind == "report":
                    self.reports[party] = frame
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            if self._conns.get(party) is writer:
                del self._conns[party]
            self._repark(party)
            writer.close()

    def _repark(self, party: str) -> None:
        """The connection died: anything forwarded but never confirmed goes
        back to the mailbox (a SIGKILL can strand frames in socket buffers).
        """
        stranded = [k for k, dst in self._await_got.items() if dst == party]
        for key in stranded:
            del self._await_got[key]
            env = self._offered[key]
            if not env.delivered:
                self._mark_delivered(env)  # the host accepted it; log + ack
                self.stats.deferred += 1
                if self.obs is not None:
                    self.obs.defer(env.obs_key, self.now_sim())
            self._mailbox.setdefault(party, []).append((key, env.action))

    # --------------------------------------------------------------- gauntlet

    def _roll(self, key: str, attempt: int, purpose: str) -> float:
        """A stable uniform [0,1) roll for one (envelope, attempt, purpose).

        Unlike the simulator's event-ordered ``Random(plan.seed)`` stream,
        rolls here are keyed — concurrency cannot reorder them.
        """
        seed = 0 if self.plan is None else self.plan.seed
        digest = hashlib.sha256(
            f"{seed}:{key}:{attempt}:{purpose}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def _on_offer(self, party: str, frame: dict[str, Any]) -> None:
        key = str(frame["key"])
        now = self.now_sim()
        env = self._offered.get(key)
        if env is None:
            action = action_from_json(frame["action"])
            env = ProxiedEnvelope(
                key=key,
                src=action.effective_sender.name,
                dst=action.effective_recipient.name,
                action=action,
                obs_key=next(self._obs_keys),
            )
            self._offered[key] = env
            self.stats.messages_sent += 1
            self.stats.by_sender[action.effective_sender] = (
                self.stats.by_sender.get(action.effective_sender, 0) + 1
            )
            if action.is_transfer:
                self.stats.transfers += 1
            else:
                self.stats.notifies += 1
            if self.obs is not None:
                self.obs.send(env.obs_key, env.src, env.dst, str(action), now)
        else:
            if env.abandoned:
                return
            self.stats.retransmits += 1
            if self.obs is not None:
                self.obs.retransmit(env.obs_key, now)
        env.attempts += 1
        self.stats.attempts += 1
        if self.obs is not None:
            self.obs.attempt(env.obs_key, env.attempts, now)
        if env.delivered:
            self._ack(env)  # a retry raced the ack, or a restarted node re-offered
            return

        times = [now + self.latency]
        plan = self.plan
        if plan is not None and plan.active(now):
            link = plan.link_for(env.src, env.dst)
            if link is not None:
                if link.partitioned(now) or (
                    link.drop > 0 and self._roll(key, env.attempts, "drop") < link.drop
                ):
                    self.stats.dropped += 1
                    if self.obs is not None:
                        self.obs.drop(env.obs_key, now)
                    return  # this attempt is lost; the asset stays on the wire
                jitter = (
                    self._roll(key, env.attempts, "delay") * link.max_delay
                    if link.max_delay > 0
                    else 0.0
                )
                times = [now + self.latency + jitter]
                if link.duplicate > 0 and (
                    self._roll(key, env.attempts, "dup") < link.duplicate
                ):
                    self.stats.duplicates += 1
                    if self.obs is not None:
                        self.obs.duplicate(env.obs_key, now)
                    times.append(times[0] + self.latency)
        if plan is not None:
            # FIFO floor: jitter may stretch the wire but never lets a later
            # message overtake an earlier one on the same directed link.
            pair = (env.src, env.dst)
            clamped = []
            for t in times:
                t = max(t, self._fifo_floor.get(pair, 0.0))
                self._fifo_floor[pair] = t
                clamped.append(t)
            times = clamped
        for t in times:
            self._spawn(self._deliver_later(env, max(0.0, t - now) * self.time_scale))

    def _spawn(self, coro: Any) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _deliver_later(self, env: ProxiedEnvelope, delay_wall: float) -> None:
        if delay_wall > 0:
            await asyncio.sleep(delay_wall)
        self._deliver(env)

    # --------------------------------------------------------------- delivery

    def _deliver(self, env: ProxiedEnvelope) -> None:
        if env.abandoned:
            return  # a late copy of a message the wire already bounced
        now = self.now_sim()
        crashed = (
            env.dst in self.dead
            or (self.plan is not None and self.plan.is_crashed(env.dst, now))
        )
        conn = self._conns.get(env.dst)
        if env.delivered:
            self.stats.duplicate_deliveries += 1
            if self.obs is not None:
                self.obs.duplicate_delivery(env.obs_key, now)
            if not crashed and conn is not None:
                self._forward(env.dst, env.key, env.action)  # node dedups
            return
        if crashed or conn is None:
            # The host accepted the asset; the process is down.  Park the
            # handler call until restart (never, for permanent silence).
            self._mark_delivered(env)
            self.stats.deferred += 1
            if self.obs is not None:
                self.obs.defer(env.obs_key, now)
            self._mailbox.setdefault(env.dst, []).append((env.key, env.action))
            return
        self._forward(env.dst, env.key, env.action)
        self._await_got[env.key] = env.dst

    def _forward(self, party: str, key: str, action: Action) -> None:
        writer = self._conns.get(party)
        if writer is None or writer.is_closing():
            self._mailbox.setdefault(party, []).append((key, action))
            return
        write_frame(
            writer, {"type": "act", "key": key, "action": action_to_json(action)}
        )

    def _on_got(self, key: str) -> None:
        self._await_got.pop(key, None)
        env = self._offered.get(key)
        if env is None or env.delivered or env.abandoned:
            return
        self._mark_delivered(env)

    def _mark_delivered(self, env: ProxiedEnvelope) -> None:
        now = self.now_sim()
        env.delivered = True
        env.delivered_at = now
        self.stats.messages_delivered += 1
        if self.obs is not None:
            self.obs.deliver(env.obs_key, now)
        self.delivery_log.append(
            DeliveryRecord(len(self.delivery_log), now, env.key, env.action)
        )
        self._ack(env)
        self.touch()

    def _ack(self, env: ProxiedEnvelope) -> None:
        writer = self._conns.get(env.src)
        if writer is not None and not writer.is_closing():
            write_frame(writer, {"type": "ack", "key": env.key})

    def _on_abandon(self, key: str) -> None:
        env = self._offered.get(key)
        if env is None or env.delivered or env.abandoned:
            return
        env.abandoned = True
        self.stats.abandoned += 1
        if self.obs is not None:
            self.obs.abandon(env.obs_key, self.now_sim())

    # ------------------------------------------------------------- quiescence

    def in_flight_keys(self, ignoring: frozenset[str] = frozenset()) -> list[str]:
        """Undelivered, unabandoned envelope keys (senders in *ignoring*
        excluded — a permanently dead sender can never retry, so its
        messages are stranded, not pending)."""
        return [
            key
            for key, env in self._offered.items()
            if not env.delivered and not env.abandoned and env.src not in ignoring
        ]

    def armed_trusted(self) -> list[str]:
        """Trusted parties whose latest report shows an armed deadline."""
        return [
            name
            for name, report in self.reports.items()
            if report.get("trusted") and report.get("armed")
        ]

    def resolve_stranded(self) -> int:
        """Abandon every still-undelivered envelope (quiescence backstop)."""
        stranded = 0
        for env in self._offered.values():
            if not env.delivered and not env.abandoned:
                env.abandoned = True
                self.stats.abandoned += 1
                stranded += 1
                if self.obs is not None:
                    self.obs.abandon(env.obs_key, self.now_sim())
        return stranded

    def delivered_actions(self) -> list[Action]:
        return [record.action for record in self.delivery_log]
