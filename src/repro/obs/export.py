"""Trace export: JSONL records, replay-stable digests, tree/flame rendering.

The JSONL schema is one JSON object per line, sorted keys, no whitespace —
canonical enough that :func:`span_digest` (sha256 over the span lines) is
byte-identical across replays of the same seeded run.  Two record types:

* span — ``{"attrs": {...}, "end": int, "events": [...], "name": str,
  "parent_id": int, "span_id": int, "start": int, "type": "span"}``
* metric — ``{"kind": str, "metric": str, "type": "metric",
  "values": [...]}``

Timestamps are logical-clock ticks (see :mod:`repro.obs.clock`), never wall
time, so the digest is a pure function of the traced computation.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import Span, Tracer

#: One exportable record (span or metric), JSON-ready.
Record = dict[str, object]


def span_records(tracer: Tracer) -> list[Record]:
    """Closed spans as JSON-ready records, ordered by span id."""
    records: list[Record] = []
    for span in sorted(tracer.spans, key=lambda s: s.span_id):
        records.append(
            {
                "type": "span",
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attrs": span.attrs,
                "events": [
                    {"tick": tick, "name": name, "attrs": attrs}
                    for tick, name, attrs in span.events
                ],
            }
        )
    return records


def snapshot_records(snapshot: MetricsSnapshot) -> list[Record]:
    """A detached metrics snapshot (e.g. off a fuzz/chaos report) as records."""
    return [
        {"type": "metric", "metric": name, "kind": kind, "values": list(values)}
        for name, kind, values in snapshot
    ]


def metric_records(tracer: Tracer) -> list[Record]:
    """The tracer's metrics snapshot as JSON-ready records."""
    return snapshot_records(tracer.metrics.snapshot())


def to_jsonl(records: list[Record]) -> str:
    """Canonical JSONL: sorted keys, compact separators, one trailing newline."""
    if not records:
        return ""
    return (
        "\n".join(json.dumps(r, sort_keys=True, separators=(",", ":")) for r in records)
        + "\n"
    )


def write_jsonl(path: str | Path, records: list[Record]) -> None:
    Path(path).write_text(to_jsonl(records), encoding="utf-8")


def span_digest(tracer: Tracer) -> str:
    """Replay-stable sha256 over the canonical span JSONL."""
    payload = to_jsonl(span_records(tracer))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def render_tree(tracer: Tracer, *, max_events: int = 8) -> str:
    """An indented span tree, children in start order.

    Instants render as ``@tick``, real spans as ``[start..end]``; attrs are
    appended ``key=value`` and up to ``max_events`` events are listed as
    child lines prefixed ``·``.
    """
    spans = sorted(tracer.spans, key=lambda s: s.span_id)
    children: dict[int, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))

    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        indent = "  " * depth
        if span.end == span.start:
            when = f"@{span.start}"
        else:
            when = f"[{span.start}..{span.end}]"
        attrs = "".join(f" {k}={v}" for k, v in span.attrs.items())
        lines.append(f"{indent}{span.name} {when}{attrs}")
        shown = span.events[:max_events]
        for tick, name, event_attrs in shown:
            event_suffix = "".join(f" {k}={v}" for k, v in event_attrs.items())
            lines.append(f"{indent}  · {name} @{tick}{event_suffix}")
        if len(span.events) > max_events:
            lines.append(f"{indent}  · … {len(span.events) - max_events} more events")
        for child in children.get(span.span_id, []):
            emit(child, depth + 1)

    for root in children.get(0, []):
        emit(root, 0)
    return "\n".join(lines)


def render_flame(tracer: Tracer) -> str:
    """Flamegraph-style cumulative table: ticks and counts per span name.

    Logical ticks stand in for samples; sorted by cumulative ticks
    descending, then name, so the hottest span names lead.
    """
    ticks: dict[str, int] = {}
    counts: dict[str, int] = {}
    for span in tracer.spans:
        ticks[span.name] = ticks.get(span.name, 0) + span.ticks
        counts[span.name] = counts.get(span.name, 0) + 1
    if not ticks:
        return "(no spans)"
    rows = sorted(ticks.items(), key=lambda item: (-item[1], item[0]))
    name_width = max(len("span"), max(len(name) for name, _ in rows))
    lines = [f"{'span':<{name_width}}  {'ticks':>8}  {'count':>8}"]
    for name, total in rows:
        lines.append(f"{name:<{name_width}}  {total:>8}  {counts[name]:>8}")
    return "\n".join(lines)
