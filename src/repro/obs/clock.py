"""The two clocks of the observability layer.

:class:`LogicalClock` is the only clock the deterministic packages ever see:
a monotone integer advanced once per observed edge (span start, span end,
event).  Two runs of the same seeded computation therefore produce
byte-identical traces — which is what makes span digests a regression
artifact rather than noise.

:class:`WallTimer` and :class:`PhaseTimer` are the *sanctioned* wall-clock
API for the analysis/CLI/benchmark boundary, where durations are reporting.
They are deliberately the only place in the instrumented stack that touches
:func:`time.perf_counter`; the determinism lint (DET001) bans direct clock
reads from ``core``/``sim``/``conformance``, and those packages must never
import these classes.
"""

from __future__ import annotations

import time
from types import TracebackType


class LogicalClock:
    """A monotone step counter: deterministic 'time' for spans and events."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0

    def tick(self) -> int:
        """Advance and return the new instant (first tick returns 1)."""
        self.now += 1
        return self.now


class WallTimer:
    """A start/stop wall-clock stopwatch (context-manager friendly).

    ``seconds`` is valid after :meth:`stop` (or the ``with`` block exits);
    re-entering restarts the measurement.
    """

    __slots__ = ("seconds", "_started_at")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started_at: float | None = None

    def start(self) -> "WallTimer":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the elapsed seconds since :meth:`start`."""
        if self._started_at is None:
            raise RuntimeError("WallTimer.stop() before start()")
        self.seconds = time.perf_counter() - self._started_at
        self._started_at = None
        return self.seconds

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()


class PhaseTimer:
    """Named sequential phases, each wall-timed once.

    The flat-core bench uses this to split compile/run/decompile::

        phases = PhaseTimer()
        with phases.phase("compile"):
            compiled = compile_graph(sg)
        with phases.phase("run"):
            run = run_reduction(compiled)
        phases.seconds  # {"compile": ..., "run": ...}

    Re-entering a phase name accumulates (useful for repeat loops).
    """

    __slots__ = ("seconds",)

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def phase(self, name: str) -> "_Phase":
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def as_dict(self, *, round_to: int | None = None) -> dict[str, float]:
        """Phase → seconds in first-entered order (insertion-ordered dict)."""
        if round_to is None:
            return dict(self.seconds)
        return {name: round(s, round_to) for name, s in self.seconds.items()}


class _Phase:
    """One ``with`` scope of a :class:`PhaseTimer` phase."""

    __slots__ = ("_owner", "_name", "_timer")

    def __init__(self, owner: PhaseTimer, name: str) -> None:
        self._owner = owner
        self._name = name
        self._timer = WallTimer()

    def __enter__(self) -> "_Phase":
        self._timer.start()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._owner.add(self._name, self._timer.stop())
