"""Envelope span lifecycles and causal message traces.

A message span cannot be context-managed: it opens when the sender puts the
envelope on the wire and closes when the first copy is delivered (or the
wire bounces it back), in different call frames and possibly different
simulated instants.  OBS001 therefore bans the imperative
``start_span``/``end_span`` pair everywhere *except* this module — the
transport calls these helpers and never touches the tracer's span API
directly.

Besides spans, :class:`MessageObs` keeps a flat, human-readable causal log
(one line per transport event, in event order).  When a chaos scenario
violates a property, the study re-runs the scenario deterministically under
tracing and attaches :meth:`MessageObs.trace_lines` to the verdict — the
"what did the wire do" answer that a bare digest cannot give.

All timestamps here are *simulated* seconds off the event queue (plus the
tracer's logical ticks on the spans themselves); nothing reads a wall clock.
"""

from __future__ import annotations

from repro.obs.spans import Tracer


class MessageObs:
    """Span + causal-log recorder for one simulated network."""

    __slots__ = ("_tracer", "_spans", "lines")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._spans: dict[int, int] = {}  # envelope key -> open span id
        #: Causal log lines, in event order (empty in metrics-only mode).
        self.lines: list[str] = []

    def _note(self, now: float, verb: str, key: int, detail: str = "") -> None:
        if self._tracer.record_spans:
            suffix = f" {detail}" if detail else ""
            self.lines.append(f"t={now:g} {verb} #{key}{suffix}")

    # ------------------------------------------------------------- lifecycle

    def send(self, key: int, sender: str, recipient: str, what: str, now: float) -> int:
        """Open the message span at send time; returns its span id."""
        span_id = self._tracer.start_span(
            "message",
            {"key": key, "src": sender, "dst": recipient, "what": what, "sent_at": now},
        )
        if span_id >= 0:
            self._spans[key] = span_id
        self._note(now, "send", key, f"{sender}->{recipient} {what}")
        return span_id

    def deliver(self, key: int, now: float) -> None:
        """First successful delivery closes the span."""
        span_id = self._spans.pop(key, None)
        if span_id is not None:
            self._tracer.end_span(span_id, {"delivered_at": now, "fate": "delivered"})
        self._note(now, "deliver", key)

    def abandon(self, key: int, now: float) -> None:
        """The wire gives up: custody returns to the sender, span closes."""
        span_id = self._spans.pop(key, None)
        if span_id is not None:
            self._tracer.end_span(span_id, {"abandoned_at": now, "fate": "abandoned"})
        self._note(now, "abandon", key)

    def finish(self, now: float) -> None:
        """Close any message spans still open (defensive; quiescence and
        :meth:`~repro.sim.network.Network.resolve_stranded` normally close
        everything)."""
        for key in sorted(self._spans):
            self._tracer.end_span(self._spans[key], {"fate": "unresolved", "at": now})
            self._note(now, "unresolved", key)
        self._spans.clear()

    # ---------------------------------------------------------------- events

    def attempt(self, key: int, attempt: int, now: float) -> None:
        span_id = self._spans.get(key)
        if span_id is not None:
            self._tracer.add_event(span_id, "attempt", {"n": attempt, "at": now})
        if attempt > 1:
            self._note(now, "attempt", key, f"n={attempt}")

    def drop(self, key: int, now: float) -> None:
        """This attempt's copy was lost (random drop or partition)."""
        span_id = self._spans.get(key)
        if span_id is not None:
            self._tracer.add_event(span_id, "drop", {"at": now})
        self._note(now, "drop", key)

    def duplicate(self, key: int, now: float) -> None:
        """The link forked a second copy of this attempt."""
        span_id = self._spans.get(key)
        if span_id is not None:
            self._tracer.add_event(span_id, "duplicate", {"at": now})
        self._note(now, "duplicate", key)

    def retransmit(self, key: int, now: float) -> None:
        span_id = self._spans.get(key)
        if span_id is not None:
            self._tracer.add_event(span_id, "retransmit", {"at": now})
        self._note(now, "retransmit", key)

    def defer(self, key: int, now: float) -> None:
        """Delivered to a crashed host: parked in the mailbox until restart."""
        span_id = self._spans.get(key)
        if span_id is not None:
            self._tracer.add_event(span_id, "defer", {"at": now})
        self._note(now, "defer", key)

    def duplicate_delivery(self, key: int, now: float) -> None:
        """A late copy arrived after first delivery (span already closed)."""
        self._tracer.instant("message.duplicate_delivery", {"key": key, "at": now})
        self._note(now, "dup-deliver", key)

    # --------------------------------------------------------------- reading

    def trace_lines(self) -> tuple[str, ...]:
        """The causal log so far, one line per transport event."""
        return tuple(self.lines)
