"""Metrics: counters, high-watermark gauges, fixed-bucket histograms.

Everything here is built to *merge deterministically*.  A pooled sweep
collects one snapshot per work item (in each worker process) and the parent
folds them together in input order; a serial sweep folds the identical
per-item snapshots in the same order.  The fold is therefore the same
computation either way, and :func:`snapshot_digest` over the merged result
is the one-string equality check the fuzz/chaos report tests assert.

Merge semantics per instrument:

* **Counter** — integer total; merged by addition.
* **Gauge** — high-watermark (``record`` keeps the max); merged by max.
  A last-write gauge cannot merge order-independently, so it does not exist
  here.
* **Histogram** — fixed, explicit bucket boundaries chosen at creation;
  merged bucket-wise (boundaries must agree, enforced).  ``observe(v)``
  lands ``v`` in the first bucket whose upper bound is ``>= v``, or in the
  overflow bucket.

Snapshots are plain nested tuples (picklable, hashable, JSON-friendly):
``(name, kind, values)`` sorted by name — see :data:`MetricsSnapshot`.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left

#: One serialized instrument: ``(name, kind, values)``.  Counters and gauges
#: carry ``(value,)``; histograms carry
#: ``(k, b_1..b_k, c_1..c_{k+1}, count, total)`` where ``k`` is the number of
#: boundaries and ``c_{k+1}`` is the overflow bucket.
MetricSample = tuple[str, str, tuple[float, ...]]

#: A full registry snapshot: samples sorted by instrument name.
MetricsSnapshot = tuple[MetricSample, ...]

#: Default histogram boundaries: powers of two over the ranges the hot-path
#: instruments see (worklist depths, survivor counts, message counts).
DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def sample(self) -> MetricSample:
        return (self.name, self.kind, (self.value,))


class Gauge:
    """A high-watermark gauge: :meth:`record` keeps the maximum seen."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def record(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def sample(self) -> MetricSample:
        return (self.name, self.kind, (self.value,))


class Histogram:
    """Fixed-bucket histogram with an overflow bucket, count, and total."""

    __slots__ = ("name", "boundaries", "buckets", "count", "total")
    kind = "histogram"

    def __init__(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        if list(boundaries) != sorted(boundaries) or not boundaries:
            raise ValueError(f"histogram boundaries must be sorted, non-empty: {boundaries!r}")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.buckets = [0] * (len(boundaries) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    def sample(self) -> MetricSample:
        k = len(self.boundaries)
        return (
            self.name,
            self.kind,
            (float(k), *self.boundaries, *map(float, self.buckets), float(self.count), self.total),
        )


class MetricsRegistry:
    """A named bag of instruments with deterministic snapshot/merge."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Counter(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{name!r} is a {instrument.kind}, not a counter")
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Gauge(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Gauge):
            raise TypeError(f"{name!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, boundaries)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a {instrument.kind}, not a histogram")
        elif instrument.boundaries != tuple(boundaries):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{instrument.boundaries!r}"
            )
        return instrument

    def inc(self, name: str, n: int = 1) -> None:
        """Convenience: bump a counter by name."""
        self.counter(name).inc(n)

    # --------------------------------------------------------------- snapshot

    def snapshot(self) -> MetricsSnapshot:
        """Every instrument, serialized, sorted by name."""
        return tuple(
            self._instruments[name].sample() for name in sorted(self._instruments)
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into this registry (deterministic merge)."""
        for name, kind, values in snapshot:
            if kind == Counter.kind:
                self.counter(name).inc(int(values[0]))
            elif kind == Gauge.kind:
                self.gauge(name).record(values[0])
            elif kind == Histogram.kind:
                k = int(values[0])
                boundaries = tuple(values[1 : 1 + k])
                histogram = self.histogram(name, boundaries)
                counts = values[1 + k : 2 + 2 * k]
                for i, c in enumerate(counts):
                    histogram.buckets[i] += int(c)
                histogram.count += int(values[2 + 2 * k])
                histogram.total += values[3 + 2 * k]
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def to_dict(self) -> dict[str, object]:
        """A readable name → value mapping (histograms expand to sub-keys)."""
        out: dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {
                    "count": instrument.count,
                    "total": instrument.total,
                    "buckets": {
                        **{
                            f"le_{boundary:g}": instrument.buckets[i]
                            for i, boundary in enumerate(instrument.boundaries)
                        },
                        "overflow": instrument.buckets[-1],
                    },
                }
            else:
                out[name] = instrument.value
        return out

    def digest(self) -> str:
        return snapshot_digest(self.snapshot())


def merge_snapshots(snapshots: "list[MetricsSnapshot]") -> MetricsSnapshot:
    """Fold per-item snapshots (in the given order) into one snapshot.

    Counters and histograms are commutative sums and gauges are maxes, so
    the result is actually order-independent — the fixed input order just
    makes that self-evident in the serial == ``--jobs`` digest tests.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.absorb(snapshot)
    return merged.snapshot()


def snapshot_digest(snapshot: MetricsSnapshot) -> str:
    """A replay-stable hash of one (usually merged) snapshot."""
    payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
