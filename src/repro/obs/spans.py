"""Hierarchical spans over a logical clock, plus hot-path helpers.

A :class:`Tracer` owns a :class:`~repro.obs.clock.LogicalClock`, a
:class:`~repro.obs.metrics.MetricsRegistry`, and the list of closed spans.
Every span edge (open, close, event) advances the clock by one, so span
timestamps are *step numbers*, not seconds — two replays of the same seeded
run produce identical span lists, which is what makes
:func:`repro.obs.export.span_digest` a regression artifact.

Lifecycle discipline (enforced by staticcheck rule OBS001): outside
``repro/obs`` the only legal way to open a span is the context-manager form
``with tracer.span("name"):`` — it cannot leak a span open across an
exception.  The imperative :meth:`Tracer.start_span`/:meth:`Tracer.end_span`
pair exists for event-driven lifetimes (a message span opens at send and
closes at delivery, in different call frames) and is confined to
:mod:`repro.obs.messages`.

A tracer created with ``record_spans=False`` is a metrics-only tracer: all
span operations become no-ops while counters and histograms still accumulate.
That is the mode pooled fuzz/chaos workers run in — cheap, picklable
snapshots, no span traffic.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager

from repro.obs.clock import LogicalClock
from repro.obs.metrics import MetricsRegistry

#: Span/event attribute values: keep them JSON scalars so export is trivial.
AttrValue = int | float | str | bool

#: One timestamped event inside an open span: ``(tick, name, attrs)``.
SpanEvent = tuple[int, str, dict[str, AttrValue]]


class Span:
    """One closed or in-flight span.  ``end`` is ``None`` while open."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs", "events")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        start: int,
        attrs: dict[str, AttrValue],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: int | None = None
        self.attrs = attrs
        self.events: list[SpanEvent] = []

    @property
    def ticks(self) -> int:
        """Inclusive logical duration (0 for instants and open spans)."""
        return 0 if self.end is None else self.end - self.start


class Tracer:
    """Span + metrics collector for one traced run."""

    __slots__ = (
        "clock",
        "metrics",
        "record_spans",
        "spans",
        "_open",
        "_stack",
        "_next_id",
        "_worklist_depth",
    )

    def __init__(self, *, record_spans: bool = True) -> None:
        self.clock = LogicalClock()
        self.metrics = MetricsRegistry()
        self.record_spans = record_spans
        #: Closed spans, in close order (deterministic: close order is a pure
        #: function of the traced computation).
        self.spans: list[Span] = []
        self._open: dict[int, Span] = {}
        self._stack: list[int] = []
        self._next_id = 0
        # Pre-created so the per-firing hot path is two attribute loads.
        self._worklist_depth = self.metrics.histogram("reduction.worklist_depth")

    # ---------------------------------------------------------------- spans

    def start_span(
        self,
        name: str,
        attrs: Mapping[str, AttrValue] | None = None,
        *,
        parent: int | None = None,
    ) -> int:
        """Open a span without entering it (event-driven lifetime).

        Parented to ``parent`` if given, else to the innermost
        context-managed span.  Returns the span id (``-1`` in metrics-only
        mode, accepted as a no-op by every other method).
        """
        if not self.record_spans:
            return -1
        self._next_id += 1
        span_id = self._next_id
        parent_id = parent if parent is not None else (self._stack[-1] if self._stack else 0)
        self._open[span_id] = Span(
            span_id, parent_id, name, self.clock.tick(), dict(attrs or {})
        )
        return span_id

    def end_span(
        self, span_id: int, attrs: Mapping[str, AttrValue] | None = None
    ) -> None:
        """Close a span opened with :meth:`start_span`."""
        span = self._open.pop(span_id, None)
        if span is None:
            return
        if attrs:
            span.attrs.update(attrs)
        span.end = self.clock.tick()
        self.spans.append(span)

    @contextmanager
    def span(
        self, name: str, attrs: Mapping[str, AttrValue] | None = None
    ) -> Iterator[int]:
        """The sanctioned way to open a span: closed on every exit path."""
        span_id = self.start_span(name, attrs)
        if span_id < 0:
            yield span_id
            return
        self._stack.append(span_id)
        try:
            yield span_id
        finally:
            self._stack.pop()
            self.end_span(span_id)

    def instant(self, name: str, attrs: Mapping[str, AttrValue] | None = None) -> None:
        """A zero-length span (start == end, one clock tick)."""
        if not self.record_spans:
            return
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else 0
        span = Span(self._next_id, parent_id, name, self.clock.tick(), dict(attrs or {}))
        span.end = span.start
        self.spans.append(span)

    def add_event(
        self, span_id: int, name: str, attrs: Mapping[str, AttrValue] | None = None
    ) -> None:
        """Attach a timestamped event to a still-open span."""
        span = self._open.get(span_id)
        if span is not None:
            span.events.append((self.clock.tick(), name, dict(attrs or {})))

    def set_attr(self, span_id: int, key: str, value: AttrValue) -> None:
        """Set an attribute on a still-open span (e.g. a result computed
        inside the ``with`` block)."""
        span = self._open.get(span_id)
        if span is not None:
            span.attrs[key] = value

    def open_span_ids(self) -> list[int]:
        """Ids of spans opened but not yet closed, in open order."""
        return sorted(self._open)

    # ----------------------------------------------------- hot-path helpers

    def rule_firing(
        self, rule: str, *, edge: int, depth: int, persona: bool = False
    ) -> None:
        """One reduction-rule firing: counter + worklist depth + instant span.

        ``rule`` is the rule tag (``rule1``..), ``edge`` the flat edge index
        or edge id it fired on, ``depth`` the worklist/candidate depth at
        firing time, ``persona`` whether Rule #1 fired through the §4.2.3
        direct-trust waiver.
        """
        self.metrics.inc(f"reduction.firings.{rule}")
        self._worklist_depth.observe(depth)
        if persona:
            self.metrics.inc("reduction.persona_waivers")
        if self.record_spans:
            attrs: dict[str, AttrValue] = {"edge": edge, "depth": depth}
            if persona:
                attrs["persona"] = True
            self.instant(f"fire.{rule}", attrs)

    def verdict(self, ok: bool) -> None:
        """One feasibility verdict outcome."""
        self.metrics.inc("verdict.pass" if ok else "verdict.fail")
