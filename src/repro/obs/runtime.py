"""The process-wide active tracer and the scopes that install one.

Hot paths capture the active tracer *once* (at engine construction or run
entry) and pay a single ``is not None`` test per firing afterwards::

    obs = active()
    ...
    if obs is not None:
        obs.rule_firing("rule1", edge=i, depth=len(worklist))

When nothing is installed — the default — ``active()`` returns ``None`` and
the instrumented code runs its original path.  The guard cost is measured in
``benchmarks/obs_overhead_bench.py``.

Two scopes install a tracer:

* :func:`tracing` — full spans + metrics; what ``repro trace`` and the
  chaos causal re-run use.
* :func:`metrics_scope` — metrics only (``record_spans=False``); what
  pooled workers wrap around each work item so the per-item snapshots merge
  to identical digests in serial and ``--jobs`` runs.

Both restore the previously active tracer on exit, so scopes nest safely.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.spans import Tracer

_ACTIVE: Tracer | None = None


def active() -> Tracer | None:
    """The currently installed tracer, or ``None`` (the common case)."""
    return _ACTIVE


def enable(*, record_spans: bool = True) -> Tracer:
    """Install and return a fresh tracer (prefer the scoped forms)."""
    global _ACTIVE
    _ACTIVE = Tracer(record_spans=record_spans)
    return _ACTIVE


def disable() -> None:
    """Uninstall any active tracer."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(*, record_spans: bool = True) -> Iterator[Tracer]:
    """Run a block with a fresh tracer installed; restore the old one after."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(record_spans=record_spans)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


@contextmanager
def metrics_scope() -> Iterator[Tracer]:
    """Run a block with a metrics-only tracer (no span recording)."""
    with tracing(record_spans=False) as tracer:
        yield tracer
