"""Deterministic observability: spans, metrics, and sanctioned timers.

The correctness story of this reproduction rests on replayability: the same
seed must produce the same fuzz digest, the same fault schedule, the same
verdict — serial or pooled.  That rules out the usual tracing substrate
(wall-clock timestamps, thread ids, random trace ids).  This package is the
house alternative, built around one split:

* **Logical time everywhere the determinism lint reaches.**  Spans and
  events inside ``core``/``sim``/``conformance`` are stamped by a
  :class:`~repro.obs.clock.LogicalClock` — a monotone step counter advanced
  once per span edge — so a trace of a run is a pure function of the run and
  its JSONL export digests identically on every replay (DET001 stays
  enforceable; nothing here reads the wall clock on those paths).
* **Wall time only at the boundary.**  :mod:`repro.obs.clock` also carries
  the *sanctioned* wall-clock timer API (:class:`~repro.obs.clock.WallTimer`,
  :class:`~repro.obs.clock.PhaseTimer`) for the analysis/CLI/benchmark layer,
  where durations are reporting, not semantics.

The subsystem is dependency-free and **zero-cost when disabled**: hot paths
capture :func:`~repro.obs.runtime.active` once per engine run and pay a
single ``is not None`` test per rule firing (measured in
``benchmarks/obs_overhead_bench.py``).  Enable it with
:func:`~repro.obs.runtime.tracing` (spans + metrics) or
:func:`~repro.obs.runtime.metrics_scope` (counters only — what the pooled
fuzz/chaos workers use so serial and ``--jobs`` sweeps merge to identical
metrics digests).

Span lifecycle discipline is linted: outside this package the only legal way
to open a span is the context-manager form ``with tracer.span(...)``
(staticcheck rule OBS001); the imperative ``start_span``/``end_span`` pair
exists for event-driven lifetimes (a message span opens at send and closes
at delivery) and is confined to the helpers in :mod:`repro.obs.messages`.
"""

from repro.obs.clock import LogicalClock, PhaseTimer, WallTimer
from repro.obs.export import (
    metric_records,
    render_flame,
    render_tree,
    snapshot_records,
    span_digest,
    span_records,
    to_jsonl,
    write_jsonl,
)
from repro.obs.messages import MessageObs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    snapshot_digest,
)
from repro.obs.runtime import active, disable, enable, metrics_scope, tracing
from repro.obs.spans import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LogicalClock",
    "MessageObs",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PhaseTimer",
    "Span",
    "Tracer",
    "WallTimer",
    "active",
    "disable",
    "enable",
    "merge_snapshots",
    "metric_records",
    "metrics_scope",
    "render_flame",
    "render_tree",
    "snapshot_digest",
    "snapshot_records",
    "span_digest",
    "span_records",
    "to_jsonl",
    "tracing",
    "write_jsonl",
]
