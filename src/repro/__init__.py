"""repro — a reproduction of Ketchpel & Garcia-Molina (ICDCS 1996),
*Making Trust Explicit in Distributed Commerce Transactions*.

The package implements the paper's full pipeline and the substrates needed to
exercise it:

* :mod:`repro.core` — the formal model: parties, actions, states, interaction
  graphs, sequencing graphs, the reduction rules and feasibility test,
  execution-sequence recovery, indemnities, and protocol synthesis.
* :mod:`repro.spec` — a concrete text language for exchange problems.
* :mod:`repro.sim` — a deterministic discrete-event simulator that runs the
  synthesized protocols, with adversaries and a safety monitor.
* :mod:`repro.baselines` — comparator protocols: naive direct swaps,
  two-phase commit, a universal trusted intermediary, and sagas.
* :mod:`repro.petri` — the §7.4 Petri-net translation with saturation and
  guided coverability checking.
* :mod:`repro.distributed` — the §9 distributed reduction (local decisions,
  removal notifications).
* :mod:`repro.workloads` — the paper's worked examples plus parametric and
  random generators.
* :mod:`repro.analysis` — the §8 cost-of-mistrust model and sweep studies.
* :mod:`repro.viz` — DOT/ASCII renderings of interaction and sequencing
  graphs (Figures 1–6).

Quickstart::

    from repro.workloads import example1
    problem = example1()
    verdict = problem.feasibility()
    assert verdict.feasible
    for line in problem.execution_sequence().describe():
        print(line)
"""

from repro.core import (
    ExchangeProblem,
    FeasibilityVerdict,
    InteractionGraph,
    SequencingGraph,
    TrustRelation,
    check_feasibility,
    recover_execution,
    reduce_graph,
)

__version__ = "1.0.0"

__all__ = [
    "ExchangeProblem",
    "FeasibilityVerdict",
    "InteractionGraph",
    "SequencingGraph",
    "TrustRelation",
    "check_feasibility",
    "recover_execution",
    "reduce_graph",
    "__version__",
]
