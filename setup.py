"""Shim for offline editable installs (`python setup.py develop`).

The canonical metadata lives in pyproject.toml; this file exists because the
environment has no `wheel` package, which PEP 660 editable installs require.
"""
from setuptools import setup

setup()
