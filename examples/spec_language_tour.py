#!/usr/bin/env python3
"""A tour of the exchange-specification language and the renderers.

Writes the paper's Example #1 in the text syntax, compiles it, shows the
formatter's round trip, demonstrates error reporting with source positions,
and emits Graphviz DOT for the interaction and (reduced) sequencing graphs —
reproducing Figures 1, 3 and 5 as renderable artifacts.

Run:  python examples/spec_language_tour.py
"""

from repro.errors import SpecError
from repro.spec import format_problem, load
from repro.viz import interaction_to_dot, sequencing_to_dot

SPEC = """
# Figure 1, in the concrete syntax.
problem "example1"

principal consumer Consumer
principal broker   Broker
principal producer Producer
trusted Trusted1           # shared by Consumer and Broker
trusted Trusted2           # shared by Broker and Producer

exchange via Trusted1 {
    Consumer pays $12.00 tag retail
    Broker   gives d
}
exchange via Trusted2 {
    Broker   pays $10.00 tag wholesale
    Producer gives d
}

# The broker must have a committed buyer before spending its own money:
# a red edge at the broker's conjunction node.
priority Broker via Trusted1
"""

BROKEN_SPEC = """
principal consumer C
trusted T
exchange via T {
    C pays $10.00
    Ghost gives d
}
"""


def main() -> None:
    problem = load(SPEC)
    print(f"compiled {problem.name!r}: feasible={problem.feasibility().feasible}")

    print("\n--- formatter round trip ---")
    text = format_problem(problem)
    print(text)
    assert load(text).feasibility().feasible

    print("--- semantic errors carry positions ---")
    try:
        load(BROKEN_SPEC)
    except SpecError as exc:
        print(f"caught: {exc}")

    print("\n--- Figure 1 as DOT (pipe into `dot -Tpng`) ---")
    print(interaction_to_dot(problem.interaction, "figure1"))

    print("\n--- Figures 3+5 as DOT: sequencing graph with elimination order ---")
    trace = problem.reduce()
    print(sequencing_to_dot(problem.sequencing_graph(), "figure3", trace))

    print("\n--- shipped spec files (examples/specs/) ---")
    import pathlib

    from repro.spec import load_file

    spec_dir = pathlib.Path(__file__).parent / "specs"
    for path in sorted(spec_dir.glob("*.exchange")):
        loaded = load_file(str(path), validate=False)
        loaded.validate(allow_multiparty=True)
        verdict = "feasible" if loaded.feasibility().feasible else "infeasible"
        print(f"  {path.name:<24} {loaded.name:<12} {verdict}")


if __name__ == "__main__":
    main()
