#!/usr/bin/env python3
"""Document brokering: the paper's full narrative, Figures 1–7.

Walks through everything the paper demonstrates on its two worked examples:

1. Example #1 (Figure 1) — feasible; the reduction trace of Figures 3/5 and
   the §5 execution listing.
2. Example #2 (Figure 2) — infeasible; the Figure 4/6 impasse with its
   red-edge diagnosis.
3. The §4.2.3 direct-trust variants — trust asymmetry flips feasibility.
4. The §6 indemnity fix — one $22 escrow unlocks Example #2; Figure 7's
   $90-vs-$70 ordering effect and the greedy minimum on the 3-broker bundle.

Run:  python examples/document_brokering.py
"""

from repro.core.indemnity import minimal_indemnity_plan, plan_indemnities
from repro.viz import trace_text
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    figure7,
)


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def part1_feasible_chain() -> None:
    banner("1. Example #1 (Figure 1): consumer - broker - producer")
    problem = example1()
    trace = problem.reduce()
    print("\n".join(trace_text(trace)))
    print("\nexecution sequence (§5):")
    for line in problem.execution_sequence().describe():
        print(f"  {line}")


def part2_infeasible_bundle() -> None:
    banner("2. Example #2 (Figure 2): a two-document bundle — stuck")
    problem = example2()
    trace = problem.reduce()
    print("\n".join(trace_text(trace)))
    print(
        "\nThe customer won't commit to broker 1 until broker 2's document is\n"
        "assured, and vice versa — the mutual standoff of §3.2."
    )


def part3_trust_asymmetry() -> None:
    banner("3. §4.2.3: trust is directional")
    forward = example2_source_trusts_broker()
    backward = example2_broker_trusts_source()
    print(f"Source1 trusts Broker1  -> feasible: {forward.feasibility().feasible}")
    print(f"Broker1 trusts Source1  -> feasible: {backward.feasibility().feasible}")
    trace = forward.reduce()
    persona_steps = [s for s in trace.steps if s.via_persona]
    print(
        f"\nThe unlock: Broker1 plays the Trusted2 role, so Rule #1 clause 2\n"
        f"removed {persona_steps[0].edge.commitment.label} despite the red edge,\n"
        f"and {len(trace.steps)} eliminations cascaded (the paper's domino effect)."
    )


def part4_indemnities() -> None:
    banner("4. §6: indemnities — escrowed credibility")
    problem = example2()
    cover = problem.interaction.find_edge("Consumer", "Trusted1")
    plan = plan_indemnities(problem, [cover])
    print("Example #2 with one escrow:")
    for line in plan.describe():
        print(f"  {line}")

    print("\nFigure 7 (three brokers, $10/$20/$30):")
    fig7 = figure7()
    edges = {
        e.trusted.name: e
        for e in fig7.interaction.edges
        if e.principal.name == "Consumer"
    }
    order1 = plan_indemnities(fig7, [edges["Trusted1"], edges["Trusted3"], edges["Trusted5"]])
    order2 = plan_indemnities(fig7, [edges["Trusted5"], edges["Trusted3"], edges["Trusted1"]])
    greedy = minimal_indemnity_plan(fig7)
    print(f"  order #1 (Broker1 first): total ${order1.total_dollars:.2f}")
    print(f"  order #2 (Broker3 first): total ${order2.total_dollars:.2f}")
    print(f"  greedy (highest cost first): total ${greedy.total_dollars:.2f}")
    assert order1.total_cents == 9000 and order2.total_cents == 7000
    assert greedy.total_cents == 7000
    print("  -> matches the paper's $90 vs $70, greedy optimal.")


def main() -> None:
    part1_feasible_chain()
    part2_infeasible_bundle()
    part3_trust_asymmetry()
    part4_indemnities()


if __name__ == "__main__":
    main()
