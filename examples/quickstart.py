#!/usr/bin/env python3
"""Quickstart: the paper's Example #1 end to end in a dozen lines each.

Builds the consumer–broker–producer exchange of Figure 1, checks it is
feasible (Figures 3/5), recovers the §5 ten-step execution sequence, and
runs it in the simulator to watch every party end up whole.

Run:  python examples/quickstart.py
"""

from repro.sim import evaluate_safety, simulate
from repro.workloads import example1


def main() -> None:
    # 1. Specify the exchange problem (Figure 1).  example1() builds it via
    #    the library API; see examples/spec_language_tour.py for the text
    #    syntax.
    problem = example1()
    print(f"problem: {problem.name}")
    print(f"  principals: {[p.name for p in problem.interaction.principals]}")
    print(f"  trusted:    {[t.name for t in problem.interaction.trusted_components]}")

    # 2. Mechanically derive the sequencing graph (Figure 3) and reduce it
    #    with Rules #1/#2 (§4.2).  Example #1 is feasible: all edges go.
    verdict = problem.feasibility()
    print(f"\nfeasible: {verdict.feasible}")
    print(verdict.explain())

    # 3. Recover the total order of transfers (§5).
    print("\nexecution sequence:")
    for line in problem.execution_sequence().describe():
        print(f"  {line}")

    # 4. Execute it on the discrete-event simulator and check safety: every
    #    party must end in one of its §2.3 acceptable states.
    result = simulate(problem)
    report = evaluate_safety(problem, result)
    print(f"\nsimulated in {result.duration:.0f} time units, "
          f"{result.stats.messages_delivered} messages")
    for line in report.describe():
        print(line)
    assert report.honest_parties_safe()
    print("\nall parties protected — the paper's §5 guarantee holds.")


if __name__ == "__main__":
    main()
