#!/usr/bin/env python3
"""The paper's §9 future-work list, implemented.

1. **Fully distributed feasibility** — each participant runs a local agent
   that sees only its own conjunction; edge-removal notifications propagate
   the fringe; the verdict matches the centralized reduction.
2. **Multi-party trusted agents** — a three-way document ring through one
   component, executed and attacked in the simulator.
3. **Hierarchy of trust** — intermediaries trusting intermediaries unlock
   principal pairs that share no direct escrow.

Run:  python examples/future_work_extensions.py
"""

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.mediation import hierarchy_study, mediated_problem
from repro.core.parties import broker, consumer, trusted
from repro.core.problem import ExchangeProblem
from repro.core.trust import TrustRelation
from repro.distributed import distributed_reduce
from repro.sim import evaluate_safety, simulate, withholder
from repro.workloads import example1, example2, resale_chain


def distributed_feasibility() -> None:
    print("=" * 72)
    print("1. Distributed reduction: local decisions, global verdict")
    print("=" * 72)
    for problem in (example1(), example2(), resale_chain(5, retail=100.0)):
        graph = problem.sequencing_graph()
        trace = distributed_reduce(graph)
        central = problem.feasibility().feasible
        print(
            f"  {problem.name:<18} distributed={str(trace.feasible):<5} "
            f"centralized={str(central):<5} rounds={trace.rounds:>2} "
            f"messages={trace.messages}"
        )
        assert trace.feasible == central
    print("  -> identical verdicts; messages bounded by edge count.")


def multiparty_ring() -> None:
    print("\n" + "=" * 72)
    print("2. A three-party ring through one trusted agent")
    print("=" * 72)
    graph = InteractionGraph()
    parties = [broker(f"Archive{i + 1}") for i in range(3)]
    for p in parties:
        graph.add_principal(p)
    clearing = graph.add_trusted(trusted("ClearingHouse"))
    # Three archives swap restoration scans in a cycle: each wants the
    # previous archive's scan.
    members = [(p, document(f"scan{i + 1}")) for i, p in enumerate(parties)]
    graph.add_multi_exchange(clearing, members)
    problem = ExchangeProblem("scan-ring", graph).validate(allow_multiparty=True)

    print("  execution:")
    for line in problem.execution_sequence().describe():
        print(f"    {line}")

    result = simulate(problem, adversaries={"Archive3": withholder(0)}, deadline=40.0)
    report = evaluate_safety(problem, result)
    print("  with Archive3 refusing to deposit:")
    for line in report.describe():
        print(f"    {line}")
    assert report.honest_parties_safe(frozenset({"Archive3"}))
    print("  -> deadline reversal returned every deposit; nobody honest harmed.")


def trust_hierarchy() -> None:
    print("\n" + "=" * 72)
    print("3. Hierarchy of trust: escrows vouching for escrows")
    print("=" * 72)
    buyer = consumer("Buyer")
    seller = broker("Seller")
    bank, notary = trusted("Bank"), trusted("Notary")
    # Buyer only trusts its bank; seller only trusts the notary; but the
    # bank trusts the notary — so the notary can carry the exchange.
    trust = TrustRelation.of([(buyer, bank), (bank, notary), (seller, notary)])
    problem, plan = mediated_problem(
        "hierarchy-sale", buyer, money(25), seller, document("deed"), trust,
        [bank, notary],
    )
    print(f"  planned intermediary: {plan.via.name} (via hierarchy: {plan.used_hierarchy})")
    assert problem.feasibility().feasible
    report = evaluate_safety(problem, simulate(problem))
    assert report.honest_parties_safe()
    print("  exchange feasible and simulated safely.")

    row = hierarchy_study(seed=0)
    print(
        f"\n  random-topology study ({row.n_principals} principals, "
        f"{row.n_intermediaries} intermediaries):"
    )
    print(
        f"    pairs transactable directly:        {row.pairs_direct}/{row.pairs_total}\n"
        f"    pairs transactable with hierarchy:  {row.pairs_hierarchical}/{row.pairs_total}\n"
        f"    unlocked by the hierarchy:          {row.unlocked_by_hierarchy}"
    )


def main() -> None:
    distributed_feasibility()
    multiparty_ring()
    trust_hierarchy()


if __name__ == "__main__":
    main()
