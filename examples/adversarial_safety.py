#!/usr/bin/env python3
"""Adversarial safety matrix: synthesized protocol vs naive vs 2PC.

For every single-party defection in Example #1, runs three protocols:

* the sequencing-graph protocol on the simulator (§5) — honest parties are
  always protected;
* the naive direct exchange (§1) — the first mover is robbed;
* two-phase commit (§7.1) — a committed cheat harms the performers.

Run:  python examples/adversarial_safety.py
"""

from repro.baselines.direct import direct_exchange
from repro.baselines.two_phase_commit import ParticipantBehavior, two_phase_commit
from repro.sim import evaluate_safety, simulate, withholder
from repro.workloads import example1

DEADLINE = 60.0


def protocol_matrix() -> None:
    problem = example1()
    print("synthesized protocol (trusted intermediaries + escrow):")
    print(f"  {'defector':<12} {'honest parties safe':>20} {'exchanges done':>15}")
    for cheat in ("Consumer", "Broker", "Producer"):
        result = simulate(problem, adversaries={cheat: withholder(0)}, deadline=DEADLINE)
        report = evaluate_safety(problem, result)
        safe = report.honest_parties_safe(frozenset({cheat}))
        print(f"  {cheat:<12} {str(safe):>20} {len(result.completed_agents):>15}")
        assert safe


def naive_matrix() -> None:
    print("\nnaive direct exchange (no intermediary):")
    cases = [
        ("seller keeps money", dict(seller_honest=False, buyer_pays_first=True)),
        ("buyer refuses to pay", dict(buyer_honest=False, buyer_pays_first=False)),
    ]
    for label, kwargs in cases:
        outcome = direct_exchange(**kwargs)
        victim = "buyer" if not outcome.buyer_ok else "seller"
        print(f"  {label:<24} -> {victim} harmed "
              f"(buyer_ok={outcome.buyer_ok}, seller_ok={outcome.seller_ok})")
        assert not outcome.all_ok


def tpc_matrix() -> None:
    print("\ntwo-phase commit (votes are not escrow):")
    problem = example1()
    for cheat in ("Consumer", "Broker", "Producer"):
        outcome = two_phase_commit(
            problem, {cheat: ParticipantBehavior(performs=False)}
        )
        harmed = sorted(p.name for p in outcome.harmed)
        print(f"  {cheat} votes COMMIT then reneges -> harmed: {harmed}")
        assert harmed, "a post-commit cheat always harms someone under 2PC"


def main() -> None:
    protocol_matrix()
    naive_matrix()
    tpc_matrix()
    print(
        "\nConclusion: only the trust-explicit protocol leaves every honest\n"
        "party in an acceptable state under every defection — the paper's\n"
        "core guarantee, checked mechanically."
    )


if __name__ == "__main__":
    main()
