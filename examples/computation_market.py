#!/usr/bin/env python3
"""Computation subcontracting: the paper's second motivating domain (§1, §2.1).

"A producer is a processor with idle resources; a consumer needs additional
computation power; and a broker might be a network manager capable of
matching them."  This example writes that market in the spec language, has
the network manager resell compute hours from two datacenters to a research
lab as an all-or-nothing batch, and exercises the whole pipeline — including
what happens when one datacenter tries to ship a bogus result and when the
manager needs indemnities to make the batch credible.

Run:  python examples/computation_market.py
"""

from repro.core.indemnity import minimal_indemnity_plan, splittable_conjunctions
from repro.sim import Simulation, evaluate_safety, simulate, wrong_item_sender
from repro.spec import load
from repro.viz import interaction_text

# The lab buys one 100-GPU-hour batch via the network manager, who buys the
# hours from a datacenter.  Escrow is handled by a compute exchange the lab
# and manager both use, and a settlement service the manager shares with the
# datacenter.  The manager resells: buyer committed before it spends.
SINGLE_BATCH = """
problem "compute-single-batch"

principal consumer Lab
principal broker   NetManager
principal producer Datacenter
trusted Exchange
trusted Settlement

exchange via Exchange {
    Lab        pays $500.00 tag batch-retail
    NetManager gives gpu-hours-100
}
exchange via Settlement {
    NetManager pays $400.00 tag batch-wholesale
    Datacenter gives gpu-hours-100
}

priority NetManager via Exchange
"""

# A two-site job: results from both datacenters or neither (intermediate
# results of a distributed computation are useless alone — the compute
# analogue of the paper's annotations-plus-documents bundle).
TWO_SITE_JOB = """
problem "compute-two-site-job"

principal consumer Lab
principal broker   ManagerEast
principal broker   ManagerWest
principal producer SiteEast
principal producer SiteWest
trusted ExchangeEast
trusted SettleEast
trusted ExchangeWest
trusted SettleWest

exchange via ExchangeEast {
    Lab         pays $300.00 tag east-retail
    ManagerEast gives shard-east
}
exchange via SettleEast {
    ManagerEast pays $240.00 tag east-wholesale
    SiteEast    gives shard-east
}
exchange via ExchangeWest {
    Lab         pays $200.00 tag west-retail
    ManagerWest gives shard-west
}
exchange via SettleWest {
    ManagerWest pays $160.00 tag west-wholesale
    SiteWest    gives shard-west
}

priority ManagerEast via ExchangeEast
priority ManagerWest via ExchangeWest
"""


def single_batch() -> None:
    print("=" * 72)
    print("Single batch: lab <- network manager <- datacenter")
    print("=" * 72)
    problem = load(SINGLE_BATCH)
    print("\n".join(interaction_text(problem.interaction)))
    assert problem.feasibility().feasible
    print("\nexecution sequence:")
    for line in problem.execution_sequence().describe():
        print(f"  {line}")

    # The datacenter ships garbage instead of the promised result: the
    # settlement service bounces it and nobody honest loses anything.
    result = simulate(
        problem,
        adversaries={"Datacenter": wrong_item_sender("gpu-hours-100", "garbage")},
        deadline=60.0,
    )
    report = evaluate_safety(problem, result)
    print("\nwith a cheating datacenter (bogus results):")
    for line in report.describe():
        print(f"  {line}")
    assert report.honest_parties_safe(frozenset({"Datacenter"}))


def two_site_job() -> None:
    print("\n" + "=" * 72)
    print("Two-site job: all-or-nothing shards from two managers")
    print("=" * 72)
    problem = load(TWO_SITE_JOB)
    verdict = problem.feasibility()
    print(f"feasible as specified: {verdict.feasible}")
    for blockage in verdict.blockages:
        print(f"  impasse: {blockage}")

    # Same standoff as the paper's Figure 2 — fixed by indemnities (§6).
    (bundle_owner,) = splittable_conjunctions(problem)
    plan = minimal_indemnity_plan(problem, bundle_owner)
    print("\nminimal indemnity plan:")
    for line in plan.describe():
        print(f"  {line}")

    sim = Simulation.from_plan(problem, plan, deadline=120.0)
    result = sim.run()
    report = evaluate_safety(problem, result)
    lab = next(p for p in problem.interaction.parties if p.name == "Lab")
    print(f"\ncompleted exchanges: {len(result.completed_agents)}/4")
    print(f"lab received: {sorted(result.final.documents_of(lab))}")
    assert report.honest_parties_safe()
    print("all parties protected.")


def main() -> None:
    single_batch()
    two_site_job()


if __name__ == "__main__":
    main()
