"""Unit tests for the asset ledger."""

import pytest

from repro.core.actions import give, pay
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.errors import SimulationError
from repro.sim.ledger import Ledger, endow_from_interaction
from repro.workloads import example1, resale_chain

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")


def _funded_ledger():
    ledger = Ledger()
    ledger.endow_money(C, 1000)
    ledger.endow_document(P, "d")
    ledger.seal()
    return ledger


class TestEndowment:
    def test_endow_and_query(self):
        ledger = _funded_ledger()
        assert ledger.balance(C) == 1000
        assert ledger.holder("d") == P
        assert ledger.documents_of(P) == frozenset({"d"})

    def test_endow_after_seal_rejected(self):
        ledger = _funded_ledger()
        with pytest.raises(SimulationError):
            ledger.endow_money(C, 1)
        with pytest.raises(SimulationError):
            ledger.endow_document(C, "e")

    def test_double_document_endowment_rejected(self):
        ledger = Ledger()
        ledger.endow_document(P, "d")
        with pytest.raises(SimulationError):
            ledger.endow_document(C, "d")

    def test_negative_endowment_rejected(self):
        with pytest.raises(SimulationError):
            Ledger().endow_money(C, -5)


class TestTransfers:
    def test_money_moves(self):
        ledger = _funded_ledger()
        ledger.apply(pay(C, T, money(5)))
        assert ledger.balance(C) == 500
        assert ledger.balance(T) == 500
        ledger.check()

    def test_document_moves(self):
        ledger = _funded_ledger()
        ledger.apply(give(P, T, D))
        assert ledger.holder("d") == T
        ledger.check()

    def test_inverse_restores(self):
        ledger = _funded_ledger()
        deposit = pay(C, T, money(5))
        ledger.apply(deposit)
        ledger.apply(deposit.inverse())
        assert ledger.balance(C) == 1000
        assert ledger.balance(T) == 0

    def test_overdraft_rejected(self):
        ledger = _funded_ledger()
        with pytest.raises(SimulationError, match="cannot pay"):
            ledger.apply(pay(C, T, money(50)))

    def test_giving_unheld_document_rejected(self):
        ledger = _funded_ledger()
        with pytest.raises(SimulationError, match="cannot give"):
            ledger.apply(give(C, T, D))

    def test_notify_moves_nothing(self):
        from repro.core.actions import notify

        ledger = _funded_ledger()
        ledger.apply(notify(T, C))
        assert ledger.balance(C) == 1000

    def test_can_transfer(self):
        ledger = _funded_ledger()
        assert ledger.can_transfer(C, money(10))
        assert not ledger.can_transfer(C, money(10.01))
        assert ledger.can_transfer(P, D)
        assert not ledger.can_transfer(C, D)


class TestSnapshotsAndInvariants:
    def test_snapshot_is_immutable_copy(self):
        ledger = _funded_ledger()
        snap = ledger.snapshot()
        ledger.apply(pay(C, T, money(5)))
        assert snap.balance(C) == 1000
        assert snap.documents_of(P) == frozenset({"d"})

    def test_check_detects_negative(self):
        ledger = _funded_ledger()
        ledger._balances[C] = -1  # simulate harness corruption
        ledger._balances[T] = 1001
        with pytest.raises(SimulationError, match="negative"):
            ledger.check()

    def test_check_detects_creation(self):
        ledger = _funded_ledger()
        ledger._balances[T] = 777
        with pytest.raises(SimulationError, match="not conserved"):
            ledger.check()


class TestEndowFromInteraction:
    def test_example1_endowments(self):
        problem = example1()
        ledger = Ledger()
        endow_from_interaction(ledger, problem.interaction)
        parties = {p.name: p for p in problem.interaction.parties}
        assert ledger.balance(parties["Consumer"]) == 1200
        assert ledger.balance(parties["Broker"]) == 1000
        assert ledger.balance(parties["Producer"]) == 0
        # Only the producer starts with the document; the broker resells.
        assert ledger.holder("d") == parties["Producer"]

    def test_chain_endowments_give_doc_to_producer_only(self):
        problem = resale_chain(3, retail=100.0)
        ledger = Ledger()
        endow_from_interaction(ledger, problem.interaction)
        parties = {p.name: p for p in problem.interaction.parties}
        assert ledger.holder("d") == parties["Producer"]

    def test_working_capital_and_extra(self):
        problem = example1()
        parties = {p.name: p for p in problem.interaction.parties}
        ledger = Ledger()
        endow_from_interaction(
            ledger,
            problem.interaction,
            working_capital_cents=50,
            extra_money={parties["Broker"]: 100},
        )
        assert ledger.balance(parties["Broker"]) == 1000 + 50 + 100
        assert ledger.balance(parties["Producer"]) == 50
