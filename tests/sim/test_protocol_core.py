"""Unit tests of the transport-agnostic protocol cores.

These exercise :mod:`repro.sim.protocol_core` directly — no network, no
event queue — because the cores' determinism contract (same observations
in, same effects out) is what both the simulator and the socket runtime's
WAL replay stand on.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.actions import Action, notify
from repro.core.items import Money
from repro.net import bootstrap
from repro.sim.protocol_core import (
    ArmDeadline,
    DisarmDeadline,
    NotifyEffect,
    PrincipalCore,
    SendEffect,
    TrustedCore,
)
from repro.workloads import example1, simple_purchase

DEADLINE = 60.0


def _roles(problem):
    protocol = bootstrap.derive_protocol(problem, DEADLINE)
    return {party.name: role for party, role in protocol.roles.items()}


def _trusted_spec(problem):
    protocol = bootstrap.derive_protocol(problem, DEADLINE)
    return next(iter(protocol.trusted_specs.values()))


def _collect(core: PrincipalCore, holds=lambda a: True) -> list[Action]:
    emitted: list[Action] = []
    core.drain(holds=holds, emit=emitted.append)
    return emitted


# ------------------------------------------------------------ principal core


def test_unguarded_instruction_fires_immediately():
    role = _roles(simple_purchase())["Customer"]
    core = PrincipalCore(role)
    emitted = _collect(core)
    assert len(emitted) == 1
    assert emitted[0].is_transfer
    assert core.exhausted
    assert _collect(core) == []  # never re-fires


def test_guarded_instruction_waits_for_preconditions():
    role = _roles(example1())["Broker"]
    core = PrincipalCore(role)
    assert _collect(core) == []  # both instructions guarded
    first = role.instructions[0]
    for precondition in first.preconditions:
        core.observe(precondition)
    emitted = _collect(core)
    assert emitted == [first.action]
    assert not core.exhausted  # the second instruction is still guarded


def test_observe_strips_deadline_stamp():
    role = _roles(example1())["Broker"]
    core = PrincipalCore(role)
    first = role.instructions[0]
    for precondition in first.preconditions:
        core.observe(replace(precondition, deadline=42.0))  # live §2.5 stamp
    assert _collect(core) == [first.action]


def test_holds_gate_blocks_without_advancing():
    role = _roles(simple_purchase())["Customer"]
    core = PrincipalCore(role)
    assert _collect(core, holds=lambda a: False) == []
    assert core.next_instruction == 0
    assert _collect(core) == [role.instructions[0].action]


def test_permits_hook_withholds():
    role = _roles(simple_purchase())["Customer"]
    core = PrincipalCore(role, permits=lambda position, action: False)
    assert _collect(core) == []
    assert not core.exhausted


def test_transform_none_skips_but_advances():
    role = _roles(simple_purchase())["Customer"]
    core = PrincipalCore(role, transform=lambda action: None)
    assert _collect(core) == []
    assert core.exhausted  # skipped silently, instruction consumed


def test_same_observations_same_emissions():
    role = _roles(example1())["Broker"]
    observations = [p for i in role.instructions for p in i.preconditions]
    runs = []
    for _ in range(2):
        core = PrincipalCore(role)
        emitted: list[Action] = []
        for observation in observations:
            core.observe(observation)
            core.drain(holds=lambda a: True, emit=emitted.append)
        runs.append(emitted)
    assert runs[0] == runs[1]
    assert runs[0]  # the sequence is non-trivial


# -------------------------------------------------------------- trusted core


def _deposit(spec, index: int) -> Action:
    principal, item = spec.deposits[index]
    from repro.core.actions import transfer

    return transfer(principal, spec.agent, item)


def test_first_deposit_arms_and_notifies_last_outstanding():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    effects = core.on_receive(_deposit(spec, 0))
    assert effects[0] == ArmDeadline(DEADLINE)
    assert isinstance(effects[1], NotifyEffect)
    assert effects[1].principal == spec.deposits[1][0]
    assert not core.completed


def test_completion_releases_goods_before_money():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    core.on_receive(_deposit(spec, 0))
    effects = core.on_receive(_deposit(spec, 1))
    assert effects[0] == ArmDeadline(DEADLINE)
    assert effects[1] == DisarmDeadline()
    releases = [e.action for e in effects[2:] if isinstance(e, SendEffect)]
    assert len(releases) == len(spec.entitlements)
    money_positions = [
        i for i, a in enumerate(releases) if isinstance(a.item, Money)
    ]
    document_positions = [
        i for i, a in enumerate(releases) if not isinstance(a.item, Money)
    ]
    assert all(d < m for d in document_positions for m in money_positions)
    assert core.completed and not core.reversed


def test_duplicate_and_late_deposits_bounce():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    first = _deposit(spec, 0)
    core.on_receive(first)
    effects = core.on_receive(first)  # duplicate
    assert effects == [SendEffect(first.inverse())]
    assert core.rejected == [first]


def test_notifies_carry_no_escrow_duty():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    principal = spec.deposits[0][0]
    assert core.on_receive(notify(spec.agent, principal)) == []
    assert not core.received


def test_deadline_reverses_every_deposit_once():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    deposit = _deposit(spec, 0)
    core.on_receive(deposit)
    effects = core.on_deadline()
    assert effects == [SendEffect(deposit.inverse())]
    assert core.reversed and not core.received
    assert core.on_deadline() == []  # idempotent
    late = _deposit(spec, 1)
    assert core.on_receive(late) == [SendEffect(late.inverse())]


def test_expiry_notice_carries_stamp():
    spec = _trusted_spec(simple_purchase())
    core = TrustedCore(spec)
    principal = spec.deposits[0][0]
    stamped = core.expiry_notice(principal, 42.0)
    assert stamped.deadline == 42.0
    assert core.expiry_notice(principal, None).deadline is None
