"""Unit tests for the safety monitor's acceptance criteria."""

from repro.sim import evaluate_safety, simulate, withholder
from repro.sim.safety import EdgeOutcome, SafetyReport
from repro.workloads import example1, star


class TestEdgeOutcome:
    def test_ok_when_nothing_given(self, ex1):
        edge = ex1.interaction.edges[0]
        assert EdgeOutcome(edge, gave_permanently=False, received_expected=False).ok

    def test_ok_when_received(self, ex1):
        edge = ex1.interaction.edges[0]
        assert EdgeOutcome(edge, gave_permanently=True, received_expected=True).ok

    def test_bad_when_gave_and_got_nothing(self, ex1):
        edge = ex1.interaction.edges[0]
        assert not EdgeOutcome(edge, gave_permanently=True, received_expected=False).ok


class TestReportShape:
    def test_every_party_gets_a_verdict(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        names = {v.party.name for v in report.verdicts}
        assert names == {"Consumer", "Broker", "Producer", "Trusted1", "Trusted2"}

    def test_verdict_of_lookup(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        assert report.verdict_of("Broker").money_delta_cents == 200

    def test_verdict_of_unknown_raises(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        try:
            report.verdict_of("Nobody")
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_describe_marks_ok(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        text = "\n".join(report.describe())
        assert "[OK ]" in text and "[BAD]" not in text

    def test_honest_parties_safe_excludes_adversary(self):
        problem = example1()
        result = simulate(problem, adversaries={"Broker": withholder(0)}, deadline=50.0)
        report = evaluate_safety(problem, result)
        # Even if the broker's own verdict were BAD, the honest check holds.
        assert report.honest_parties_safe(frozenset({"Broker"}))

    def test_trusted_neutrality_checked(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        for name in ("Trusted1", "Trusted2"):
            verdict = report.verdict_of(name)
            assert verdict.ok and verdict.money_delta_cents == 0

    def test_bundle_principal_flagged_in_report_type(self):
        # The producer in a star holds a bundle; honest run passes its gate.
        problem = star(3)
        report = evaluate_safety(problem, simulate(problem))
        assert isinstance(report, SafetyReport)
        assert report.verdict_of("Producer").ok
