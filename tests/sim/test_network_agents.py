"""Unit tests for the network transport and principal agents."""

import pytest

from repro.core.actions import give, notify, pay
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.core.protocol import PrincipalRole, SendInstruction
from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.network import Network

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")
M = money(10)


def _network(latency=1.0):
    queue = EventQueue()
    return queue, Network(queue, latency=latency)


def _drain(queue):
    while (event := queue.pop()) is not None:
        event.callback()


class TestNetwork:
    def test_delivery_after_latency(self):
        queue, network = _network(latency=3.0)
        received = []
        network.register(T, lambda a, key: received.append(a))
        network.send(pay(C, T, M))
        _drain(queue)
        assert received == [pay(C, T, M)]
        assert queue.now == 3.0

    def test_negative_latency_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            Network(queue, latency=-1.0)

    def test_unregistered_recipient_rejected(self):
        _, network = _network()
        with pytest.raises(SimulationError, match="no node registered"):
            network.send(pay(C, T, M))

    def test_double_registration_rejected(self):
        _, network = _network()
        network.register(T, lambda a, key: None)
        with pytest.raises(SimulationError, match="already registered"):
            network.register(T, lambda a, key: None)

    def test_inverted_transfer_routes_to_original_sender(self):
        queue, network = _network()
        received = []
        network.register(C, lambda a, key: received.append(a))
        network.register(T, lambda a, key: None)
        refund = pay(C, T, M).inverse()  # t returns money to c
        network.send(refund)
        _drain(queue)
        assert received == [refund]

    def test_stats_counters(self):
        queue, network = _network()
        network.register(T, lambda a, key: None)
        network.register(C, lambda a, key: None)
        network.send(pay(C, T, M))
        network.send(notify(T, C))
        _drain(queue)
        assert network.stats.messages_sent == 2
        assert network.stats.messages_delivered == 2
        assert network.stats.transfers == 1
        assert network.stats.notifies == 1
        assert network.stats.by_sender[C] == 1
        assert network.stats.by_sender[T] == 1

    def test_delivery_log_records_times(self):
        queue, network = _network(latency=2.0)
        network.register(T, lambda a, key: None)
        network.send(pay(C, T, M))
        _drain(queue)
        (delivery,) = network.log
        assert delivery.sent_at == 0.0
        assert delivery.delivered_at == 2.0


class FakeLedger:
    def __init__(self, allow=True):
        self.allow = allow

    def can_transfer(self, party, item):
        return self.allow


class FakeRuntime:
    def __init__(self, allow=True):
        self.ledger = FakeLedger(allow)
        self.queue = EventQueue()
        self.out = []

    def transmit(self, action):
        self.out.append(action)


class TestPrincipalAgent:
    def _role(self):
        first = SendInstruction(1, pay(C, T, M), frozenset())
        second = SendInstruction(3, give(C, trusted("t2"), D), frozenset({notify(T, C)}))
        return PrincipalRole(C, (first, second))

    def test_unguarded_instruction_fires_at_start(self):
        from repro.sim.agents import HonestPrincipal

        runtime = FakeRuntime()
        agent = HonestPrincipal(C, self._role(), runtime)
        agent.start()
        assert runtime.out == [pay(C, T, M)]

    def test_guarded_instruction_waits_for_observation(self):
        from repro.sim.agents import HonestPrincipal

        runtime = FakeRuntime()
        agent = HonestPrincipal(C, self._role(), runtime)
        agent.start()
        assert len(runtime.out) == 1
        agent.receive(notify(T, C))
        assert len(runtime.out) == 2

    def test_observation_with_deadline_still_matches_guard(self):
        from dataclasses import replace

        from repro.sim.agents import HonestPrincipal

        runtime = FakeRuntime()
        agent = HonestPrincipal(C, self._role(), runtime)
        agent.start()
        stamped = replace(notify(T, C), deadline=42.0)
        agent.receive(stamped)
        assert len(runtime.out) == 2

    def test_asset_gating_blocks_until_funds(self):
        from repro.sim.agents import HonestPrincipal

        runtime = FakeRuntime(allow=False)
        agent = HonestPrincipal(C, self._role(), runtime)
        agent.start()
        assert runtime.out == []
        runtime.ledger.allow = True
        agent.receive(give(P, C, document("irrelevant")))
        assert len(runtime.out) >= 1

    def test_withholder_stops_at_position(self):
        from repro.sim.agents import AdversarialPrincipal, withholder

        runtime = FakeRuntime()
        agent = AdversarialPrincipal(C, self._role(), runtime, withholder(1))
        agent.start()
        agent.receive(notify(T, C))
        assert runtime.out == [pay(C, T, M)]  # second instruction withheld

    def test_wrong_item_sender_substitutes(self):
        from repro.sim.agents import AdversarialPrincipal, wrong_item_sender

        runtime = FakeRuntime()
        strategy = wrong_item_sender("d", "junk")
        agent = AdversarialPrincipal(C, self._role(), runtime, strategy)
        agent.start()
        agent.receive(notify(T, C))
        assert runtime.out[1].item.label == "junk"

    def test_slow_party_defers_into_queue(self):
        from repro.sim.agents import AdversarialPrincipal, slow_party

        runtime = FakeRuntime()
        agent = AdversarialPrincipal(C, self._role(), runtime, slow_party(5.0))
        agent.start()
        assert runtime.out == []  # scheduled, not sent
        while (event := runtime.queue.pop()) is not None:
            event.callback()
        assert runtime.out == [pay(C, T, M)]
        assert runtime.queue.now == 5.0
