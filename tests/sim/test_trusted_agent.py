"""Direct unit tests for the TrustedAgent escrow machine (§2.5).

These drive the agent through a stub runtime, without the network or
principals, to pin down each behaviour: acceptance, rejection, notify,
release ordering, timeout reversal, and indemnity settlement.
"""

from repro.core.actions import ActionKind, give, pay
from repro.core.indemnity import IndemnityOffer
from repro.core.items import cents, document, money
from repro.core.parties import consumer, producer, trusted
from repro.core.protocol import TrustedExchangeSpec
from repro.sim.events import EventQueue
from repro.sim.trusted_agent import TrustedAgent

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")
M = money(10)


class StubRuntime:
    """Collects transmissions; owns a real event queue for timeouts."""

    def __init__(self):
        self.queue = EventQueue()
        self.out = []

    def transmit(self, action):
        self.out.append(action)

    def schedule_for(self, party, delay, callback, label=""):
        return self.queue.schedule(delay, callback, label)

    def fire_all(self):
        while (event := self.queue.pop()) is not None:
            event.callback()


def _spec(deadline=None, indemnities=()):
    return TrustedExchangeSpec(
        agent=T,
        deposits=((C, M), (P, D)),
        entitlements=((C, D), (P, M)),
        deadline=deadline,
        indemnities=indemnities,
    )


def _agent(deadline=None, indemnities=()):
    runtime = StubRuntime()
    agent = TrustedAgent(_spec(deadline, indemnities), runtime)
    return agent, runtime


class TestDeposits:
    def test_first_deposit_triggers_notify_to_other(self):
        agent, runtime = _agent()
        agent.receive(pay(C, T, M))
        assert len(runtime.out) == 1
        notice = runtime.out[0]
        assert notice.kind is ActionKind.NOTIFY
        assert notice.recipient == P

    def test_second_deposit_releases_goods_before_money(self):
        agent, runtime = _agent()
        agent.receive(pay(C, T, M))
        agent.receive(give(P, T, D))
        assert agent.completed
        releases = runtime.out[1:]
        assert [a.item.is_money for a in releases] == [False, True]
        assert releases[0].recipient == C and releases[1].recipient == P

    def test_duplicate_deposit_bounced(self):
        agent, runtime = _agent()
        first = pay(C, T, M)
        agent.receive(first)
        agent.receive(first)
        bounced = runtime.out[-1]
        assert bounced == first.inverse()
        assert agent.rejected == [first]

    def test_unknown_depositor_bounced(self):
        agent, runtime = _agent()
        stranger = consumer("stranger")
        stray = pay(stranger, T, M)
        agent.receive(stray)
        assert runtime.out == [stray.inverse()]

    def test_wrong_item_bounced(self):
        agent, runtime = _agent()
        bogus = give(P, T, document("junk"))
        agent.receive(bogus)
        assert runtime.out == [bogus.inverse()]
        assert not agent.received

    def test_deposit_after_completion_bounced(self):
        agent, runtime = _agent()
        agent.receive(pay(C, T, M))
        agent.receive(give(P, T, D))
        late = pay(C, T, M)
        agent.receive(late)
        assert runtime.out[-1] == late.inverse()

    def test_notify_sent_once_only(self):
        agent, runtime = _agent()
        agent.receive(pay(C, T, M))
        bogus = give(P, T, document("junk"))
        agent.receive(bogus)  # bounced; P still pending
        notifies = [a for a in runtime.out if a.kind is ActionKind.NOTIFY]
        assert len(notifies) == 1

    def test_inverted_and_notify_inputs_ignored(self):
        from repro.core.actions import notify as make_notify

        agent, runtime = _agent()
        agent.receive(pay(C, T, M).inverse())
        agent.receive(make_notify(trusted("other"), C))
        assert runtime.out == []


class TestTimeout:
    def test_timeout_reverses_held_deposits(self):
        agent, runtime = _agent(deadline=5.0)
        deposit = pay(C, T, M)
        agent.receive(deposit)
        runtime.fire_all()
        assert agent.reversed
        assert deposit.inverse() in runtime.out

    def test_completion_cancels_timeout(self):
        agent, runtime = _agent(deadline=5.0)
        agent.receive(pay(C, T, M))
        agent.receive(give(P, T, D))
        runtime.fire_all()
        assert agent.completed and not agent.reversed

    def test_deposit_after_reversal_bounced(self):
        agent, runtime = _agent(deadline=5.0)
        agent.receive(pay(C, T, M))
        runtime.fire_all()
        late = give(P, T, D)
        agent.receive(late)
        assert runtime.out[-1] == late.inverse()

    def test_no_deadline_never_reverses(self):
        agent, runtime = _agent(deadline=None)
        agent.receive(pay(C, T, M))
        runtime.fire_all()
        assert not agent.reversed

    def test_notify_expiry_equals_timeout_time(self):
        agent, runtime = _agent(deadline=5.0)
        agent.receive(pay(C, T, M))
        notice = runtime.out[0]
        assert notice.deadline == 5.0  # queue starts at t=0


class TestPartialDeposits:
    """Deadline-expiry reversal and settlement with three depositors.

    The two-party cases above never exercise the reversal loop over
    *several* held deposits, nor forfeit settlement when the beneficiary is
    one of many performers — exactly the partial-deposit interleavings the
    chaos harness generates."""

    B = consumer("b")
    D2 = document("d2")

    def _spec3(self, deadline=5.0, indemnities=()):
        return TrustedExchangeSpec(
            agent=T,
            deposits=((C, M), (self.B, money(20)), (P, D)),
            entitlements=((C, D), (P, M), (P, money(20))),
            deadline=deadline,
            indemnities=indemnities,
        )

    def _agent3(self, deadline=5.0, indemnities=()):
        runtime = StubRuntime()
        agent = TrustedAgent(self._spec3(deadline, indemnities), runtime)
        return agent, runtime

    def test_timeout_reverses_every_held_deposit(self):
        agent, runtime = self._agent3()
        first = pay(C, T, M)
        second = pay(self.B, T, money(20))
        agent.receive(first)
        agent.receive(second)  # P never ships: two of three deposits held
        runtime.fire_all()
        assert agent.reversed and not agent.completed
        assert first.inverse() in runtime.out
        assert second.inverse() in runtime.out
        assert agent.received == {}

    def test_partial_deposit_does_not_notify_until_one_outstanding(self):
        agent, runtime = self._agent3()
        agent.receive(pay(C, T, M))
        notifies = [a for a in runtime.out if a.kind is ActionKind.NOTIFY]
        assert notifies == []  # two still pending: nobody is "last"
        agent.receive(pay(self.B, T, money(20)))
        notifies = [a for a in runtime.out if a.kind is ActionKind.NOTIFY]
        assert len(notifies) == 1 and notifies[0].recipient == P

    def test_forfeit_under_partial_deposits(self):
        from repro.core.indemnity import IndemnityOffer
        from repro.core.interaction import InteractionEdge

        offer = IndemnityOffer(
            offeror=P,
            beneficiary=C,
            via=T,
            covers=InteractionEdge(C, T, M),
            amount_cents=500,
        )
        agent, runtime = self._agent3(indemnities=(offer,))
        escrow = pay(P, T, cents(500, tag="indemnity-x"))
        agent.receive(escrow)
        agent.receive(pay(C, T, M))            # beneficiary performs
        agent.receive(pay(self.B, T, money(20)))  # bystander performs too
        runtime.fire_all()                     # offeror P never ships
        forfeits = [
            a for a in runtime.out
            if a.is_transfer and not a.inverted and a.recipient == C
            and "indemnity" in a.item.label
        ]
        assert len(forfeits) == 1
        # The bystander's deposit is reversed, not forfeited to anyone.
        assert pay(self.B, T, money(20)).inverse() in runtime.out

    def test_refund_when_beneficiary_among_absentees(self):
        from repro.core.indemnity import IndemnityOffer
        from repro.core.interaction import InteractionEdge

        offer = IndemnityOffer(
            offeror=P,
            beneficiary=C,
            via=T,
            covers=InteractionEdge(C, T, M),
            amount_cents=500,
        )
        agent, runtime = self._agent3(indemnities=(offer,))
        escrow = pay(P, T, cents(500, tag="indemnity-x"))
        agent.receive(escrow)
        agent.receive(pay(self.B, T, money(20)))  # only the bystander performs
        runtime.fire_all()
        assert escrow.inverse() in runtime.out  # refunded, not forfeited


class TestDuplicateSuppression:
    def test_same_envelope_key_suppressed_not_bounced(self):
        agent, runtime = _agent()
        deposit = pay(C, T, M)
        agent.receive(deposit, key=7)
        agent.receive(deposit, key=7)  # transport re-delivered the same copy
        assert agent.rejected == []
        bounces = [a for a in runtime.out if a.inverted]
        assert bounces == []

    def test_distinct_keys_still_bounce_true_overdeposit(self):
        agent, runtime = _agent()
        deposit = pay(C, T, M)
        agent.receive(deposit, key=7)
        agent.receive(deposit, key=8)  # a genuinely new send: over-deposit
        assert agent.rejected == [deposit]
        assert runtime.out[-1] == deposit.inverse()


class TestIndemnities:
    def _offer(self):
        graph_edge = None
        # A synthetic edge object is unnecessary: offers only use parties
        # and the amount inside the agent.
        from repro.core.interaction import InteractionEdge

        graph_edge = InteractionEdge(C, T, M)
        return IndemnityOffer(
            offeror=P, beneficiary=C, via=T, covers=graph_edge, amount_cents=500
        )

    def _escrow_action(self, offer):
        return pay(P, T, cents(offer.amount_cents, tag=f"indemnity-{offer.covers.label}"))

    def test_escrow_recognized_not_treated_as_deposit(self):
        offer = self._offer()
        agent, runtime = _agent(deadline=5.0, indemnities=(offer,))
        agent.receive(self._escrow_action(offer))
        assert P in agent.escrows
        assert P not in agent.received
        assert runtime.out == []  # no bounce, no notify

    def test_escrow_refunded_on_completion(self):
        offer = self._offer()
        agent, runtime = _agent(deadline=50.0, indemnities=(offer,))
        escrow = self._escrow_action(offer)
        agent.receive(escrow)
        agent.receive(pay(C, T, M))
        agent.receive(give(P, T, D))
        assert escrow.inverse() in runtime.out

    def test_escrow_forfeited_when_beneficiary_performed(self):
        offer = self._offer()
        agent, runtime = _agent(deadline=5.0, indemnities=(offer,))
        agent.receive(self._escrow_action(offer))
        agent.receive(pay(C, T, M))  # beneficiary performs; offeror never does
        runtime.fire_all()
        forfeits = [
            a
            for a in runtime.out
            if a.is_transfer
            and not a.inverted
            and a.sender == T
            and a.recipient == C
            and "indemnity" in a.item.label
        ]
        assert len(forfeits) == 1

    def test_escrow_refunded_when_beneficiary_idle(self):
        offer = self._offer()
        agent, runtime = _agent(deadline=5.0, indemnities=(offer,))
        escrow = self._escrow_action(offer)
        agent.receive(escrow)
        # Nobody deposits; timeout fires only if armed — escrows alone do
        # not arm it, so force one deposit from the offeror side.
        agent.receive(give(P, T, D))
        runtime.fire_all()
        assert escrow.inverse() in runtime.out
