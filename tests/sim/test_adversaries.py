"""Adversarial simulations: the protocol's safety claim under defection.

The paper's core promise: following the recovered execution sequence, "the
interests of all parties will be protected" — whatever a deviating
participant does, every honest party ends in one of its acceptable states.
"""

import pytest

from repro.core.indemnity import plan_indemnities
from repro.sim import (
    Simulation,
    evaluate_safety,
    simulate,
    withholder,
    wrong_item_sender,
)
from repro.workloads import example1, example2, resale_chain, simple_purchase

DEADLINE = 60.0


def _run(problem, adversaries):
    return simulate(problem, adversaries=adversaries, deadline=DEADLINE)


class TestWithholdersExample1:
    @pytest.mark.parametrize("cheat", ["Consumer", "Broker", "Producer"])
    def test_total_noshow_harms_no_honest_party(self, cheat):
        problem = example1()
        result = _run(problem, {cheat: withholder(0)})
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({cheat})), report.describe()

    @pytest.mark.parametrize("cheat", ["Consumer", "Broker", "Producer"])
    def test_noshow_leaves_everyone_at_status_quo(self, cheat):
        problem = example1()
        result = _run(problem, {cheat: withholder(0)})
        for party in problem.interaction.parties:
            assert result.money_delta(party) == 0, party.name
        assert result.completed_agents == frozenset()

    def test_broker_reneging_midway_harms_nobody_honest(self):
        # Broker pays Trusted2 (first instruction) but never delivers to
        # Trusted1: deadline reversal refunds the consumer and... the broker
        # itself got the document it paid for, so Trusted2's exchange stands.
        problem = example1()
        result = _run(problem, {"Broker": withholder(1)})
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Broker"}))

    def test_partial_renege_consumer_refunded(self):
        problem = example1()
        result = _run(problem, {"Broker": withholder(1)})
        consumer = next(p for p in problem.interaction.parties if p.name == "Consumer")
        assert result.money_delta(consumer) == 0


class TestWrongItem:
    def test_bogus_document_rejected_and_harmless(self):
        problem = example1()
        result = _run(problem, {"Producer": wrong_item_sender("d")})
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Producer"}))
        # The bogus document bounced back to the producer.
        producer = next(p for p in problem.interaction.parties if p.name == "Producer")
        assert "bogus" in result.final.documents_of(producer)

    def test_exchange_does_not_complete_with_bogus_goods(self):
        problem = example1()
        result = _run(problem, {"Producer": wrong_item_sender("d")})
        trusted2 = next(p for p in problem.interaction.parties if p.name == "Trusted2")
        assert trusted2 not in result.completed_agents

    def test_simple_purchase_bogus_seller(self):
        problem = simple_purchase()
        result = _run(problem, {"Producer": wrong_item_sender("d")})
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Producer"}))


class TestChainsUnderAttack:
    @pytest.mark.parametrize("cheat", ["Consumer", "Broker1", "Broker2", "Producer"])
    def test_any_single_defector_harms_no_honest_party(self, cheat):
        problem = resale_chain(2, retail=100.0)
        result = _run(problem, {cheat: withholder(0)})
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({cheat})), report.describe()

    def test_two_simultaneous_defectors(self):
        problem = resale_chain(3, retail=100.0)
        cheats = {"Broker1": withholder(0), "Broker3": withholder(0)}
        result = _run(problem, cheats)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset(cheats))


class TestIndemnityForfeit:
    def test_broker1_reneges_consumer_compensated(self):
        # §6's raison d'être: Broker1 escrows $22 then never delivers d1.
        # The consumer buys d2 anyway and is made whole by the forfeit.
        problem = example2()
        cover = problem.interaction.find_edge("Consumer", "Trusted1")
        plan = plan_indemnities(problem, [cover])
        sim = Simulation.from_plan(
            problem, plan, adversaries={"Broker1": withholder(1)}, deadline=DEADLINE
        )
        result = sim.run()
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Broker1"})), report.describe()
        consumer = next(p for p in problem.interaction.parties if p.name == "Consumer")
        verdict = report.verdict_of("Consumer")
        assert verdict.forfeits_received_cents == 2200
        assert result.money_delta(consumer) == 0  # d2 outlay offset by forfeit
        assert result.final.documents_of(consumer) == frozenset({"d2"})

    def test_cheating_broker_pays_for_it(self):
        problem = example2()
        cover = problem.interaction.find_edge("Consumer", "Trusted1")
        plan = plan_indemnities(problem, [cover])
        sim = Simulation.from_plan(
            problem, plan, adversaries={"Broker1": withholder(1)}, deadline=DEADLINE
        )
        result = sim.run()
        broker1 = next(p for p in problem.interaction.parties if p.name == "Broker1")
        assert result.money_delta(broker1) == -2200  # escrow forfeited

    def test_honest_run_refunds_escrow(self):
        problem = example2()
        cover = problem.interaction.find_edge("Consumer", "Trusted1")
        plan = plan_indemnities(problem, [cover])
        result = Simulation.from_plan(problem, plan, deadline=DEADLINE).run()
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe()
        assert report.verdict_of("Consumer").forfeits_received_cents == 0


class TestAdversaryStrategyObjects:
    def test_describe(self):
        assert "first 0" in withholder(0).describe()
        strategy = wrong_item_sender("d", "junk")
        assert "substitutes" in strategy.describe()
