"""Tests for the fault-injection layer: plans, unreliable transport, and
full simulations under chaos."""

import pickle

import pytest

from repro.core.actions import give, pay
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.errors import FaultInjectionError, SimulationError
from repro.sim.events import EventQueue
from repro.sim.faults import (
    FaultConfig,
    FaultPlan,
    LinkFault,
    PartyFault,
    RetryPolicy,
    random_fault_plan,
)
from repro.sim.ledger import WIRE, Ledger
from repro.sim.network import Network
from repro.sim.runtime import Simulation
from repro.sim.safety import evaluate_safety
from repro.workloads import example1

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")
M = money(10)


class TestFaultPlan:
    def test_validate_rejects_bad_probability(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(links=(LinkFault(drop=1.5),)).validate()

    def test_validate_rejects_restart_before_crash(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(parties=(PartyFault("c", 5.0, 3.0),)).validate()

    def test_validate_rejects_partition_past_heal(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(
                links=(LinkFault(partitions=((0.0, 40.0),)),), heal_at=30.0
            ).validate()

    def test_validate_rejects_duplicate_party_fault(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(
                parties=(PartyFault("c", 1.0, 2.0), PartyFault("c", 5.0))
            ).validate()

    def test_crashed_windows(self):
        fault = PartyFault("c", 2.0, 5.0)
        assert not fault.crashed(1.0)
        assert fault.crashed(2.0)
        assert fault.crashed(4.9)
        assert not fault.crashed(5.0)
        assert PartyFault("c", 2.0).crashed(1e9)  # permanent

    def test_digest_stable_and_sensitive(self):
        plan = random_fault_plan(["a", "b"], seed=3)
        assert plan.digest() == random_fault_plan(["a", "b"], seed=3).digest()
        assert plan.digest() != random_fault_plan(["a", "b"], seed=4).digest()

    def test_plan_is_picklable(self):
        plan = random_fault_plan(["a", "b"], ["t"], seed=9)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_random_plan_never_silences_trusted(self):
        for seed in range(200):
            plan = random_fault_plan(
                ["a"], ["t1", "t2"], seed=seed,
                config=FaultConfig(crash_probability=1.0,
                                   permanent_silence_probability=1.0),
            )
            for name in plan.permanently_silent():
                assert name == "a"

    def test_retry_policy_caps(self):
        policy = RetryPolicy(base_timeout=4.0, backoff=2.0, max_timeout=16.0)
        assert [policy.timeout_for(i) for i in (1, 2, 3, 4, 5)] == [
            4.0, 8.0, 16.0, 16.0, 16.0
        ]


def _drain(queue):
    while (event := queue.pop()) is not None:
        event.callback()


def _faulty_network(plan, latency=1.0):
    queue = EventQueue()
    network = Network(queue, latency=latency, fault_plan=plan)
    return queue, network


class TestUnreliableTransport:
    def test_drop_all_never_delivers(self):
        plan = FaultPlan(seed=1, links=(LinkFault(drop=1.0),))
        queue, network = _faulty_network(plan)
        received = []
        network.register(T, lambda a, key: received.append(a))
        envelope = network.send(pay(C, T, M))
        _drain(queue)
        assert received == []
        assert not envelope.delivered
        assert network.stats.dropped == 1

    def test_retransmit_after_heal_delivers(self):
        plan = FaultPlan(seed=1, links=(LinkFault(drop=1.0),), heal_at=5.0)
        queue, network = _faulty_network(plan)
        received = []
        network.register(T, lambda a, key: received.append(a))
        envelope = network.send(pay(C, T, M))
        _drain(queue)
        assert received == []
        queue.schedule_at(6.0, lambda: network.retransmit(envelope.key))
        _drain(queue)
        assert received == [pay(C, T, M)]
        assert envelope.delivered and envelope.attempts == 2

    def test_duplicate_delivers_same_key_twice(self):
        plan = FaultPlan(seed=1, links=(LinkFault(duplicate=1.0),))
        queue, network = _faulty_network(plan)
        keys = []
        network.register(T, lambda a, key: keys.append(key))
        network.send(pay(C, T, M))
        _drain(queue)
        assert len(keys) == 2 and keys[0] == keys[1]
        assert network.stats.messages_delivered == 1
        assert network.stats.duplicate_deliveries == 1
        assert len(network.log) == 1  # the log records the message once

    def test_partition_drops_everything_in_window(self):
        plan = FaultPlan(
            seed=1, links=(LinkFault(partitions=((0.0, 10.0),)),), heal_at=20.0
        )
        queue, network = _faulty_network(plan)
        received = []
        network.register(T, lambda a, key: received.append(a))
        network.send(pay(C, T, M))
        _drain(queue)
        assert received == [] and network.stats.dropped == 1

    def test_crashed_recipient_mailbox_replayed_at_restart(self):
        plan = FaultPlan(seed=1, parties=(PartyFault("t", 0.0, 10.0),))
        queue, network = _faulty_network(plan)
        arrivals = []
        network.register(T, lambda a, key: arrivals.append(queue.now))
        envelope = network.send(pay(C, T, M))
        _drain(queue)
        # Delivered (asset landed) at t=1 but handled only at restart.
        assert envelope.delivered and envelope.delivered_at == 1.0
        assert arrivals == [10.0]
        assert network.stats.deferred == 1

    def test_permanently_silent_recipient_never_handles(self):
        plan = FaultPlan(seed=1, parties=(PartyFault("t", 0.0),))
        queue, network = _faulty_network(plan)
        arrivals = []
        network.register(T, lambda a, key: arrivals.append(a))
        envelope = network.send(pay(C, T, M))
        _drain(queue)
        assert envelope.delivered  # the host took it; the process is gone
        assert arrivals == []

    def test_abandon_invokes_custody_return_and_blocks_late_copies(self):
        plan = FaultPlan(seed=1, links=(LinkFault(max_delay=5.0),))
        queue, network = _faulty_network(plan)
        returned = []
        network.custody_return_hook = lambda env: returned.append(env.key)
        received = []
        network.register(T, lambda a, key: received.append(a))
        envelope = network.send(pay(C, T, M))
        assert network.abandon(envelope.key)
        _drain(queue)  # the already-scheduled copy must not deliver
        assert received == [] and returned == [envelope.key]
        assert not network.abandon(envelope.key)  # idempotent

    def test_schedule_for_defers_across_crash_window(self):
        plan = FaultPlan(seed=1, parties=(PartyFault("c", 2.0, 8.0),))
        queue, network = _faulty_network(plan)
        network.register(C, lambda a, key: None)
        fired = []
        network.schedule_for(C, 3.0, lambda: fired.append(queue.now))
        _drain(queue)
        assert fired == [8.0]  # due at 3.0 inside the crash, runs at restart

    def test_schedule_for_dies_with_permanently_silent_party(self):
        plan = FaultPlan(seed=1, parties=(PartyFault("c", 2.0),))
        queue, network = _faulty_network(plan)
        network.register(C, lambda a, key: None)
        fired = []
        network.schedule_for(C, 3.0, lambda: fired.append(queue.now))
        _drain(queue)
        assert fired == []

    def test_schedule_for_cancel(self):
        queue, network = _faulty_network(FaultPlan(seed=1))
        fired = []
        handle = network.schedule_for(C, 3.0, lambda: fired.append(1))
        handle.cancel()
        _drain(queue)
        assert fired == []

    def test_resolve_stranded_abandons_in_flight(self):
        plan = FaultPlan(seed=1, links=(LinkFault(drop=1.0),))
        queue, network = _faulty_network(plan)
        network.register(T, lambda a, key: None)
        network.send(pay(C, T, M))
        _drain(queue)
        stranded = network.resolve_stranded()
        assert len(stranded) == 1 and network.in_flight == []

    def test_reliable_network_rejects_two_arg_only_behaviour(self):
        # Sanity: the reliable path still refuses unknown recipients.
        queue = EventQueue()
        network = Network(queue)
        with pytest.raises(SimulationError):
            network.send(pay(C, T, M))


class TestWireCustody:
    def _ledger(self):
        ledger = Ledger()
        ledger.endow_money(C, 1000)
        ledger.endow_document(P, "d")
        ledger.seal()
        return ledger

    def test_hold_then_release_moves_via_wire(self):
        ledger = self._ledger()
        action = pay(C, T, M)
        ledger.hold_in_transit(action)
        assert ledger.balance(C) == 0 and ledger.balance(WIRE) == 1000
        ledger.check()
        ledger.release_from_transit(action)
        assert ledger.balance(T) == 1000 and ledger.balance(WIRE) == 0
        ledger.check()

    def test_hold_then_return_restores_sender(self):
        ledger = self._ledger()
        action = give(P, T, document("d"))
        ledger.hold_in_transit(action)
        assert ledger.holder("d") == WIRE
        ledger.return_from_transit(action)
        assert ledger.holder("d") == P
        ledger.check()

    def test_in_transit_reports_holdings(self):
        ledger = self._ledger()
        ledger.hold_in_transit(pay(C, T, M))
        cash, docs = ledger.in_transit()
        assert cash == 1000 and docs == frozenset()


class TestSimulationUnderFaults:
    def _plan(self, seed=5, **kwargs):
        defaults = dict(
            links=(LinkFault(drop=0.3, duplicate=0.2, max_delay=2.0),),
            heal_at=30.0,
        )
        defaults.update(kwargs)
        return FaultPlan(seed=seed, **defaults)

    def test_feasible_run_completes_and_stays_safe(self):
        problem = example1()
        sim = Simulation.from_problem(
            problem, deadline=200.0, fault_plan=self._plan()
        )
        result = sim.run(max_time=5000.0)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe()
        assert result.quiescent and result.stranded_messages == 0
        assert result.final.balance(WIRE) == 0
        assert result.final.documents_of(WIRE) == frozenset()

    def test_identical_plans_reproduce_identical_runs(self):
        outcomes = []
        for _ in range(2):
            problem = example1()
            sim = Simulation.from_problem(
                problem, deadline=200.0, fault_plan=self._plan(seed=17)
            )
            result = sim.run(max_time=5000.0)
            outcomes.append(
                (result.duration, result.delivered, result.stats.retransmits)
            )
        assert outcomes[0] == outcomes[1]

    def test_provenance_recorded(self):
        problem = example1()
        plan = self._plan(seed=23)
        sim = Simulation.from_problem(
            problem, deadline=200.0, fault_plan=plan, seed=99
        )
        result = sim.run(max_time=5000.0)
        assert result.provenance.fault_seed == 23
        assert result.provenance.fault_digest == plan.digest()
        assert result.provenance.seed == 99
        assert result.provenance.deadline == 200.0

    def test_reliable_run_has_reliable_provenance(self):
        result = Simulation.from_problem(example1(), deadline=100.0).run()
        assert result.provenance.fault_seed is None
        assert result.provenance.fault_digest is None
        assert result.quiescent

    def test_plan_targeting_unknown_party_rejected(self):
        plan = FaultPlan(seed=1, parties=(PartyFault("nobody", 1.0, 2.0),))
        with pytest.raises(FaultInjectionError, match="unknown party"):
            Simulation.from_problem(example1(), deadline=100.0, fault_plan=plan)

    def test_plan_silencing_trusted_component_rejected(self):
        problem = example1()
        victim = next(iter(problem.interaction.trusted_components)).name
        plan = FaultPlan(seed=1, parties=(PartyFault(victim, 1.0),))
        with pytest.raises(FaultInjectionError, match="permanently"):
            Simulation.from_problem(problem, deadline=100.0, fault_plan=plan)

    def test_crash_restart_trusted_component_still_safe(self):
        problem = example1()
        victim = next(iter(sorted(
            problem.interaction.trusted_components, key=lambda p: p.name
        ))).name
        plan = FaultPlan(
            seed=3,
            links=(LinkFault(drop=0.2, max_delay=1.0),),
            parties=(PartyFault(victim, 2.0, 12.0),),
            heal_at=30.0,
        )
        sim = Simulation.from_problem(problem, deadline=200.0, fault_plan=plan)
        result = sim.run(max_time=5000.0)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe()

    def test_permanently_silent_principal_cannot_harm_others(self):
        problem = example1()
        victim = sorted(problem.interaction.principals, key=lambda p: p.name)[0]
        plan = FaultPlan(
            seed=3,
            links=(LinkFault(drop=0.2, max_delay=1.0),),
            parties=(PartyFault(victim.name, 0.5),),
            heal_at=30.0,
        )
        sim = Simulation.from_problem(problem, deadline=60.0, fault_plan=plan)
        result = sim.run(max_time=5000.0)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({victim.name}))
        # Conduits stay clean even though the run was cut short.
        for component in problem.interaction.trusted_components:
            assert report.verdict_of(component.name).ok
