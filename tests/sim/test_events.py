"""Unit tests for the simulator event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_on_pop(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        assert queue.now == 0.0
        queue.pop()
        assert queue.now == 5.0

    def test_schedule_relative_to_now(self):
        queue = EventQueue()
        times = []
        queue.schedule(2.0, lambda: queue.schedule(2.0, lambda: times.append(queue.now)))
        while (event := queue.pop()) is not None:
            event.callback()
        assert times == [4.0]

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        queue.schedule_at(7.5, lambda: None)
        event = queue.pop()
        assert event is not None and event.time == 7.5

    def test_schedule_into_past_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(-1.0, lambda: None)
        queue.schedule(5.0, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule_at(1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("x"))
        queue.schedule(2.0, lambda: fired.append("y"))
        event.cancel()
        while (live := queue.pop()) is not None:
            live.callback()
        assert fired == ["y"]

    def test_len_and_empty(self):
        queue = EventQueue()
        assert queue.empty
        event = queue.schedule(1.0, lambda: None)
        assert len(queue) == 1
        event.cancel()
        assert queue.empty
