"""Integration tests: honest simulations of synthesized protocols."""

import pytest

from repro.core.indemnity import plan_indemnities
from repro.errors import SimulationError
from repro.sim import Simulation, evaluate_safety, simulate
from repro.workloads import example1, example2, figure7, resale_chain, simple_purchase


def _party(problem, name):
    return next(p for p in problem.interaction.parties if p.name == name)


class TestHonestExample1:
    def test_both_exchanges_complete(self):
        problem = example1()
        result = simulate(problem)
        assert {p.name for p in result.completed_agents} == {"Trusted1", "Trusted2"}
        assert result.reversed_agents == frozenset()

    def test_final_ownership(self):
        problem = example1()
        result = simulate(problem)
        consumer = _party(problem, "Consumer")
        assert result.final.documents_of(consumer) == frozenset({"d"})

    def test_money_flows(self):
        problem = example1()
        result = simulate(problem)
        assert result.money_delta(_party(problem, "Consumer")) == -1200
        assert result.money_delta(_party(problem, "Broker")) == 200  # margin
        assert result.money_delta(_party(problem, "Producer")) == 1000
        for name in ("Trusted1", "Trusted2"):
            assert result.money_delta(_party(problem, name)) == 0

    def test_message_count_is_ten(self):
        # 8 transfers + 2 notifies, matching the §5 listing exactly.
        result = simulate(example1())
        assert result.stats.messages_delivered == 10
        assert result.stats.transfers == 8
        assert result.stats.notifies == 2

    def test_safety_report_all_ok(self):
        problem = example1()
        report = evaluate_safety(problem, simulate(problem))
        assert report.honest_parties_safe()
        assert all(v.ok for v in report.verdicts)

    def test_deterministic(self):
        r1 = simulate(example1())
        r2 = simulate(example1())
        assert [str(a) for a in r1.delivered] == [str(a) for a in r2.delivered]
        assert r1.duration == r2.duration


class TestHonestOtherTopologies:
    def test_simple_purchase(self):
        problem = simple_purchase()
        result = simulate(problem)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe()
        assert len(result.completed_agents) == 1

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_chains_complete(self, n):
        problem = resale_chain(n, retail=100.0)
        result = simulate(problem)
        assert len(result.completed_agents) == n + 1
        consumer = _party(problem, "Consumer")
        assert result.final.documents_of(consumer) == frozenset({"d"})
        assert evaluate_safety(problem, result).honest_parties_safe()

    def test_latency_scales_duration(self):
        fast = simulate(example1(), latency=1.0)
        slow = simulate(example1(), latency=2.0)
        assert slow.duration == 2 * fast.duration


class TestIndemnitySimulations:
    def _plan(self, problem, via_name="Trusted1"):
        cover = next(
            e
            for e in problem.interaction.edges
            if e.principal.name == "Consumer" and e.trusted.name == via_name
        )
        return plan_indemnities(problem, [cover])

    def test_example2_completes_with_plan(self):
        problem = example2()
        plan = self._plan(problem)
        result = Simulation.from_plan(problem, plan, deadline=100.0).run()
        assert len(result.completed_agents) == 4
        consumer = _party(problem, "Consumer")
        assert result.final.documents_of(consumer) == frozenset({"d1", "d2"})
        assert evaluate_safety(problem, result).honest_parties_safe()

    def test_escrow_refunded_on_success(self):
        problem = example2()
        plan = self._plan(problem)
        result = Simulation.from_plan(problem, plan, deadline=100.0).run()
        broker1 = _party(problem, "Broker1")
        # Broker1 nets its margin; the $22 escrow came back.
        assert result.money_delta(broker1) == 200

    def test_figure7_greedy_plan_completes(self):
        from repro.core.indemnity import minimal_indemnity_plan

        problem = figure7()
        plan = minimal_indemnity_plan(problem)
        result = Simulation.from_plan(problem, plan, deadline=200.0).run()
        assert len(result.completed_agents) == 6
        consumer = _party(problem, "Consumer")
        assert result.final.documents_of(consumer) == frozenset({"d1", "d2", "d3"})
        assert evaluate_safety(problem, result).honest_parties_safe()


class TestRuntimeGuards:
    def test_max_time_enforced(self):
        sim = Simulation.from_problem(example1())
        with pytest.raises(SimulationError, match="max_time"):
            sim.run(max_time=0.5)

    def test_conservation_holds_throughout(self):
        # seal() totals vs final totals — the ledger checks after every hop,
        # so simply completing the run certifies conservation.
        result = simulate(example1())
        initial_total = sum(result.initial.balances.values())
        final_total = sum(result.final.balances.values())
        assert initial_total == final_total

    def test_global_state_contains_all_transfers(self):
        result = simulate(example1())
        assert len(result.global_state.transfers()) == 8
