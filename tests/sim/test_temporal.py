"""Temporal semantics: deadlines, notification expiry, late arrivals (§2.2/§2.5)."""

from repro.core.actions import ActionKind
from repro.sim import evaluate_safety, simulate, slow_party
from repro.spec import load
from repro.workloads import example1, simple_purchase


class TestNotificationExpiry:
    def test_notify_carries_expiry(self):
        # First deposit lands at t=1; with deadline 20 the exchange reverses
        # at t=21, so the notify promises completion until then.
        result = simulate(simple_purchase(), deadline=20.0)
        notifies = [a for a in result.delivered if a.kind is ActionKind.NOTIFY]
        assert notifies and notifies[0].deadline == 21.0

    def test_no_deadline_means_open_ended_notify(self):
        result = simulate(simple_purchase(), deadline=None)
        notifies = [a for a in result.delivered if a.kind is ActionKind.NOTIFY]
        assert notifies and notifies[0].deadline is None


class TestSlowParties:
    def test_slow_producer_triggers_full_reversal(self):
        problem = example1()
        result = simulate(
            problem, adversaries={"Producer": slow_party(100.0)}, deadline=10.0
        )
        assert result.completed_agents == frozenset()
        assert {a.name for a in result.reversed_agents} == {"Trusted1", "Trusted2"}
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Producer"}))

    def test_late_deposit_bounces_back(self):
        problem = example1()
        result = simulate(
            problem, adversaries={"Producer": slow_party(100.0)}, deadline=10.0
        )
        producer = next(p for p in problem.interaction.parties if p.name == "Producer")
        # The document went out late, was rejected, and came home.
        assert result.final.documents_of(producer) == frozenset({"d"})

    def test_mildly_slow_party_still_completes(self):
        problem = example1()
        result = simulate(
            problem, adversaries={"Producer": slow_party(2.0)}, deadline=50.0
        )
        assert len(result.completed_agents) == 2

    def test_slow_first_mover_merely_delays(self):
        # The deadline clock arms at the FIRST deposit (§2.2: each deposit
        # names how long it may be held) — a slow opener delays the whole
        # exchange but cannot time it out.
        problem = simple_purchase()
        result = simulate(
            problem, adversaries={"Customer": slow_party(30.0)}, deadline=10.0
        )
        assert len(result.completed_agents) == 1
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"Customer"}))
        customer = next(p for p in problem.interaction.parties if p.name == "Customer")
        assert result.final.documents_of(customer) == frozenset({"d"})


class TestPerExchangeDeadlines:
    SRC = """
    problem "deadlines"
    principal consumer C
    principal producer P
    trusted T
    exchange via T deadline 5 {
        C pays $10.00
        P gives d
    }
    """

    def test_spec_deadline_drives_timeout(self):
        problem = load(self.SRC)
        # Global default is generous; the spec's 5-unit deadline must win.
        result = simulate(
            problem, adversaries={"P": slow_party(50.0)}, deadline=1000.0
        )
        assert result.reversed_agents
        assert result.duration < 100.0

    def test_spec_deadline_honest_run_completes(self):
        problem = load(self.SRC)
        result = simulate(problem, deadline=1000.0)
        assert len(result.completed_agents) == 1

    def test_interaction_deadline_api(self):
        problem = load(self.SRC)
        t = problem.interaction.trusted_components[0]
        assert problem.interaction.deadline_of(t) == 5.0

    def test_slow_party_strategy_describe(self):
        assert "delays each send by 7.0" in slow_party(7.0).describe()
