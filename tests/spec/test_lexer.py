"""Unit tests for the spec-language lexer."""

import pytest

from repro.errors import SpecSyntaxError
from repro.spec import Token, TokenType, tokenize


def _types(source):
    return [t.type for t in tokenize(source)]


def _values(source):
    return [t.value for t in tokenize(source)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_is_just_eof(self):
        (token,) = tokenize("")
        assert token.type is TokenType.EOF

    def test_whitespace_only(self):
        (token,) = tokenize("   \n\t  \n")
        assert token.type is TokenType.EOF

    def test_comments_skipped(self):
        tokens = tokenize("# a comment\nbroker # trailing\n")
        assert [t.type for t in tokens] == [TokenType.KEYWORD, TokenType.EOF]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("principal consumer Alice")
        assert tokens[0].is_keyword("principal")
        assert tokens[1].is_keyword("consumer")
        assert tokens[2].type is TokenType.IDENT
        assert tokens[2].value == "Alice"

    def test_identifier_with_digits_dash_underscore(self):
        assert _values("Broker1 t-1 x_y") == ["Broker1", "t-1", "x_y"]

    def test_braces_and_arrow(self):
        assert _types("{ } ->")[:-1] == [
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.ARROW,
        ]

    def test_strings(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_numbers(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[0].value == 42


class TestAmounts:
    @pytest.mark.parametrize(
        "text,cents",
        [("$12", 1200), ("$12.5", 1250), ("$12.50", 1250), ("$0.01", 1), ("$0", 0)],
    )
    def test_amounts_to_cents(self, text, cents):
        token = tokenize(text)[0]
        assert token.type is TokenType.AMOUNT
        assert token.value == cents

    def test_bare_dollar_rejected(self):
        with pytest.raises(SpecSyntaxError, match="digits"):
            tokenize("$ 12")

    def test_three_decimals_rejected(self):
        with pytest.raises(SpecSyntaxError, match="two decimal"):
            tokenize("$1.234")

    def test_trailing_dot_rejected(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("$1.")


class TestErrorsAndPositions:
    def test_unexpected_character(self):
        with pytest.raises(SpecSyntaxError, match="unexpected character"):
            tokenize("principal @")

    def test_unterminated_string(self):
        with pytest.raises(SpecSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_lone_dash_rejected(self):
        with pytest.raises(SpecSyntaxError, match="'->'"):
            tokenize("a - b")

    def test_positions_are_one_based(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("ok\n   @")
        except SpecSyntaxError as exc:
            assert exc.line == 2
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected SpecSyntaxError")

    def test_token_str(self):
        assert "identifier" in str(Token(TokenType.IDENT, "x", 1, 1))
        assert str(tokenize("")[0]) == "end of input"
