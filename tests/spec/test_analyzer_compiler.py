"""Unit tests for spec semantic analysis, compilation, and formatting."""

import pytest

from repro.errors import SpecSemanticError
from repro.spec import analyze, compile_spec, format_problem, load, load_file, parse
from repro.workloads import example1, example2, figure7, poor_broker

EX1_SRC = """
problem "example1"
principal consumer Consumer
principal broker Broker
principal producer Producer
trusted Trusted1
trusted Trusted2
exchange via Trusted1 {
    Consumer pays $12.00 tag retail
    Broker gives d
}
exchange via Trusted2 {
    Broker pays $10.00 tag wholesale
    Producer gives d
}
priority Broker via Trusted1
"""


class TestAnalyzer:
    def _spec(self, src):
        return parse(src)

    def test_good_spec_passes(self):
        analyze(self._spec(EX1_SRC))

    def test_duplicate_declaration(self):
        with pytest.raises(SpecSemanticError, match="duplicate declaration"):
            analyze(self._spec("principal consumer C principal broker C"))

    def test_principal_trusted_name_clash(self):
        with pytest.raises(SpecSemanticError, match="duplicate declaration"):
            analyze(self._spec("principal consumer X trusted X"))

    def test_unknown_intermediary(self):
        src = "principal consumer C principal producer P exchange via T { C pays $1 P gives d }"
        with pytest.raises(SpecSemanticError, match="not a declared trusted"):
            analyze(self._spec(src))

    def test_member_must_be_principal(self):
        src = """
        principal consumer C
        trusted T trusted U
        exchange via T { C pays $1 U gives d }
        """
        with pytest.raises(SpecSemanticError, match="not a declared principal"):
            analyze(self._spec(src))

    def test_member_duplicated_in_exchange(self):
        src = """
        principal consumer C principal producer P trusted T
        exchange via T { C pays $1 C gives d P gives e }
        """
        with pytest.raises(SpecSemanticError, match="appears twice"):
            analyze(self._spec(src))

    def test_identical_provisions_need_tags(self):
        src = """
        principal consumer C principal producer P trusted T
        exchange via T { C gives d P gives d }
        """
        with pytest.raises(SpecSemanticError, match="same item"):
            analyze(self._spec(src))

    def test_priority_must_reference_edge(self):
        src = EX1_SRC + "priority Consumer via Trusted2\n"
        with pytest.raises(SpecSemanticError, match="no exchange edge"):
            analyze(self._spec(src))

    def test_duplicate_priority(self):
        src = EX1_SRC + "priority Broker via Trusted1\n"
        with pytest.raises(SpecSemanticError, match="duplicate priority"):
            analyze(self._spec(src))

    def test_trust_references_declared_parties(self):
        src = EX1_SRC + "trust Consumer -> Nobody\n"
        with pytest.raises(SpecSemanticError, match="undeclared party"):
            analyze(self._spec(src))

    def test_trust_in_intermediaries_allowed(self):
        # Hierarchy-of-trust statements (§9) are legal spec text.
        src = EX1_SRC + "trust Consumer -> Trusted1\ntrust Trusted1 -> Trusted2\n"
        analyze(self._spec(src))

    def test_reflexive_trust_rejected(self):
        src = EX1_SRC + "trust Broker -> Broker\n"
        with pytest.raises(SpecSemanticError, match="itself"):
            analyze(self._spec(src))

    def test_idle_principal_rejected(self):
        src = EX1_SRC + "principal broker Idle\n"
        with pytest.raises(SpecSemanticError, match="participates in no"):
            analyze(self._spec(src))

    def test_idle_trusted_rejected(self):
        src = EX1_SRC + "trusted Spare\n"
        with pytest.raises(SpecSemanticError, match="mediates no"):
            analyze(self._spec(src))


class TestCompiler:
    def test_compiles_example1_equivalent(self):
        problem = load(EX1_SRC)
        reference = example1()
        assert problem.name == "example1"
        assert [e.label for e in problem.interaction.edges] == [
            e.label for e in reference.interaction.edges
        ]
        assert problem.feasibility().feasible

    def test_execution_matches_reference(self):
        problem = load(EX1_SRC)
        assert len(problem.execution_sequence()) == 10

    def test_trust_statements_compile(self):
        src = EX1_SRC + "trust Producer -> Broker\n"
        problem = load(src)
        producer = next(p for p in problem.interaction.parties if p.name == "Producer")
        broker = next(p for p in problem.interaction.parties if p.name == "Broker")
        assert problem.trust.trusts(producer, broker)

    def test_compile_unvalidated_multiparty(self):
        src = """
        principal consumer A principal consumer B principal producer P
        trusted T
        exchange via T {
            A pays $1 expects d
            B pays $2 expects $1.00
            P gives d expects $2.00
        }
        """
        problem = load(src, validate=False)
        assert len(problem.interaction.edges) == 3
        problem.validate(allow_multiparty=True)
        ig = problem.interaction
        assert ig.expects(ig.find_edge("A", "T")).label == "d"

    def test_multiparty_without_expects_rejected(self):
        src = """
        principal consumer A principal consumer B principal producer P
        trusted T
        exchange via T { A pays $1 B pays $2 P gives d }
        """
        with pytest.raises(SpecSemanticError, match="must annotate every"):
            load(src, validate=False)

    def test_partial_expects_rejected(self):
        src = """
        principal consumer A principal producer P trusted T
        exchange via T { A pays $1 expects d P gives d }
        """
        with pytest.raises(SpecSemanticError, match="lacks an 'expects'"):
            load(src, validate=False)

    def test_expects_must_be_deposited(self):
        src = """
        principal consumer A principal producer P trusted T
        exchange via T { A pays $1 expects ghost P gives d expects $1.00 }
        """
        with pytest.raises(SpecSemanticError, match="no member deposits"):
            load(src, validate=False)

    def test_expects_own_deposit_rejected(self):
        src = """
        principal consumer A principal producer P trusted T
        exchange via T { A pays $1 expects $1.00 P gives d expects $1.00 }
        """
        with pytest.raises(SpecSemanticError, match="own deposit"):
            load(src, validate=False)

    def test_deadline_compiles(self):
        src = EX1_SRC.replace(
            "exchange via Trusted1 {", "exchange via Trusted1 deadline 50 {"
        )
        problem = load(src)
        ig = problem.interaction
        t1 = next(t for t in ig.trusted_components if t.name == "Trusted1")
        t2 = next(t for t in ig.trusted_components if t.name == "Trusted2")
        assert ig.deadline_of(t1) == 50.0
        assert ig.deadline_of(t2) is None

    def test_zero_deadline_rejected(self):
        src = EX1_SRC.replace(
            "exchange via Trusted1 {", "exchange via Trusted1 deadline 0 {"
        )
        with pytest.raises(SpecSemanticError, match="positive"):
            load(src)

    def test_load_file(self, tmp_path):
        path = tmp_path / "spec.exc"
        path.write_text(EX1_SRC, encoding="utf-8")
        assert load_file(str(path)).feasibility().feasible

    def test_load_file_missing(self):
        with pytest.raises(SpecSemanticError, match="cannot read"):
            load_file("/nonexistent/spec.exc")

    def test_compile_spec_direct(self):
        problem = compile_spec(parse(EX1_SRC))
        assert problem.name == "example1"


class TestFormatterRoundTrip:
    @pytest.mark.parametrize(
        "factory", [example1, example2, poor_broker, figure7], ids=lambda f: f.__name__
    )
    def test_roundtrip_preserves_structure(self, factory):
        original = factory()
        text = format_problem(original)
        recovered = load(text)
        assert recovered.name == original.name
        assert [e.label for e in recovered.interaction.edges] == [
            e.label for e in original.interaction.edges
        ]
        assert {
            (e.principal.name, e.trusted.name)
            for e in recovered.interaction.priority_edges
        } == {
            (e.principal.name, e.trusted.name)
            for e in original.interaction.priority_edges
        }
        assert recovered.feasibility().feasible == original.feasibility().feasible

    def test_roundtrip_preserves_trust(self):
        original = example2().with_trust("Source1", "Broker1")
        recovered = load(format_problem(original))
        assert {(a.name, b.name) for a, b in recovered.trust} == {("Source1", "Broker1")}
        assert recovered.feasibility().feasible

    def test_roundtrip_preserves_amounts(self):
        original = figure7()
        recovered = load(format_problem(original))
        edge = recovered.interaction.find_edge("Consumer", "Trusted5")
        assert edge.provides.cents == 3000

    def test_formatted_text_is_stable(self):
        once = format_problem(example1())
        twice = format_problem(load(once))
        assert once == twice
