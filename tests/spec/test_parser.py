"""Unit tests for the spec-language parser."""

import pytest

from repro.errors import SpecSyntaxError
from repro.spec import ClauseKind, PrincipalKind, parse

GOOD = """
problem "demo"
principal consumer C
principal producer P
trusted T
exchange via T {
    C pays $10.00
    P gives d
}
"""


class TestHeader:
    def test_quoted_problem_name(self):
        assert parse(GOOD).name == "demo"

    def test_ident_problem_name(self):
        assert parse("problem demo1").name == "demo1"

    def test_missing_header_defaults(self):
        headerless = "principal consumer C" + GOOD.split("principal consumer C")[1]
        assert parse(headerless).name == "unnamed"

    def test_bad_header(self):
        with pytest.raises(SpecSyntaxError, match="problem name"):
            parse("problem {")


class TestPrincipalAndTrusted:
    def test_kinds_parsed(self):
        spec = parse(GOOD)
        kinds = {d.name: d.kind for d in spec.principals}
        assert kinds == {"C": PrincipalKind.CONSUMER, "P": PrincipalKind.PRODUCER}

    def test_broker_kind(self):
        spec = parse("principal broker B")
        assert spec.principals[0].kind is PrincipalKind.BROKER

    def test_bad_kind_rejected(self):
        with pytest.raises(SpecSyntaxError, match="consumer"):
            parse("principal wizard W")

    def test_missing_name_rejected(self):
        with pytest.raises(SpecSyntaxError, match="principal name"):
            parse("principal consumer {")

    def test_trusted_decl(self):
        spec = parse(GOOD)
        assert [d.name for d in spec.trusted] == ["T"]


class TestExchange:
    def test_clauses(self):
        spec = parse(GOOD)
        (exchange,) = spec.exchanges
        assert exchange.via == "T"
        pays, gives = exchange.clauses
        assert pays.kind is ClauseKind.PAYS and pays.amount_cents == 1000
        assert gives.kind is ClauseKind.GIVES and gives.item == "d"

    def test_tags(self):
        src = GOOD.replace("pays $10.00", "pays $10.00 tag retail").replace(
            "gives d", "gives d tag original"
        )
        pays, gives = parse(src).exchanges[0].clauses
        assert pays.tag == "retail"
        assert gives.tag == "original"

    def test_three_member_exchange_allowed_by_parser(self):
        src = """
        principal consumer A
        principal consumer B
        principal producer P
        trusted T
        exchange via T { A pays $1 B pays $2 P gives d }
        """
        assert len(parse(src).exchanges[0].clauses) == 3

    def test_single_clause_rejected(self):
        with pytest.raises(SpecSyntaxError, match="at least two"):
            parse("trusted T exchange via T { C pays $1 }")

    def test_missing_brace_rejected(self):
        with pytest.raises(SpecSyntaxError, match="'{'"):
            parse("exchange via T C pays $1")

    def test_unterminated_block_rejected(self):
        with pytest.raises(SpecSyntaxError, match="unterminated"):
            parse("exchange via T { C pays $1 P gives d")

    def test_bad_verb_rejected(self):
        with pytest.raises(SpecSyntaxError, match="pays.*gives|'pays' or 'gives'"):
            parse("exchange via T { C sends $1 P gives d }")

    def test_pays_requires_amount(self):
        with pytest.raises(SpecSyntaxError, match="amount"):
            parse("exchange via T { C pays d P gives d }")

    def test_gives_requires_item(self):
        with pytest.raises(SpecSyntaxError, match="item"):
            parse("exchange via T { C gives $1 P gives d }")


class TestPriorityAndTrust:
    def test_priority(self):
        src = GOOD + "priority C via T\n"
        (priority,) = parse(src).priorities
        assert priority.principal == "C"
        assert priority.via == "T"

    def test_trust(self):
        src = GOOD + "trust C -> P\n"
        (trust,) = parse(src).trusts
        assert (trust.truster, trust.trustee) == ("C", "P")

    def test_trust_requires_arrow(self):
        with pytest.raises(SpecSyntaxError, match="'->'"):
            parse("trust C P")

    def test_unknown_statement_rejected(self):
        with pytest.raises(SpecSyntaxError, match="statement keyword"):
            parse("banana split")


class TestSpecFileHelpers:
    def test_name_sets(self):
        spec = parse(GOOD)
        assert spec.principal_names() == {"C", "P"}
        assert spec.trusted_names() == {"T"}
