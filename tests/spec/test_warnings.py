"""The non-fatal spec warning tier (SPECW001/2/3) and its lint routing."""

from __future__ import annotations

import pytest

from repro.spec import format_problem
from repro.spec.analyzer import analyze_warnings
from repro.spec.parser import parse
from repro.staticcheck import Severity, lint_paths
from repro.workloads import example1, example2_source_trusts_broker

WARNED_SPEC = """\
problem "warn-demo"

principal consumer Consumer
principal broker Broker
principal producer Producer
trusted Trusted1
trusted Trusted2

exchange via Trusted1 {
    Consumer pays $12.00 tag retail
    Broker gives d
}
exchange via Trusted2 {
    Broker pays $10.00 tag wholesale
    Producer gives d
}

priority Broker via Trusted1
priority Broker via Trusted2

trust Consumer -> Producer
"""


class TestWarningTier:
    def test_infeasible_priority_cycle_warns_specw001(self):
        findings = analyze_warnings(parse(WARNED_SPEC))
        w001 = [f for f in findings if f.rule == "SPECW001"]
        assert len(w001) == 1
        assert "removing every priority statement" in w001[0].message
        assert w001[0].severity is Severity.WARNING

    def test_inert_trust_warns_specw002(self):
        findings = analyze_warnings(parse(WARNED_SPEC))
        w002 = [f for f in findings if f.rule == "SPECW002"]
        assert len(w002) == 1
        assert "Consumer -> Producer" in w002[0].message

    def test_parties_only_in_warned_declarations_warn_specw003(self):
        findings = analyze_warnings(parse(WARNED_SPEC))
        names = {
            f.message.split("'")[1] for f in findings if f.rule == "SPECW003"
        }
        assert names == {"Consumer", "Broker", "Producer"}

    def test_warning_positions_point_at_declarations(self):
        findings = analyze_warnings(parse(WARNED_SPEC), path="demo.exchange")
        w001 = next(f for f in findings if f.rule == "SPECW001")
        assert w001.path == "demo.exchange"
        assert w001.line == 18  # first priority statement

    def test_effective_priority_and_trust_stay_silent(self):
        # example1's priority is satisfiable; the trust variant's trust edge
        # genuinely changes the reduction — neither may warn.
        for problem in (example1(), example2_source_trusts_broker()):
            spec = parse(format_problem(problem))
            assert analyze_warnings(spec) == []

    def test_warnings_do_not_gate_the_exit_path(self, tmp_path):
        target = tmp_path / "warned.exchange"
        target.write_text(WARNED_SPEC, encoding="utf-8")
        findings = lint_paths([str(target)])
        assert findings  # surfaced ...
        assert all(f.severity is Severity.WARNING for f in findings)  # ... advisory


class TestSpecErrorRouting:
    def test_semantic_error_becomes_spec000_finding(self, tmp_path):
        target = tmp_path / "broken.exchange"
        target.write_text(
            'problem "broken"\n\nprincipal consumer C\ntrusted T\n\n'
            "exchange via T {\n    C pays $1.00\n    Ghost gives d\n}\n",
            encoding="utf-8",
        )
        findings = lint_paths([str(target)])
        assert [f.rule for f in findings] == ["SPEC000"]
        assert findings[0].severity is Severity.ERROR
        assert "Ghost" in findings[0].message


@pytest.mark.parametrize("factory", [example1, example2_source_trusts_broker])
def test_formatter_round_trip_stays_warning_free(factory):
    """Our own formatted output must never trip the warning tier."""
    spec = parse(format_problem(factory()))
    assert analyze_warnings(spec) == []
