"""Unit tests for repro.core.feasibility (§4.2.4 verdicts)."""

from repro.core.feasibility import Verdict, check_feasibility
from repro.workloads import (
    example1,
    example2,
    example2_broker_trusts_source,
    example2_source_trusts_broker,
    poor_broker,
    resale_chain,
    simple_purchase,
)


class TestPaperVerdicts:
    """The headline feasibility results, straight from the paper."""

    def test_example1_feasible(self):
        assert example1().feasibility().verdict is Verdict.FEASIBLE

    def test_example2_not_shown_feasible(self):
        assert example2().feasibility().verdict is Verdict.NOT_SHOWN_FEASIBLE

    def test_source_trusts_broker_feasible(self):
        assert example2_source_trusts_broker().feasibility().feasible

    def test_broker_trusts_source_still_infeasible(self):
        assert not example2_broker_trusts_source().feasibility().feasible

    def test_poor_broker_infeasible(self):
        assert not poor_broker().feasibility().feasible

    def test_simple_purchase_feasible(self):
        assert simple_purchase().feasibility().feasible


class TestVerdictObject:
    def test_accepts_interaction_graph(self):
        problem = example1()
        verdict = check_feasibility(problem.interaction, problem.trust)
        assert verdict.feasible

    def test_accepts_sequencing_graph(self):
        sg = example1().sequencing_graph()
        assert check_feasibility(sg).feasible

    def test_blockages_empty_when_feasible(self):
        assert example1().feasibility().blockages == ()

    def test_blockages_populated_when_infeasible(self):
        verdict = example2().feasibility()
        assert len(verdict.blockages) == 2

    def test_graph_accessor(self):
        verdict = example1().feasibility()
        assert len(verdict.graph.commitments) == 4

    def test_explain_feasible_mentions_commit_order(self):
        text = example1().feasibility().explain()
        assert text.startswith("feasible")
        assert "commit order" in text

    def test_explain_infeasible_mentions_blockers(self):
        text = example2().feasibility().explain()
        assert "not shown feasible" in text
        assert "blocked by red" in text


class TestChains:
    def test_solvent_chains_feasible_at_any_depth(self):
        for n in (0, 1, 2, 5):
            assert resale_chain(n_brokers=n, retail=100.0).feasibility().feasible, n

    def test_poor_chains_infeasible_at_any_depth(self):
        for n in (1, 2, 4):
            verdict = resale_chain(n_brokers=n, retail=100.0, solvent=False).feasibility()
            assert not verdict.feasible, n
