"""Unit tests for the §9 trust-hierarchy mediation planner."""

import pytest

from repro.core.items import document, money
from repro.core.mediation import (
    NoCommonIntermediaryError,
    hierarchical_closure,
    hierarchy_study,
    mediated_problem,
    plan_mediation,
    usable_intermediaries,
)
from repro.core.parties import broker, consumer, trusted
from repro.core.trust import TrustRelation

A = consumer("a")
B = broker("b")
T1, T2, T3 = trusted("t1"), trusted("t2"), trusted("t3")
POOL = [T1, T2, T3]


class TestClosure:
    def test_composes_through_trusted_components(self):
        trust = TrustRelation.of([(A, T1), (T1, T2)])
        closure = hierarchical_closure(trust)
        assert closure.trusts(A, T2)

    def test_chains_of_any_depth(self):
        trust = TrustRelation.of([(A, T1), (T1, T2), (T2, T3)])
        closure = hierarchical_closure(trust)
        assert closure.trusts(A, T3)

    def test_max_depth_bounds_chains(self):
        trust = TrustRelation.of([(A, T1), (T1, T2), (T2, T3)])
        shallow = hierarchical_closure(trust, max_depth=1)
        assert shallow.trusts(A, T2)
        assert not shallow.trusts(A, T3)

    def test_principals_break_chains(self):
        # a trusts b (a principal), b trusts t2: does NOT give a -> t2.
        trust = TrustRelation.of([(A, B), (B, T2)])
        closure = hierarchical_closure(trust)
        assert not closure.trusts(A, T2)

    def test_original_relation_untouched(self):
        trust = TrustRelation.of([(A, T1), (T1, T2)])
        hierarchical_closure(trust)
        assert not trust.trusts(A, T2)

    def test_closure_is_idempotent(self):
        trust = TrustRelation.of([(A, T1), (T1, T2), (T2, T3)])
        once = hierarchical_closure(trust)
        twice = hierarchical_closure(once)
        assert set(once) == set(twice)


class TestPlanning:
    def test_direct_preferred_over_hierarchy(self):
        trust = TrustRelation.of([(A, T1), (B, T1), (A, T2), (T2, T3), (B, T3)])
        plan = plan_mediation(A, B, trust, POOL)
        assert plan.via == T1
        assert not plan.used_hierarchy

    def test_hierarchy_used_when_needed(self):
        trust = TrustRelation.of([(A, T1), (T1, T2), (B, T2)])
        plan = plan_mediation(A, B, trust, POOL)
        assert plan.via == T2
        assert plan.used_hierarchy

    def test_no_path_raises(self):
        trust = TrustRelation.of([(A, T1), (B, T2)])
        with pytest.raises(NoCommonIntermediaryError):
            plan_mediation(A, B, trust, POOL)

    def test_usable_intermediaries_filtering(self):
        trust = TrustRelation.of([(A, T1), (B, T1), (A, T2)])
        assert usable_intermediaries(A, B, trust, POOL, hierarchy=False) == (T1,)

    def test_mediated_problem_is_feasible(self):
        trust = TrustRelation.of([(A, T1), (T1, T2), (B, T2)])
        problem, plan = mediated_problem(
            "bridged", A, money(10), B, document("d"), trust, POOL
        )
        assert plan.used_hierarchy
        assert problem.feasibility().feasible
        assert len(problem.execution_sequence()) == 5

    def test_mediated_problem_simulates_safely(self):
        from repro.sim import evaluate_safety, simulate

        trust = TrustRelation.of([(A, T1), (T1, T2), (B, T2)])
        problem, _ = mediated_problem(
            "bridged", A, money(10), B, document("d"), trust, POOL
        )
        report = evaluate_safety(problem, simulate(problem))
        assert report.honest_parties_safe()


class TestHierarchyStudy:
    def test_hierarchy_never_hurts(self):
        for seed in range(5):
            row = hierarchy_study(seed=seed)
            assert row.pairs_hierarchical >= row.pairs_direct
            assert row.pairs_total == 28  # C(8, 2)

    def test_hierarchy_unlocks_pairs_somewhere(self):
        unlocked = [hierarchy_study(seed=s).unlocked_by_hierarchy for s in range(5)]
        assert any(u > 0 for u in unlocked)

    def test_no_inter_trust_means_no_unlock(self):
        row = hierarchy_study(inter_trust_probability=0.0, seed=1)
        assert row.unlocked_by_hierarchy == 0

    def test_deterministic(self):
        assert hierarchy_study(seed=4) == hierarchy_study(seed=4)
