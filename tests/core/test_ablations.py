"""Tests for the ablation switches (design-choice justifications).

Each switch disables one mechanism DESIGN.md calls out, and the tests show
the paper result that breaks without it — the evidence that the mechanism is
load-bearing, not incidental.
"""

import pytest

from repro.core.execution import recover_execution
from repro.core.reduction import ReductionEngine, reduce_graph
from repro.errors import ModelError
from repro.workloads import (
    example1,
    example2_source_trusts_broker,
    resale_chain,
)


class TestPersonaClauseAblation:
    def test_clause2_is_what_unlocks_variant1(self):
        # §4.2.3 variant 1 is feasible ONLY because of Rule #1 clause 2.
        graph = example2_source_trusts_broker().sequencing_graph()
        with_clause = ReductionEngine(graph, enable_persona_clause=True).run()
        without_clause = ReductionEngine(graph, enable_persona_clause=False).run()
        assert with_clause.feasible
        assert not without_clause.feasible

    def test_ablated_diagnosis_blames_the_persona_edge(self):
        graph = example2_source_trusts_broker().sequencing_graph()
        trace = ReductionEngine(graph, enable_persona_clause=False).run()
        blocked = {b.edge.commitment.label for b in trace.blockages}
        assert "Trusted2->Broker1" in blocked

    def test_clause_is_noop_without_personas(self):
        graph = example1().sequencing_graph()
        assert ReductionEngine(graph, enable_persona_clause=False).run().feasible


class TestSchedulerAblation:
    def test_paper_strict_matches_on_single_reseller(self):
        # With one red edge the literal §5 recipe is exact.
        trace = reduce_graph(example1().sequencing_graph())
        gated = recover_execution(trace, scheduler="possession")
        strict = recover_execution(trace, scheduler="paper-strict")
        assert gated.describe() == strict.describe()
        assert strict.violated_constraints() == []

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_paper_strict_breaks_on_multi_reseller_chains(self, n):
        # The ambiguity the possession gate resolves: strict ordering makes
        # a broker ship a document it has not yet received.
        trace = reduce_graph(resale_chain(n, retail=100.0).sequencing_graph())
        strict = recover_execution(trace, scheduler="paper-strict")
        assert strict.violated_constraints() != []

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_possession_gate_fixes_the_same_chains(self, n):
        trace = reduce_graph(resale_chain(n, retail=100.0).sequencing_graph())
        gated = recover_execution(trace, scheduler="possession")
        assert gated.violated_constraints() == []

    def test_unknown_scheduler_rejected(self):
        trace = reduce_graph(example1().sequencing_graph())
        with pytest.raises(ModelError, match="scheduler"):
            recover_execution(trace, scheduler="chaotic")
