"""Unit tests for repro.core.interaction (§3 interaction graphs)."""

import pytest

from repro.core.interaction import InteractionGraph, build_interaction_graph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.errors import GraphError

C = consumer("c")
B = broker("b")
P = producer("p")
T1 = trusted("t1")
T2 = trusted("t2")
D = document("d")
M = money(10)


def _simple_graph() -> InteractionGraph:
    g = InteractionGraph()
    g.add_principal(C)
    g.add_principal(P)
    g.add_trusted(T1)
    g.add_exchange(C, M, P, D, via=T1)
    return g


class TestRegistration:
    def test_add_principal_idempotent(self):
        g = InteractionGraph()
        g.add_principal(C)
        g.add_principal(C)
        assert g.principals == (C,)

    def test_principal_name_collision_with_trusted(self):
        g = InteractionGraph()
        g.add_principal(consumer("x"))
        with pytest.raises(GraphError):
            g.add_trusted(trusted("x"))

    def test_trusted_name_collision_with_principal(self):
        g = InteractionGraph()
        g.add_trusted(trusted("x"))
        with pytest.raises(GraphError):
            g.add_principal(consumer("x"))

    def test_conflicting_role_same_name(self):
        g = InteractionGraph()
        g.add_principal(consumer("x"))
        with pytest.raises(GraphError):
            g.add_principal(broker("x"))

    def test_wrong_kind_rejected(self):
        g = InteractionGraph()
        with pytest.raises(Exception):
            g.add_principal(T1)
        with pytest.raises(Exception):
            g.add_trusted(C)


class TestEdges:
    def test_add_edge_requires_known_parties(self):
        g = InteractionGraph()
        g.add_principal(C)
        with pytest.raises(GraphError, match="unknown trusted"):
            g.add_edge(C, T1, M)
        g2 = InteractionGraph()
        g2.add_trusted(T1)
        with pytest.raises(GraphError, match="unknown principal"):
            g2.add_edge(C, T1, M)

    def test_duplicate_edge_rejected(self):
        g = _simple_graph()
        with pytest.raises(GraphError, match="duplicate"):
            g.add_edge(C, T1, M)

    def test_tag_permits_parallel_edges(self):
        g = _simple_graph()
        g.add_edge(C, T1, M, tag="second")
        assert len(g.edges_at(C)) == 2

    def test_add_exchange_creates_both_edges(self):
        g = _simple_graph()
        left, right = g.edges
        assert left.principal == C and left.provides == M
        assert right.principal == P and right.provides == D
        assert left.trusted == right.trusted == T1

    def test_degree_and_internal_nodes(self):
        g = _simple_graph()
        assert g.degree(T1) == 2
        assert g.degree(C) == 1
        assert g.internal_nodes() == (T1,)

    def test_counterparts_and_expects(self):
        g = _simple_graph()
        buy, sell = g.edges
        assert g.counterparts(buy) == (sell,)
        assert g.expects(buy) == D
        assert g.expects(sell) == M

    def test_find_edge(self):
        g = _simple_graph()
        assert g.find_edge("c", "t1").provides == M
        with pytest.raises(GraphError):
            g.find_edge("c", "t9")

    def test_shared_intermediaries(self):
        g = _simple_graph()
        assert g.shared_intermediaries(C, P) == (T1,)


class TestPriority:
    def test_mark_priority_records(self):
        g = _simple_graph()
        buy, _ = g.edges
        g.mark_priority(buy)
        assert buy in g.priority_edges

    def test_mark_unknown_edge_rejected(self):
        g = _simple_graph()
        other = InteractionGraph()
        other.add_principal(C)
        other.add_trusted(T2)
        other.add_principal(P)
        stray, _ = other.add_exchange(C, M, P, D, via=T2)
        with pytest.raises(GraphError):
            g.mark_priority(stray)


class TestValidation:
    def test_valid_graph_passes(self):
        _simple_graph().validate()

    def test_dangling_trusted_rejected(self):
        g = _simple_graph()
        g.add_trusted(T2)
        with pytest.raises(GraphError, match="degree"):
            g.validate()

    def test_trusted_with_one_edge_rejected(self):
        g = InteractionGraph()
        g.add_principal(C)
        g.add_principal(P)
        g.add_trusted(T1)
        g.add_edge(C, T1, M)
        with pytest.raises(GraphError, match="at least two"):
            g.validate()

    def test_multiparty_needs_flag(self):
        g = _simple_graph()
        g.add_principal(B)
        g.add_edge(B, T1, document("e"))
        with pytest.raises(GraphError, match="multiparty"):
            g.validate()
        g.validate(allow_multiparty=True)

    def test_identical_provisions_rejected(self):
        g = InteractionGraph()
        g.add_principal(C)
        g.add_principal(P)
        g.add_trusted(T1)
        g.add_edge(C, T1, D)
        g.add_edge(P, T1, D)
        with pytest.raises(GraphError, match="distinct items"):
            g.validate()

    def test_idle_principal_rejected(self):
        g = _simple_graph()
        g.add_principal(B)
        with pytest.raises(GraphError, match="no exchange"):
            g.validate()

    def test_expects_undefined_for_multiparty(self):
        g = _simple_graph()
        g.add_principal(B)
        g.add_edge(B, T1, document("e"))
        with pytest.raises(GraphError, match="entitlement map"):
            g.expects(g.edges[0])


class TestConvenience:
    def test_build_interaction_graph(self):
        g = build_interaction_graph(
            principals=[C, B, P],
            trusted=[T1, T2],
            exchanges=[(C, M, B, D, T1), (B, money(8), P, D, T2)],
        )
        g.validate()
        assert len(g.edges) == 4

    def test_copy_is_independent(self):
        g = _simple_graph()
        clone = g.copy()
        clone.mark_priority(clone.edges[0])
        assert g.priority_edges == frozenset()

    def test_str_mentions_parties(self):
        text = str(_simple_graph())
        assert "c" in text and "t1" in text
