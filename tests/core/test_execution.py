"""Unit tests for repro.core.execution (§5 execution-sequence recovery)."""

import pytest

from repro.core.execution import StepKind, execution_order, recover_execution
from repro.core.reduction import Rule, reduce_graph, replay
from repro.core.sequencing import SequencingGraph
from repro.errors import InfeasibleExchangeError, ModelError
from repro.workloads import example1, example2, resale_chain, simple_purchase

PAPER_LISTING = [
    "1. Producer sends document to Trusted2.",
    "2. Trusted2 notifies Broker.",
    "3. Consumer sends money to Trusted1.",
    "4. Trusted1 notifies Broker.",
    "5. Broker sends money to Trusted2.",
    "6. Trusted2 sends document to Broker.",
    "7. Trusted2 sends money to Producer.",
    "8. Broker sends document to Trusted1.",
    "9. Trusted1 sends document to Consumer.",
    "10. Trusted1 sends money to Broker.",
]


def _paper_script(sg):
    def edge(principal, trusted_name, conj_agent):
        commitment = sg.commitment_for(sg.interaction.find_edge(principal, trusted_name))
        conjunction = next(j for j in sg.conjunctions if j.agent.name == conj_agent)
        return sg.find_edge(commitment, conjunction)

    return [
        (Rule.COMMITMENT_FRINGE, edge("Producer", "Trusted2", "Trusted2")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker", "Trusted2", "Trusted2")),
        (Rule.COMMITMENT_FRINGE, edge("Consumer", "Trusted1", "Trusted1")),
        (Rule.CONJUNCTION_FRINGE, edge("Broker", "Trusted1", "Trusted1")),
        (Rule.COMMITMENT_FRINGE, edge("Broker", "Trusted1", "Broker")),
        (Rule.COMMITMENT_FRINGE, edge("Broker", "Trusted2", "Broker")),
    ]


class TestPaperListing:
    """The §5 ten-step listing, reproduced verbatim."""

    def test_exact_ten_steps(self):
        problem = example1()
        sg = problem.sequencing_graph()
        trace = replay(sg, _paper_script(sg))
        sequence = recover_execution(trace)
        assert sequence.describe() == PAPER_LISTING

    def test_red_commitment_executes_last(self):
        problem = example1()
        sg = problem.sequencing_graph()
        trace = replay(sg, _paper_script(sg))
        order = execution_order(trace)
        # Trusted1->Broker committed third but executes last (red deferral).
        assert trace.commitment_order[2].label == "Trusted1->Broker"
        assert order[-1].label == "Trusted1->Broker"

    def test_notifies_target_the_broker(self):
        problem = example1()
        sg = problem.sequencing_graph()
        sequence = recover_execution(replay(sg, _paper_script(sg)))
        notifies = [s for s in sequence.steps if s.kind is StepKind.NOTIFY]
        assert len(notifies) == 2
        assert all(s.action.recipient.name == "Broker" for s in notifies)


class TestAnyGreedyOrder:
    """Any greedy reduction must yield a valid (maybe different) sequence."""

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "random"])
    def test_sequence_has_ten_steps(self, strategy):
        trace = reduce_graph(example1().sequencing_graph(), strategy=strategy)
        sequence = recover_execution(trace)
        assert len(sequence) == 10

    @pytest.mark.parametrize("strategy", ["fifo", "lifo", "random"])
    def test_no_possession_violation(self, strategy):
        trace = reduce_graph(example1().sequencing_graph(), strategy=strategy)
        sequence = recover_execution(trace)
        assert sequence.violated_constraints() == []

    def test_deposits_notifies_releases_partition(self):
        sequence = example1().execution_sequence()
        kinds = [s.kind for s in sequence.steps]
        assert kinds.count(StepKind.DEPOSIT) == 4
        assert kinds.count(StepKind.NOTIFY) == 2
        assert kinds.count(StepKind.RELEASE) == 4

    def test_releases_goods_before_payments_per_agent(self):
        sequence = example1().execution_sequence()
        by_agent: dict[str, list] = {}
        for step in sequence.steps:
            if step.kind is StepKind.RELEASE:
                by_agent.setdefault(step.action.sender.name, []).append(step.action)
        for agent, actions in by_agent.items():
            kinds = [a.item.is_money for a in actions]
            assert kinds == sorted(kinds), f"{agent} paid before releasing goods"


class TestSimplePurchase:
    def test_four_steps_one_notify(self):
        sequence = simple_purchase().execution_sequence()
        kinds = [s.kind for s in sequence.steps]
        assert kinds.count(StepKind.DEPOSIT) == 2
        assert kinds.count(StepKind.NOTIFY) == 1
        assert kinds.count(StepKind.RELEASE) == 2


class TestChains:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_chain_sequences_are_constraint_free(self, n):
        sequence = resale_chain(n_brokers=n, retail=100.0).execution_sequence()
        assert sequence.violated_constraints() == []

    def test_chain_step_count_scales(self):
        # Each hop contributes 2 deposits + 2 releases; each trusted agent
        # one notify (both parties never arrive simultaneously in a chain).
        for n in (1, 3):
            sequence = resale_chain(n_brokers=n, retail=100.0).execution_sequence()
            hops = n + 1
            assert len(sequence) == 5 * hops


class TestErrors:
    def test_infeasible_trace_rejected(self):
        trace = reduce_graph(example2().sequencing_graph())
        with pytest.raises(InfeasibleExchangeError):
            recover_execution(trace)

    def test_graph_without_interaction_rejected(self):
        sg = example1().sequencing_graph()
        bare = SequencingGraph(sg.commitments, sg.conjunctions, sg.edges, sg.personas)
        trace = reduce_graph(bare)
        assert trace.feasible
        with pytest.raises(ModelError, match="interaction"):
            recover_execution(trace)


class TestSequenceHelpers:
    def test_actions_and_transfers(self):
        sequence = example1().execution_sequence()
        assert len(sequence.actions) == 10
        assert len(sequence.transfers) == 8  # 10 minus 2 notifies

    def test_str_is_numbered_listing(self):
        text = str(example1().execution_sequence())
        assert text.splitlines()[0].startswith("1. ")
