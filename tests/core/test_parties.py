"""Unit tests for repro.core.parties."""

import pytest

from repro.core.parties import (
    Party,
    Role,
    broker,
    consumer,
    producer,
    require_principal,
    require_trusted,
    trusted,
)
from repro.errors import ModelError


class TestRole:
    def test_principal_roles(self):
        assert Role.CONSUMER.is_principal
        assert Role.BROKER.is_principal
        assert Role.PRODUCER.is_principal

    def test_trusted_is_not_principal(self):
        assert not Role.TRUSTED.is_principal


class TestParty:
    def test_constructors_assign_roles(self):
        assert consumer("c").role is Role.CONSUMER
        assert broker("b").role is Role.BROKER
        assert producer("p").role is Role.PRODUCER
        assert trusted("t").role is Role.TRUSTED

    def test_principal_and_trusted_flags(self):
        assert consumer("c").is_principal
        assert not consumer("c").is_trusted
        assert trusted("t").is_trusted
        assert not trusted("t").is_principal

    def test_equality_is_name_and_role(self):
        assert consumer("x") == consumer("x")
        assert consumer("x") != broker("x")
        assert consumer("x") != consumer("y")

    def test_hashable_and_usable_as_dict_key(self):
        d = {consumer("c"): 1, trusted("t"): 2}
        assert d[consumer("c")] == 1

    def test_ordering_is_deterministic(self):
        parties = sorted([trusted("t"), consumer("a"), broker("m")])
        assert [p.name for p in parties] == ["a", "m", "t"]

    def test_str_is_name(self):
        assert str(producer("src")) == "src"

    @pytest.mark.parametrize("bad", ["", "1abc", "has space", "semi;colon", "-lead"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ModelError):
            Party(bad, Role.CONSUMER)

    @pytest.mark.parametrize("good", ["a", "Broker1", "t-1", "x_y", "Z9"])
    def test_valid_names_accepted(self, good):
        assert Party(good, Role.BROKER).name == good


class TestRequireHelpers:
    def test_require_principal_passes_through(self):
        c = consumer("c")
        assert require_principal(c, "ctx") is c

    def test_require_principal_rejects_trusted(self):
        with pytest.raises(ModelError, match="trusted component"):
            require_principal(trusted("t"), "ctx")

    def test_require_trusted_passes_through(self):
        t = trusted("t")
        assert require_trusted(t, "ctx") is t

    def test_require_trusted_rejects_principal(self):
        with pytest.raises(ModelError, match="principal"):
            require_trusted(broker("b"), "ctx")
