"""Unit tests for repro.core.items."""

import pytest

from repro.core.items import Document, cents, document, money
from repro.errors import ModelError


class TestDocument:
    def test_document_is_not_money(self):
        assert not document("d1").is_money

    def test_equality_by_label(self):
        assert document("d") == document("d")
        assert document("d") != document("e")

    def test_empty_label_rejected(self):
        with pytest.raises(ModelError):
            Document("")

    def test_str_is_label(self):
        assert str(document("patent-text")) == "patent-text"


class TestMoney:
    def test_money_is_money(self):
        assert money(10).is_money

    def test_dollars_to_cents(self):
        assert money(10).cents == 1000
        assert money(12.5).cents == 1250
        assert money(0.01).cents == 1

    def test_rounding_avoids_float_drift(self):
        # 0.1 + 0.2 style inputs must land on exact cents.
        assert money(0.29).cents == 29
        assert money(1.005).cents in (100, 101)  # round-half on binary floats

    def test_cents_constructor(self):
        assert cents(2500).cents == 2500
        assert cents(2500).dollars == 25.0

    def test_display_format(self):
        assert str(money(10)) == "$10.00"
        assert str(cents(105)) == "$1.05"

    def test_tag_disambiguates_equal_amounts(self):
        assert money(10, tag="a") != money(10, tag="b")
        assert money(10, tag="a").cents == money(10, tag="b").cents

    def test_untagged_equal_amounts_are_equal(self):
        assert money(10) == money(10)

    def test_negative_amount_rejected(self):
        with pytest.raises(ModelError):
            money(-1)
        with pytest.raises(ModelError):
            cents(-1)

    def test_zero_is_allowed(self):
        assert money(0).cents == 0

    def test_money_and_document_never_equal(self):
        assert money(10) != document("$10.00")

    def test_hashable(self):
        assert len({money(10), money(10), money(20)}) == 2
