"""Unit tests for repro.core.trust (directed trust, §4.2.3)."""

import pytest

from repro.core.parties import broker, producer
from repro.core.trust import TrustRelation
from repro.errors import ModelError

B = broker("b1")
S = producer("s1")
X = broker("b2")


class TestTrustRelation:
    def test_empty_relation_trusts_nothing(self):
        rel = TrustRelation()
        assert not rel.trusts(B, S)
        assert len(rel) == 0

    def test_add_is_directional(self):
        rel = TrustRelation()
        rel.add(S, B)
        assert rel.trusts(S, B)
        assert not rel.trusts(B, S)  # the paper's asymmetry

    def test_add_mutual(self):
        rel = TrustRelation()
        rel.add_mutual(B, S)
        assert rel.trusts(B, S) and rel.trusts(S, B)

    def test_self_trust_rejected(self):
        with pytest.raises(ModelError):
            TrustRelation().add(B, B)

    def test_remove(self):
        rel = TrustRelation.of([(S, B)])
        rel.remove(S, B)
        assert not rel.trusts(S, B)

    def test_remove_missing_is_noop(self):
        TrustRelation().remove(S, B)

    def test_of_builds_from_pairs(self):
        rel = TrustRelation.of([(S, B), (X, B)])
        assert rel.trusts(S, B) and rel.trusts(X, B)

    def test_trustees_and_trusters(self):
        rel = TrustRelation.of([(S, B), (S, X)])
        assert rel.trustees_of(S) == frozenset({B, X})
        assert rel.trusters_of(B) == frozenset({S})
        assert rel.trusters_of(S) == frozenset()

    def test_copy_is_independent(self):
        rel = TrustRelation.of([(S, B)])
        clone = rel.copy()
        clone.add(B, S)
        assert not rel.trusts(B, S)

    def test_iteration_is_sorted_and_contains(self):
        rel = TrustRelation.of([(X, B), (S, B)])
        assert list(rel) == sorted([(S, B), (X, B)])
        assert (S, B) in rel
        assert (B, S) not in rel
