"""Unit tests for repro.core.constraints (§2.4 ordering constraints)."""

import pytest

from repro.core.actions import give, pay
from repro.core.constraints import (
    Constraint,
    check_sequence,
    possession_constraints,
    topological_respects,
)
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.errors import ModelError

C = consumer("c")
B = broker("b")
P = producer("p")
T1 = trusted("t1")
T2 = trusted("t2")
D = document("d")

INBOUND = give(P, B, D)  # producer hands broker the document
OUTBOUND = give(B, C, D)  # broker forwards it to the consumer


class TestConstraint:
    def test_satisfied_when_earlier_precedes(self):
        c = Constraint(later=OUTBOUND, earlier=INBOUND)
        assert c.satisfied_by([INBOUND, OUTBOUND])

    def test_violated_when_order_flipped(self):
        c = Constraint(later=OUTBOUND, earlier=INBOUND)
        assert not c.satisfied_by([OUTBOUND, INBOUND])

    def test_vacuous_when_later_absent(self):
        c = Constraint(later=OUTBOUND, earlier=INBOUND)
        assert c.satisfied_by([INBOUND])
        assert c.satisfied_by([])

    def test_violated_when_later_present_but_earlier_missing(self):
        c = Constraint(later=OUTBOUND, earlier=INBOUND)
        assert not c.satisfied_by([OUTBOUND])

    def test_self_constraint_rejected(self):
        with pytest.raises(ModelError):
            Constraint(later=INBOUND, earlier=INBOUND)

    def test_str_uses_paper_arrow(self):
        c = Constraint(later=OUTBOUND, earlier=INBOUND)
        assert str(c) == f"{OUTBOUND} -> {INBOUND}"


class TestPossessionConstraints:
    def test_document_relay_is_constrained(self):
        constraints = possession_constraints([INBOUND, OUTBOUND])
        assert Constraint(later=OUTBOUND, earlier=INBOUND) in constraints

    def test_money_is_not_constrained(self):
        # Parties may spend their own funds (§5's solvent broker).
        m = money(10)
        receive = pay(C, B, m)
        spend = pay(B, P, m)
        assert possession_constraints([receive, spend]) == set()

    def test_unrelated_documents_not_constrained(self):
        other = give(B, C, document("e"))
        assert possession_constraints([INBOUND, other]) == set()

    def test_inverted_transfers_ignored(self):
        assert possession_constraints([INBOUND.inverse(), OUTBOUND]) == set()

    def test_three_hop_chain(self):
        hop1 = give(P, T2, D)
        hop2 = give(T2, B, D)
        hop3 = give(B, T1, D)
        constraints = possession_constraints([hop1, hop2, hop3])
        assert Constraint(later=hop2, earlier=hop1) in constraints
        assert Constraint(later=hop3, earlier=hop2) in constraints
        assert len(constraints) == 2


class TestCheckSequence:
    def test_valid_sequence_reports_nothing(self):
        constraints = possession_constraints([INBOUND, OUTBOUND])
        assert check_sequence([INBOUND, OUTBOUND], constraints) == []
        assert topological_respects([INBOUND, OUTBOUND], constraints)

    def test_invalid_sequence_reports_violation(self):
        constraints = possession_constraints([INBOUND, OUTBOUND])
        violated = check_sequence([OUTBOUND, INBOUND], constraints)
        assert violated == [Constraint(later=OUTBOUND, earlier=INBOUND)]
        assert not topological_respects([OUTBOUND, INBOUND], constraints)
