"""Unit tests for repro.core.reduction (§4.2 rules, engine, traces)."""

import random

import pytest

from repro.core.parties import trusted
from repro.core.reduction import ReductionEngine, Rule, reduce_graph, replay
from repro.errors import ReductionError
from repro.workloads import example1


def _edge(sg, principal, trusted_name, conj_agent):
    commitment = sg.commitment_for(sg.interaction.find_edge(principal, trusted_name))
    conjunction = next(j for j in sg.conjunctions if j.agent.name == conj_agent)
    return sg.find_edge(commitment, conjunction)


class TestRule1:
    def test_fringe_commitment_removable(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        edge = _edge(sg, "Producer", "Trusted2", "Trusted2")
        ok, persona = engine.rule1_applicable(edge)
        assert ok and not persona

    def test_non_fringe_commitment_blocked(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        # Broker--Trusted1 commitment touches both ∧T1 and ∧B: not fringe.
        edge = _edge(sg, "Broker", "Trusted1", "Trusted1")
        ok, _ = engine.rule1_applicable(edge)
        assert not ok

    def test_red_pre_emption_blocks_black_sibling(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        # Make Broker--Trusted2 fringe by clearing its ∧T2 side first.
        engine.apply(Rule.COMMITMENT_FRINGE, _edge(sg, "Producer", "Trusted2", "Trusted2"))
        engine.apply(Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker", "Trusted2", "Trusted2"))
        blocked = _edge(sg, "Broker", "Trusted2", "Broker")
        ok, _ = engine.rule1_applicable(blocked)
        assert not ok
        assert engine.blocking_red_edges(blocked) == (_edge(sg, "Broker", "Trusted1", "Broker"),)

    def test_red_edge_does_not_preempt_itself(self, ex1):
        # §4.2.2: "the red edge may be removed by Rule #1" when it is the
        # only red edge at the conjunction.
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        engine.apply(Rule.COMMITMENT_FRINGE, _edge(sg, "Consumer", "Trusted1", "Trusted1"))
        engine.apply(Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker", "Trusted1", "Trusted1"))
        red = _edge(sg, "Broker", "Trusted1", "Broker")
        ok, persona = engine.rule1_applicable(red)
        assert ok and not persona

    def test_illegal_application_raises(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        with pytest.raises(ReductionError, match="not a fringe"):
            engine.apply(Rule.COMMITMENT_FRINGE, _edge(sg, "Broker", "Trusted1", "Broker"))

    def test_persona_waives_preemption(self, ex2_variant1):
        sg = ex2_variant1.sequencing_graph()
        engine = ReductionEngine(sg)
        engine.apply(Rule.COMMITMENT_FRINGE, _edge(sg, "Source1", "Trusted2", "Trusted2"))
        engine.apply(Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker1", "Trusted2", "Trusted2"))
        persona_edge = _edge(sg, "Broker1", "Trusted2", "Broker1")
        ok, via_persona = engine.rule1_applicable(persona_edge)
        assert ok and via_persona
        step = engine.apply(Rule.COMMITMENT_FRINGE, persona_edge)
        assert step.via_persona


class TestRule2:
    def test_fringe_conjunction_removable(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        engine.apply(Rule.COMMITMENT_FRINGE, _edge(sg, "Producer", "Trusted2", "Trusted2"))
        edge = _edge(sg, "Broker", "Trusted2", "Trusted2")
        assert engine.rule2_applicable(edge)

    def test_non_fringe_conjunction_blocked(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        edge = _edge(sg, "Broker", "Trusted2", "Trusted2")
        assert not engine.rule2_applicable(edge)
        with pytest.raises(ReductionError, match="Rule #2"):
            engine.apply(Rule.CONJUNCTION_FRINGE, edge)

    def test_removing_removed_edge_raises(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        edge = _edge(sg, "Producer", "Trusted2", "Trusted2")
        engine.apply(Rule.COMMITMENT_FRINGE, edge)
        with pytest.raises(ReductionError, match="already removed"):
            engine.apply(Rule.COMMITMENT_FRINGE, edge)


class TestEngineRuns:
    def test_example1_feasible_all_strategies(self):
        for strategy in ("fifo", "lifo", "random"):
            trace = reduce_graph(example1().sequencing_graph(), strategy=strategy)
            assert trace.feasible, strategy
            assert len(trace.steps) == 6

    def test_example2_impasse(self, ex2):
        trace = reduce_graph(ex2.sequencing_graph())
        assert not trace.feasible
        assert len(trace.steps) == 4  # paper: exactly four edges removable
        assert len(trace.remaining) == 10

    def test_example2_blockage_diagnosis(self, ex2):
        trace = reduce_graph(ex2.sequencing_graph())
        blocked_commitments = {b.edge.commitment.label for b in trace.blockages}
        assert blocked_commitments == {"Trusted2->Broker1", "Trusted4->Broker2"}
        for blockage in trace.blockages:
            assert all(edge.is_red for edge in blockage.blocking_red)

    def test_poor_broker_infeasible(self, poor):
        trace = reduce_graph(poor.sequencing_graph())
        assert not trace.feasible
        # Both red edges at ∧B survive: neither "must be first" can win.
        red_remaining = [e for e in trace.remaining if e.is_red]
        assert len(red_remaining) == 2

    def test_commitment_order_recorded(self, ex1):
        trace = reduce_graph(ex1.sequencing_graph())
        assert len(trace.commitment_order) == 4
        assert len(trace.conjunction_order) == 3

    def test_random_strategy_reproducible(self, ex1):
        t1 = reduce_graph(ex1.sequencing_graph(), strategy="random", rng=random.Random(7))
        t2 = reduce_graph(ex1.sequencing_graph(), strategy="random", rng=random.Random(7))
        assert [s.edge for s in t1.steps] == [s.edge for s in t2.steps]

    def test_unknown_strategy_raises(self, ex1):
        with pytest.raises(ReductionError, match="strategy"):
            reduce_graph(ex1.sequencing_graph(), strategy="bogus")

    def test_custom_chooser(self, ex1):
        trace = ReductionEngine(ex1.sequencing_graph()).run(chooser=lambda opts: opts[0])
        assert trace.feasible

    def test_bad_chooser_rejected(self, ex1):
        sg = ex1.sequencing_graph()
        bad = (Rule.COMMITMENT_FRINGE, _edge(sg, "Broker", "Trusted1", "Broker"), False)
        with pytest.raises(ReductionError, match="chooser"):
            ReductionEngine(sg).run(chooser=lambda opts: bad)

    def test_step_for_edge(self, ex1):
        sg = ex1.sequencing_graph()
        trace = reduce_graph(sg)
        first = trace.steps[0]
        assert trace.step_for_edge(first.edge) == first

    def test_step_for_unremoved_edge_raises(self, ex2):
        sg = ex2.sequencing_graph()
        trace = reduce_graph(sg)
        leftover = next(iter(trace.remaining))
        with pytest.raises(ReductionError):
            trace.step_for_edge(leftover)

    def test_trace_str_mentions_feasibility(self, ex1, ex2):
        assert "feasible" in str(reduce_graph(ex1.sequencing_graph()))
        assert "INFEASIBLE" in str(reduce_graph(ex2.sequencing_graph()))

    def test_apply_edge_picks_a_rule(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        step = engine.apply_edge(_edge(sg, "Producer", "Trusted2", "Trusted2"))
        assert step.rule is Rule.COMMITMENT_FRINGE

    def test_apply_edge_rejects_blocked(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        with pytest.raises(ReductionError, match="no reduction rule"):
            engine.apply_edge(_edge(sg, "Broker", "Trusted1", "Broker"))


class TestReplay:
    def test_replay_paper_order_example1(self, ex1):
        sg = ex1.sequencing_graph()
        script = [
            (Rule.COMMITMENT_FRINGE, _edge(sg, "Producer", "Trusted2", "Trusted2")),
            (Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker", "Trusted2", "Trusted2")),
            (Rule.COMMITMENT_FRINGE, _edge(sg, "Consumer", "Trusted1", "Trusted1")),
            (Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker", "Trusted1", "Trusted1")),
            (Rule.COMMITMENT_FRINGE, _edge(sg, "Broker", "Trusted1", "Broker")),
            (Rule.COMMITMENT_FRINGE, _edge(sg, "Broker", "Trusted2", "Broker")),
        ]
        trace = replay(sg, script)
        assert trace.feasible

    def test_partial_replay_leaves_remainder(self, ex1):
        sg = ex1.sequencing_graph()
        script = [(Rule.COMMITMENT_FRINGE, _edge(sg, "Producer", "Trusted2", "Trusted2"))]
        trace = replay(sg, script)
        assert not trace.feasible
        assert len(trace.remaining) == 5

    def test_replay_illegal_step_raises(self, ex1):
        sg = ex1.sequencing_graph()
        with pytest.raises(ReductionError):
            replay(sg, [(Rule.COMMITMENT_FRINGE, _edge(sg, "Broker", "Trusted2", "Broker"))])


class TestDisconnectionEvents:
    def test_disconnections_marked_on_steps(self, ex1):
        sg = ex1.sequencing_graph()
        engine = ReductionEngine(sg)
        step1 = engine.apply(
            Rule.COMMITMENT_FRINGE, _edge(sg, "Producer", "Trusted2", "Trusted2")
        )
        assert step1.commitment_disconnected is not None
        assert step1.commitment_disconnected.label == "Trusted2->Producer"
        assert step1.conjunction_disconnected is None
        step2 = engine.apply(
            Rule.CONJUNCTION_FRINGE, _edge(sg, "Broker", "Trusted2", "Trusted2")
        )
        assert step2.conjunction_disconnected is not None
        assert step2.conjunction_disconnected.agent == trusted("Trusted2")
