"""Unit tests for repro.core.sequencing (§4.1 sequencing-graph construction)."""

import pytest

from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.sequencing import (
    CommitmentNode,
    ConjunctionNode,
    EdgeColor,
    SGEdge,
    SequencingGraph,
)
from repro.errors import GraphError
from repro.workloads import example2


class TestConstructionFromFigure1:
    """Figure 3: the sequencing graph of Example #1."""

    def test_node_counts(self, ex1):
        sg = ex1.sequencing_graph()
        assert len(sg.commitments) == 4  # one per interaction edge
        assert len(sg.conjunctions) == 3  # ∧B, ∧T1, ∧T2 (c and p are leaves)

    def test_edge_counts_and_colors(self, ex1):
        sg = ex1.sequencing_graph()
        assert len(sg.edges) == 6
        assert len(sg.red_edges) == 1
        assert len(sg.black_edges) == 5

    def test_red_edge_is_broker_sale_side(self, ex1):
        sg = ex1.sequencing_graph()
        (red,) = sg.red_edges
        assert red.conjunction.agent.name == "Broker"
        assert red.commitment.trusted.name == "Trusted1"

    def test_conjunction_agents(self, ex1):
        sg = ex1.sequencing_graph()
        agents = {j.agent.name for j in sg.conjunctions}
        assert agents == {"Broker", "Trusted1", "Trusted2"}

    def test_leaf_principals_have_no_conjunction(self, ex1):
        sg = ex1.sequencing_graph()
        with pytest.raises(GraphError):
            sg.conjunction_for(consumer("Consumer"))

    def test_bipartite_structure(self, ex1):
        sg = ex1.sequencing_graph()
        for edge in sg.edges:
            assert isinstance(edge.commitment, CommitmentNode)
            assert isinstance(edge.conjunction, ConjunctionNode)

    def test_commitment_labels_follow_paper(self, ex1):
        sg = ex1.sequencing_graph()
        labels = {c.label for c in sg.commitments}
        assert labels == {
            "Trusted1->Consumer",
            "Trusted1->Broker",
            "Trusted2->Broker",
            "Trusted2->Producer",
        }


class TestConstructionFromFigure2:
    """Figure 4: the sequencing graph of Example #2."""

    def test_node_and_edge_counts(self, ex2):
        sg = ex2.sequencing_graph()
        assert len(sg.commitments) == 8
        assert len(sg.conjunctions) == 7  # ∧C, ∧B1, ∧B2, ∧T1..∧T4
        assert len(sg.edges) == 14
        assert len(sg.red_edges) == 2

    def test_red_edges_at_broker_conjunctions(self, ex2):
        sg = ex2.sequencing_graph()
        red_agents = {e.conjunction.agent.name for e in sg.red_edges}
        assert red_agents == {"Broker1", "Broker2"}

    def test_consumer_conjunction_is_all_black(self, ex2):
        sg = ex2.sequencing_graph()
        conj = sg.conjunction_for(consumer("Consumer"))
        edges = sg.edges_of_conjunction(conj)
        assert len(edges) == 2
        assert all(not e.is_red for e in edges)


class TestPersonas:
    def test_no_trust_means_no_personas(self, ex2):
        assert ex2.sequencing_graph().personas == frozenset()

    def test_source_trusting_broker_makes_broker_persona(self, ex2_variant1):
        sg = ex2_variant1.sequencing_graph()
        personas = {c.label for c in sg.personas}
        # Broker1 plays the role of Trusted2 in its own commitment.
        assert personas == {"Trusted2->Broker1"}

    def test_broker_trusting_source_makes_source_persona(self, ex2_variant2):
        sg = ex2_variant2.sequencing_graph()
        personas = {c.label for c in sg.personas}
        assert personas == {"Trusted2->Source1"}

    def test_with_personas_extends(self, ex1):
        sg = ex1.sequencing_graph()
        extra = sg.commitments[0]
        assert extra in sg.with_personas([extra]).personas


class TestQueriesAndValidation:
    def test_commitment_for_edge(self, ex1):
        ig = ex1.interaction
        sg = ex1.sequencing_graph()
        edge = ig.find_edge("Consumer", "Trusted1")
        assert sg.commitment_for(edge).edge == edge

    def test_commitment_for_unknown_edge_raises(self, ex1):
        other = example2()
        stray = other.interaction.edges[0]
        with pytest.raises(GraphError):
            ex1.sequencing_graph().commitment_for(stray)

    def test_find_edge_and_missing_edge(self, ex1):
        sg = ex1.sequencing_graph()
        commitment = sg.commitment_for(ex1.interaction.find_edge("Consumer", "Trusted1"))
        conj = sg.conjunction_for(trusted("Trusted1"))
        assert sg.find_edge(commitment, conj).commitment == commitment
        with pytest.raises(GraphError):
            broker_conj = sg.conjunction_for(broker("Broker"))
            sg.find_edge(commitment, broker_conj)

    def test_edges_of_commitment(self, ex1):
        sg = ex1.sequencing_graph()
        sell = sg.commitment_for(ex1.interaction.find_edge("Broker", "Trusted1"))
        assert len(sg.edges_of_commitment(sell)) == 2  # ∧T1 and ∧B

    def test_with_edges_removed(self, ex1):
        sg = ex1.sequencing_graph()
        smaller = sg.with_edges_removed([sg.edges[0]])
        assert len(smaller.edges) == len(sg.edges) - 1

    def test_with_edges_removed_unknown_raises(self, ex1):
        sg = ex1.sequencing_graph()
        ghost = SGEdge(sg.commitments[0], sg.conjunctions[0], EdgeColor.RED)
        if ghost in sg.edges:  # pragma: no cover - defensive
            pytest.skip("edge exists in this layout")
        with pytest.raises(GraphError):
            sg.with_edges_removed([ghost])

    def test_duplicate_edge_rejected(self):
        c = consumer("c")
        p = producer("p")
        t = trusted("t")
        ig = InteractionGraph()
        ig.add_principal(c)
        ig.add_principal(p)
        ig.add_trusted(t)
        ig.add_exchange(c, money(10), p, document("d"), via=t)
        sg = SequencingGraph.from_interaction(ig)
        with pytest.raises(GraphError, match="parallel"):
            SequencingGraph(
                sg.commitments,
                sg.conjunctions,
                list(sg.edges) + [sg.edges[0]],
            )

    def test_unknown_persona_error_is_deterministic(self, ex1):
        # Regression (DET hygiene): with several invalid persona annotations
        # the reported one must be the lexicographically first by label, not
        # whichever a hash-seeded frozenset yields first.
        sg = ex1.sequencing_graph()
        other = example2().sequencing_graph()
        strays = [c for c in other.commitments if c not in sg.commitments][:2]
        assert len(strays) == 2
        first_label = min(c.label for c in strays)
        for ordering in (strays, list(reversed(strays))):
            with pytest.raises(GraphError, match=f"unknown commitment {first_label!r}"):
                SequencingGraph(
                    sg.commitments, sg.conjunctions, sg.edges, personas=ordering
                )

    def test_interaction_back_reference(self, ex1):
        assert ex1.sequencing_graph().interaction is ex1.interaction

    def test_str_summarizes_counts(self, ex1):
        text = str(ex1.sequencing_graph())
        assert "|C|=4" in text and "|R|=1" in text
