"""Unit tests for repro.core.states: the §2.3 state/acceptance formalism."""

import pytest

from repro.core.actions import give, notify, pay
from repro.core.items import document, money
from repro.core.parties import consumer, producer, trusted
from repro.core.states import AcceptanceSpec, ExchangeState, purchase_acceptance
from repro.errors import ModelError

C = consumer("c")
P = producer("p")
T = trusted("t")
D = document("d")
M = money(10)

PAY = pay(C, P, M)
DELIVER = give(P, C, D)


class TestExchangeState:
    def test_empty_is_status_quo(self):
        assert ExchangeState.empty().is_status_quo

    def test_with_action_accumulates(self):
        s = ExchangeState.empty().with_action(PAY)
        assert not s.is_status_quo
        assert PAY in s.actions

    def test_with_action_returns_new_state(self):
        s = ExchangeState.empty()
        s.with_action(PAY)
        assert s.is_status_quo  # original untouched

    def test_of_builds_from_iterable(self):
        s = ExchangeState.of([PAY, DELIVER])
        assert len(s) == 2

    def test_actions_by_uses_performer(self):
        s = ExchangeState.of([PAY, DELIVER])
        assert s.actions_by(C) == frozenset({PAY})
        assert s.actions_by(P) == frozenset({DELIVER})

    def test_inverted_action_performed_by_returner(self):
        refund = pay(C, T, M).inverse()  # t returns the money
        s = ExchangeState.of([refund])
        assert s.actions_by(T) == frozenset({refund})
        assert s.actions_by(C) == frozenset()

    def test_transfers_excludes_notify(self):
        s = ExchangeState.of([PAY, notify(T, C)])
        assert s.transfers() == frozenset({PAY})

    def test_contains(self):
        s = ExchangeState.of([PAY, DELIVER])
        assert s.contains([PAY])
        assert not s.contains([PAY, notify(T, C)])

    def test_net_uncompensated_cancels_pairs(self):
        deposit = pay(C, T, M)
        s = ExchangeState.of([deposit, deposit.inverse()])
        assert s.net_uncompensated() == frozenset()

    def test_net_uncompensated_keeps_unmatched(self):
        deposit = pay(C, T, M)
        assert ExchangeState.of([deposit]).net_uncompensated() == frozenset({deposit})

    def test_net_uncompensated_keeps_dangling_reversal(self):
        reversal = pay(C, T, M).inverse()
        assert ExchangeState.of([reversal]).net_uncompensated() == frozenset({reversal})

    def test_str_of_empty(self):
        assert str(ExchangeState.empty()) == "{}"

    def test_iterable(self):
        assert set(ExchangeState.of([PAY])) == {PAY}


class TestAcceptanceSpec:
    def _customer_spec(self):
        return AcceptanceSpec(
            party=C,
            acceptable=(
                frozenset({DELIVER, PAY}),
                frozenset(),
                frozenset({DELIVER}),
                frozenset({PAY, PAY.inverse()}),
            ),
            preferred=frozenset({DELIVER, PAY}),
        )

    def test_preferred_must_be_acceptable(self):
        with pytest.raises(ModelError):
            AcceptanceSpec(C, (frozenset(),), frozenset({PAY}))

    def test_accepts_each_paper_state(self):
        spec = self._customer_spec()
        # The four §2.3 customer states: completed, status quo, windfall, refund.
        assert spec.accepts(ExchangeState.of([DELIVER, PAY]))
        assert spec.accepts(ExchangeState.empty())
        assert spec.accepts(ExchangeState.of([DELIVER]))
        assert spec.accepts(ExchangeState.of([PAY, PAY.inverse()]))

    def test_rejects_paying_without_goods(self):
        spec = self._customer_spec()
        assert not spec.accepts(ExchangeState.of([PAY]))

    def test_superset_with_foreign_actions_still_accepts(self):
        # Extra actions performed by OTHER parties do not hurt the customer.
        spec = self._customer_spec()
        extra = give(P, T, document("unrelated"))
        assert spec.accepts(ExchangeState.of([DELIVER, PAY, extra]))

    def test_own_extra_action_blocks_acceptance(self):
        # The customer paid twice: no description covers the second payment.
        spec = self._customer_spec()
        second = pay(C, T, money(10, tag="again"))
        assert not spec.accepts(ExchangeState.of([DELIVER, PAY, second]))

    def test_matching_description_returns_a_match(self):
        # {DELIVER} matches both the windfall description and (because the
        # customer performed nothing) the status-quo one; either is fine.
        spec = self._customer_spec()
        match = spec.matching_description(ExchangeState.of([DELIVER]))
        assert match in (frozenset(), frozenset({DELIVER}))
        assert spec.matching_description(ExchangeState.of([PAY])) is None

    def test_preferred_detection(self):
        spec = self._customer_spec()
        assert spec.is_preferred(ExchangeState.of([DELIVER, PAY]))
        assert not spec.is_preferred(ExchangeState.empty())


class TestPurchaseAcceptance:
    def test_direct_purchase_has_both_parties(self):
        specs = purchase_acceptance(C, P, D, M)
        assert set(specs) == {C, P}

    def test_direct_customer_matches_paper(self):
        spec = purchase_acceptance(C, P, D, M)[C]
        assert spec.accepts(ExchangeState.of([give(P, C, D), pay(C, P, M)]))
        assert spec.accepts(ExchangeState.empty())
        assert spec.accepts(ExchangeState.of([give(P, C, D)]))
        assert spec.accepts(ExchangeState.of([pay(C, P, M), pay(C, P, M).inverse()]))
        assert not spec.accepts(ExchangeState.of([pay(C, P, M)]))

    def test_direct_seller_windfall_is_payment_without_goods(self):
        spec = purchase_acceptance(C, P, D, M)[P]
        assert spec.accepts(ExchangeState.of([pay(C, P, M)]))
        assert not spec.accepts(ExchangeState.of([give(P, C, D)]))

    def test_mediated_purchase_includes_trusted_spec(self):
        specs = purchase_acceptance(C, P, D, M, via=T)
        assert set(specs) == {C, P, T}

    def test_mediated_customer_accepts_goods_from_either_source(self):
        spec = purchase_acceptance(C, P, D, M, via=T)[C]
        paid = pay(C, T, M)
        assert spec.accepts(ExchangeState.of([give(T, C, D), paid]))
        assert spec.accepts(ExchangeState.of([give(P, C, D), paid]))

    def test_mediated_trusted_component_backout_states(self):
        spec = purchase_acceptance(C, P, D, M, via=T)[T]
        paid = pay(C, T, M)
        deposited = give(P, T, D)
        assert spec.accepts(ExchangeState.of([paid, paid.inverse()]))
        assert spec.accepts(ExchangeState.of([deposited, deposited.inverse()]))
        assert spec.accepts(ExchangeState.empty())

    def test_held_money_is_the_customers_problem_not_the_components(self):
        # Under the literal §2.3 semantics, a state where T merely *holds*
        # the customer's money contains no action performed by T, so T's
        # status-quo description matches.  The violation is attributed to
        # the customer, whose spec rejects paying without goods or refund.
        specs = purchase_acceptance(C, P, D, M, via=T)
        paid = pay(C, T, M)
        state = ExchangeState.of([paid])
        assert specs[T].accepts(state)
        assert not specs[C].accepts(state)

    def test_mediated_trusted_component_rejects_partial_release(self):
        # T forwarded the goods but kept the payment: that IS an action by T
        # outside every acceptable description.
        specs = purchase_acceptance(C, P, D, M, via=T)
        state = ExchangeState.of([pay(C, T, M), give(P, T, D), give(T, C, D)])
        assert not specs[T].accepts(state)
