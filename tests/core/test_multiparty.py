"""Unit tests for multi-party trusted agents (the §9 extension)."""

import pytest

from repro.core.execution import StepKind
from repro.core.interaction import InteractionGraph
from repro.core.items import document, money
from repro.core.parties import broker, consumer, producer, trusted
from repro.core.problem import ExchangeProblem
from repro.errors import GraphError

A, B, C = broker("A"), broker("B"), broker("C")
T = trusted("T")
DA, DB, DC = document("dA"), document("dB"), document("dC")


def ring_problem() -> ExchangeProblem:
    graph = InteractionGraph()
    for p in (A, B, C):
        graph.add_principal(p)
    graph.add_trusted(T)
    graph.add_multi_exchange(T, [(A, DA), (B, DB), (C, DC)])
    return ExchangeProblem("ring", graph).validate(allow_multiparty=True)


class TestConstruction:
    def test_ring_entitlements_default(self):
        problem = ring_problem()
        graph = problem.interaction
        assert graph.expects(graph.find_edge("A", "T")) == DC
        assert graph.expects(graph.find_edge("B", "T")) == DA
        assert graph.expects(graph.find_edge("C", "T")) == DB

    def test_explicit_entitlements(self):
        graph = InteractionGraph()
        seller = producer("S")
        buyer1, buyer2 = consumer("X"), consumer("Y")
        t = trusted("M")
        for p in (seller, buyer1, buyer2):
            graph.add_principal(p)
        graph.add_trusted(t)
        # One seller auctions one doc to X; Y pays the seller a referral fee
        # and receives X's payment note?  Keep it simple: a 3-cycle of
        # money and goods with explicit mapping.
        m1, m2 = money(5, tag="x"), money(3, tag="y")
        d = document("d")
        graph.add_multi_exchange(
            t,
            [(seller, d), (buyer1, m1), (buyer2, m2)],
            entitlements={seller: m1, buyer1: d, buyer2: m1},
        )

    def test_entitlement_must_be_deposited(self):
        graph = InteractionGraph()
        for p in (A, B):
            graph.add_principal(p)
        graph.add_trusted(T)
        with pytest.raises(GraphError, match="not deposited"):
            graph.add_multi_exchange(
                T, [(A, DA), (B, DB)], entitlements={A: DC, B: DA}
            )

    def test_own_deposit_back_rejected(self):
        graph = InteractionGraph()
        for p in (A, B):
            graph.add_principal(p)
        graph.add_trusted(T)
        with pytest.raises(GraphError, match="own deposit"):
            graph.add_multi_exchange(
                T, [(A, DA), (B, DB)], entitlements={A: DA, B: DB}
            )

    def test_entitlements_must_cover_members(self):
        graph = InteractionGraph()
        for p in (A, B, C):
            graph.add_principal(p)
        graph.add_trusted(T)
        with pytest.raises(GraphError, match="cover exactly"):
            graph.add_multi_exchange(
                T, [(A, DA), (B, DB)], entitlements={A: DB}
            )

    def test_single_member_rejected(self):
        graph = InteractionGraph()
        graph.add_principal(A)
        graph.add_trusted(T)
        with pytest.raises(GraphError, match="at least two"):
            graph.add_multi_exchange(T, [(A, DA)])

    def test_validation_requires_multiparty_flag(self):
        problem = ring_problem()
        with pytest.raises(GraphError, match="multiparty"):
            problem.interaction.validate()

    def test_copy_preserves_entitlements(self):
        problem = ring_problem()
        clone = problem.interaction.copy()
        assert clone.expects(clone.find_edge("A", "T")) == DC


class TestPipeline:
    def test_ring_is_feasible(self):
        assert ring_problem().feasibility().feasible

    def test_ring_execution_shape(self):
        sequence = ring_problem().execution_sequence()
        kinds = [s.kind for s in sequence.steps]
        assert kinds.count(StepKind.DEPOSIT) == 3
        assert kinds.count(StepKind.NOTIFY) == 1  # only the last straggler
        assert kinds.count(StepKind.RELEASE) == 3
        assert sequence.violated_constraints() == []

    def test_ring_releases_route_by_entitlement(self):
        sequence = ring_problem().execution_sequence()
        releases = {
            s.action.recipient.name: s.action.item.label
            for s in sequence.steps
            if s.kind is StepKind.RELEASE
        }
        assert releases == {"A": "dC", "B": "dA", "C": "dB"}


class TestSimulation:
    def test_honest_ring_completes(self):
        from repro.sim import evaluate_safety, simulate

        problem = ring_problem()
        result = simulate(problem)
        assert len(result.completed_agents) == 1
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe()
        final_docs = {
            p.name: sorted(result.final.documents_of(p))
            for p in problem.interaction.principals
        }
        assert final_docs == {"A": ["dC"], "B": ["dA"], "C": ["dB"]}

    def test_ring_with_defector_reverses_everyone(self):
        from repro.sim import evaluate_safety, simulate, withholder

        problem = ring_problem()
        result = simulate(problem, adversaries={"C": withholder(0)}, deadline=40.0)
        report = evaluate_safety(problem, result)
        assert report.honest_parties_safe(frozenset({"C"}))
        # A and B got their documents back.
        for name, doc in (("A", "dA"), ("B", "dB")):
            party = next(p for p in problem.interaction.principals if p.name == name)
            assert doc in result.final.documents_of(party)
