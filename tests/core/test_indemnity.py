"""Unit tests for repro.core.indemnity (§6)."""

import pytest

from repro.core.execution import StepKind, recover_execution
from repro.core.indemnity import (
    apply_plan,
    brute_force_minimal_plan,
    commitment_cost,
    greedy_order,
    minimal_indemnity_plan,
    offer_for,
    plan_indemnities,
    required_indemnity,
    splittable_conjunctions,
)
from repro.core.parties import consumer
from repro.errors import IndemnityError
from repro.workloads import broker_bundle, example1

CONSUMER = consumer("Consumer")


def _consumer_edges(problem):
    """The consumer's bundle edges, by trusted-intermediary name."""
    return {e.trusted.name: e for e in problem.interaction.edges if e.principal == CONSUMER}


class TestAmounts:
    def test_figure7_required_amounts(self, fig7):
        edges = _consumer_edges(fig7)
        # Indemnity = cost of the OTHER pieces: $50, $40, $30 for d1, d2, d3.
        assert required_indemnity(fig7, edges["Trusted1"]) == 5000
        assert required_indemnity(fig7, edges["Trusted3"]) == 4000
        assert required_indemnity(fig7, edges["Trusted5"]) == 3000

    def test_example2_required_amounts(self, ex2):
        edges = _consumer_edges(ex2)
        assert required_indemnity(ex2, edges["Trusted1"]) == 2200  # price of d2
        assert required_indemnity(ex2, edges["Trusted3"]) == 1200  # price of d1

    def test_single_commitment_has_no_bundle(self, ex1):
        edge = ex1.interaction.find_edge("Consumer", "Trusted1")
        with pytest.raises(IndemnityError, match="single commitment"):
            required_indemnity(ex1, edge)

    def test_commitment_cost_money_vs_goods(self, ex2):
        pay_edge = ex2.interaction.find_edge("Consumer", "Trusted1")
        give_edge = ex2.interaction.find_edge("Broker1", "Trusted1")
        assert commitment_cost(pay_edge) == 1200
        assert commitment_cost(give_edge) == 0

    def test_foreign_edge_rejected(self, fig7, ex2):
        stray = ex2.interaction.find_edge("Consumer", "Trusted1")
        with pytest.raises(IndemnityError):
            required_indemnity(fig7, stray)


class TestOffers:
    def test_offeror_is_counterpart_broker(self, fig7):
        edges = _consumer_edges(fig7)
        offer = offer_for(fig7, edges["Trusted1"])
        assert offer.offeror.name == "Broker1"
        assert offer.beneficiary.name == "Consumer"
        assert offer.via.name == "Trusted1"
        assert offer.amount_cents == 5000

    def test_offer_actions_are_escrow_and_refund(self, fig7):
        offer = offer_for(fig7, _consumer_edges(fig7)["Trusted1"])
        deposit = offer.deposit_action()
        assert deposit.sender.name == "Broker1"
        assert deposit.recipient.name == "Trusted1"
        assert deposit.item.cents == 5000
        assert offer.refund_action() == deposit.inverse()

    def test_offer_str_mentions_amount(self, fig7):
        offer = offer_for(fig7, _consumer_edges(fig7)["Trusted1"])
        assert "$50.00" in str(offer)


class TestFigure7Orderings:
    """The paper's $90-vs-$70 ordering effect."""

    def test_order1_b1_then_b2_costs_90(self, fig7):
        edges = _consumer_edges(fig7)
        plan = plan_indemnities(fig7, [edges["Trusted1"], edges["Trusted3"], edges["Trusted5"]])
        assert plan.feasible
        assert plan.total_cents == 9000
        assert len(plan.offers) == 2  # third piece needs no indemnity

    def test_order2_b3_then_b2_costs_70(self, fig7):
        edges = _consumer_edges(fig7)
        plan = plan_indemnities(fig7, [edges["Trusted5"], edges["Trusted3"], edges["Trusted1"]])
        assert plan.feasible
        assert plan.total_cents == 7000

    def test_intermediate_state_after_b1_still_infeasible(self, fig7):
        # "Even after Broker #1 offers the indemnity, the transaction is not
        # feasible, because the problem is essentially still a two broker
        # problem between #2 and #3."
        edges = _consumer_edges(fig7)
        plan = plan_indemnities(
            fig7, [edges["Trusted1"]], stop_when_feasible=False
        )
        assert not plan.feasible
        assert plan.total_cents == 5000

    def test_greedy_is_70(self, fig7):
        plan = minimal_indemnity_plan(fig7)
        assert plan.feasible
        assert plan.total_cents == 7000

    def test_greedy_matches_brute_force(self, fig7):
        greedy = minimal_indemnity_plan(fig7)
        brute = brute_force_minimal_plan(fig7)
        assert greedy.total_cents == brute.total_cents

    def test_greedy_order_is_descending_cost(self, fig7):
        order = greedy_order(fig7, CONSUMER)
        costs = [commitment_cost(e) for e in order]
        assert costs == sorted(costs, reverse=True) == [3000, 2000, 1000]

    def test_closed_form_total(self):
        # total = (k-2)*S + c_min for a k-piece bundle of total cost S.
        for prices in [(10.0, 20.0, 30.0), (5.0, 5.0, 5.0), (1.0, 2.0, 3.0, 4.0)]:
            problem = broker_bundle(len(prices), prices)
            plan = minimal_indemnity_plan(problem)
            s = int(sum(prices) * 100)
            c_min = int(min(prices) * 100)
            assert plan.total_cents == (len(prices) - 2) * s + c_min
            assert plan.feasible


class TestExample2:
    def test_one_indemnity_suffices(self, ex2):
        # §6: "The exchange is feasible even if Broker #2 does not offer a
        # similar indemnity."
        edges = _consumer_edges(ex2)
        plan = plan_indemnities(ex2, [edges["Trusted1"]])
        assert plan.feasible
        assert len(plan.offers) == 1
        assert plan.offers[0].offeror.name == "Broker1"

    def test_execution_with_plan(self, ex2):
        edges = _consumer_edges(ex2)
        plan = plan_indemnities(ex2, [edges["Trusted1"]])
        base = recover_execution(plan.verdict.trace)
        spliced = apply_plan(plan, base)
        kinds = [s.kind for s in spliced.steps]
        assert kinds[0] is StepKind.INDEMNITY_DEPOSIT
        assert kinds[-1] is StepKind.INDEMNITY_REFUND
        assert len(spliced) == len(base) + 2
        assert spliced.violated_constraints() == []


class TestValidation:
    def test_splittable_conjunctions_detects_consumer(self, ex2, fig7, ex1):
        assert [p.name for p in splittable_conjunctions(ex2)] == ["Consumer"]
        assert [p.name for p in splittable_conjunctions(fig7)] == ["Consumer"]
        # Example 1's only multi-commitment principal is the broker, whose
        # conjunction carries a red edge (third type) — not splittable.
        assert splittable_conjunctions(ex1) == ()

    def test_empty_order_rejected(self, fig7):
        with pytest.raises(IndemnityError, match="at least one"):
            plan_indemnities(fig7, [])

    def test_non_splittable_agent_rejected(self, ex1):
        edge = ex1.interaction.find_edge("Broker", "Trusted1")
        with pytest.raises(IndemnityError, match="splittable"):
            plan_indemnities(ex1, [edge])

    def test_mixed_owner_order_rejected(self, fig7):
        edges = _consumer_edges(fig7)
        foreign = fig7.interaction.find_edge("Broker1", "Trusted2")
        with pytest.raises(IndemnityError, match="belongs to"):
            plan_indemnities(fig7, [edges["Trusted1"], foreign])

    def test_minimal_plan_needs_unique_conjunction(self, ex1):
        with pytest.raises(IndemnityError, match="exactly one"):
            minimal_indemnity_plan(ex1)

    def test_apply_plan_requires_feasible(self, fig7, ex2):
        edges = _consumer_edges(fig7)
        partial = plan_indemnities(fig7, [edges["Trusted1"]], stop_when_feasible=False)
        seq = example1().execution_sequence()
        with pytest.raises(IndemnityError):
            apply_plan(partial, seq)


class TestPlanObject:
    def test_describe_and_str(self, fig7):
        plan = minimal_indemnity_plan(fig7)
        text = str(plan)
        assert "total $70.00" in text
        assert "feasible" in text

    def test_total_dollars(self, fig7):
        assert minimal_indemnity_plan(fig7).total_dollars == 70.0
